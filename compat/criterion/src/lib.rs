//! Vendored minimal stand-in for the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the external `criterion` dependency is replaced by this path crate.
//! It implements the measurement surface the workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `sample_size`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock harness:
//!
//! 1. warm up until ~30 ms have elapsed;
//! 2. pick a batch size targeting ~4 ms per sample;
//! 3. take `sample_size` samples and report mean, min, and max ns/iter.
//!
//! Statistical machinery (outlier rejection, HTML reports, comparison with
//! saved baselines) is intentionally absent. Filtering works like upstream:
//! extra CLI arguments select benchmarks by substring match, so
//! `cargo bench -- elliptic` runs only ids containing `elliptic`.

use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness state: CLI filter plus accumulated results.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse the bench binary's CLI arguments (skipping the flags cargo
    /// itself passes) and use the first free argument as a substring
    /// filter on benchmark ids.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo/libtest pass to bench binaries.
                "--bench" | "--test" | "--quiet" | "-q" | "--exact" | "--list" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time" => {
                    let _ = args.next(); // swallow the flag's value
                }
                f if f.starts_with("--") => {}
                free => {
                    self.filter = Some(free.to_string());
                    break;
                }
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named benchmark id, used with [`BenchmarkGroup::bench_with_input`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Id naming only the parameter (the group provides the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted id arguments: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples taken per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f`, which must call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        if self.criterion.matches(&full) {
            let mut b = Bencher {
                sample_size: self.sample_size,
                result: None,
            };
            f(&mut b);
            report(&full, b.result);
        }
        self
    }

    /// Measure `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream flushes reports here; this harness reports
    /// eagerly, so it is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Measurement results of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Sampled {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Measure the closure: warm up, choose a batch size, then time
    /// `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~30 ms or 50 iterations, estimating cost.
        let warmup = Duration::from_millis(30);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup && warm_iters < 50 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Target ~4 ms per sample, at least one iteration.
        let batch = ((4_000_000.0 / est_ns) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        self.result = Some(Sampled {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: batch * self.sample_size as u64,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, result: Option<Sampled>) {
    match result {
        Some(s) => println!(
            "{id:<50} time: [{} {} {}]  ({} iters)",
            human(s.min_ns),
            human(s.mean_ns),
            human(s.max_ns),
            s.iters
        ),
        None => println!("{id:<50} (no measurement: closure never called iter)"),
    }
}

/// Define a bench group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
