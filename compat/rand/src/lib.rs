//! Vendored minimal stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the external `rand` dependency is replaced by this path crate. It
//! implements exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a deterministic,
//!   seedable generator (splitmix64-seeded xoshiro256**);
//! * [`Rng`] — the core source-of-randomness trait;
//! * [`RngExt`] — `random_range` over integer ranges and `random_bool`,
//!   blanket-implemented for every [`Rng`].
//!
//! Determinism is the only contract the tests rely on: the same seed always
//! yields the same stream. The streams do NOT match the real `rand` crate.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + core::fmt::Debug {
    /// Widen to `i128` (all supported types fit losslessly).
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (the value is always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Inclusive bounds `(lo, hi)` of the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn inclusive_bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn inclusive_bounds(self) -> (T, T) {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        (T::from_i128(lo), T::from_i128(hi - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn inclusive_bounds(self) -> (T, T) {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
        (T::from_i128(lo), T::from_i128(hi))
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        let (lo, hi) = range.inclusive_bounds();
        let (lo, hi) = (lo.to_i128(), hi.to_i128());
        let span = (hi - lo + 1) as u128;
        // Widening multiply maps the 64-bit draw onto the span with
        // negligible bias for the test-sized ranges used here.
        let scaled = ((self.next_u64() as u128) * span) >> 64;
        T::from_i128(lo + scaled as i128)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: Rng> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via splitmix64. Fast, tiny, and seed-stable across releases.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
