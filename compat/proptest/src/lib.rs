//! Vendored minimal stand-in for the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the external `proptest` dependency is replaced by this path crate.
//! It covers exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` argument bindings;
//! * strategies: [`any`], integer ranges (`a..b`, `a..=b`), and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs so it can be replayed by seed), and `.proptest-regressions`
//! files are ignored. Case generation is deterministic per test name, so
//! runs are reproducible.

use std::fmt::Debug;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Deterministic generator feeding the strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — adequate for test-input generation.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u128) -> u128 {
        ((self.next_u64() as u128) * bound) >> 64
    }
}

/// Build the RNG for one case of one test, keyed by test path and case
/// index so every test sees an independent, reproducible stream.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    for b in test_path.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h = (h ^ case as u64).wrapping_mul(0x100000001b3);
    TestRng {
        state: h | 1, // xorshift state must be non-zero
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a type's full domain: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty strategy range {lo}..{hi}");
                (lo + rng.below((hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                (lo + rng.below((hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` blocks need in scope.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Supports the standard form used in this
/// workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                let mut successes: u32 = 0;
                let mut attempt: u32 = 0;
                // Rejected cases (prop_assume!) don't count; bail out if
                // the assumptions reject nearly everything.
                let max_attempts = cfg.cases.saturating_mul(16).max(64);
                while successes < cfg.cases {
                    assert!(
                        attempt < max_attempts,
                        "proptest {path}: too many rejected cases \
                         ({successes}/{} passed after {attempt} attempts)",
                        cfg.cases
                    );
                    let mut rng = $crate::test_rng(path, attempt);
                    attempt += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = [
                        $(format!("    {} = {:?}", stringify!($arg), &$arg)),+
                    ].join("\n");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => successes += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {path} failed at case {}:\n  {msg}\n  inputs:\n{inputs}",
                            attempt - 1
                        ),
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}\n    left: {:?}\n   right: {:?}",
            format!($($fmt)+), lhs, rhs
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n    both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Reject the current case (it is skipped, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3..9usize, y in -4..=4i64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips_without_failing(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_path_and_case() {
        let a = crate::test_rng("some::test", 3).next_u64();
        let b = crate::test_rng("some::test", 3).next_u64();
        let c = crate::test_rng("some::test", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
