//! The paper's theorems, property-tested over random DFGs (the benchmark
//! instantiation lives in `cred-core`'s unit tests).

use cred::core::theorems;
use cred::dfg::{gen, Dfg};
use cred::retime::min_period_retiming;
use cred::retime::span::{compact_values, min_span_retiming};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.3,
            back_edges: (nodes / 2).max(1),
            max_delay: 3,
            max_time: 1,
        },
    )
}

fn tuned(g: &Dfg) -> cred::retime::Retiming {
    let opt = min_period_retiming(g);
    let r = min_span_retiming(g, opt.period).unwrap();
    compact_values(g, opt.period, &r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn theorem_4_1_prologue_replacement(seed in any::<u64>(), nodes in 2..8usize, n in 1..40u64) {
        let g = graph_from(seed, nodes);
        let r = tuned(&g);
        prop_assert!(theorems::theorem_4_1(&g, &r, n).is_ok());
    }

    #[test]
    fn theorem_4_2_epilogue_replacement(seed in any::<u64>(), nodes in 2..8usize, n in 1..40u64) {
        let g = graph_from(seed, nodes);
        let r = tuned(&g);
        // The epilogue window claim needs the windows not to overlap
        // (n >= M_r); smaller n is covered by the VM equivalence tests.
        prop_assume!(n as i64 >= r.max_value());
        prop_assert!(theorems::theorem_4_2(&g, &r, n).is_ok());
    }

    #[test]
    fn theorem_4_3_total_reduction(seed in any::<u64>(), nodes in 2..8usize, n in 1..30u64) {
        let g = graph_from(seed, nodes);
        let r = tuned(&g);
        prop_assert!(theorems::theorem_4_3(&g, &r, n).is_ok());
    }

    #[test]
    fn theorem_4_4_unfold_retime_size(seed in any::<u64>(), nodes in 2..7usize, f in 2..4usize) {
        let g = graph_from(seed, nodes);
        prop_assert!(theorems::theorem_4_4(&g, f, 120).is_ok());
    }

    #[test]
    fn theorem_4_5_retime_unfold_size(seed in any::<u64>(), nodes in 2..7usize, f in 2..4usize) {
        let g = graph_from(seed, nodes);
        prop_assert!(theorems::theorem_4_5(&g, f, 120).is_ok());
    }

    #[test]
    fn theorem_4_6_hidden_prologue(seed in any::<u64>(), nodes in 2..7usize, f in 2..4usize) {
        let g = graph_from(seed, nodes);
        let r = tuned(&g);
        prop_assert!(theorems::theorem_4_6(&g, &r, f, 60).is_ok());
    }

    #[test]
    fn theorem_4_7_register_preservation(seed in any::<u64>(), nodes in 2..7usize, f in 2..5usize) {
        let g = graph_from(seed, nodes);
        let r = tuned(&g);
        prop_assert!(theorems::theorem_4_7(&g, &r, f, 60).is_ok());
    }
}
