//! End-to-end: modulo scheduling (the TI-style software-pipelining flow of
//! the paper's reference \[4\]) feeds CRED exactly like OPT retiming does —
//! the stage retiming is legal, the CRED kernel verifies, and the code
//! size is `L + 2 * P`.

use cred::codegen::cred::{cred_pipelined, cred_retime_unfold};
use cred::codegen::DecMode;
use cred::dfg::gen;
use cred::kernels::all_benchmarks;
use cred::schedule::modulo::{mii, modulo_schedule, stage_retiming};
use cred::schedule::FuConfig;
use cred::vm::check_against_reference;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn modulo_stage_retiming_feeds_cred_on_benchmarks() {
    let fu = FuConfig::with_units(4, 2);
    for (name, g) in all_benchmarks() {
        let s = modulo_schedule(&g, &fu, 64).unwrap_or_else(|| panic!("{name}: unschedulable"));
        s.verify(&g, &fu).unwrap();
        assert!(s.ii >= mii(&g, &fu), "{name}");
        let r = stage_retiming(&g, &s);
        assert!(r.is_legal(&g), "{name}");
        let prog = cred_pipelined(&g, &r, 101);
        assert_eq!(
            prog.code_size(),
            g.node_count() + 2 * r.register_count(),
            "{name}"
        );
        check_against_reference(&g, &prog).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn modulo_cred_with_unfolding() {
    let fu = FuConfig::with_units(4, 2);
    for (name, g) in all_benchmarks().into_iter().take(3) {
        let s = modulo_schedule(&g, &fu, 64).unwrap();
        let r = stage_retiming(&g, &s);
        for f in [2usize, 3] {
            for mode in [DecMode::Bulk, DecMode::PerCopy] {
                let prog = cred_retime_unfold(&g, &r, f, 50, mode);
                check_against_reference(&g, &prog)
                    .unwrap_or_else(|e| panic!("{name} f={f} {mode:?}: {e}"));
            }
        }
    }
}

#[test]
fn modulo_cred_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(2112);
    let fu = FuConfig::with_units(2, 1);
    let mut covered = 0;
    for _ in 0..25 {
        let g = gen::random_dfg(
            &mut rng,
            &gen::RandomDfgConfig {
                nodes: 8,
                max_delay: 3,
                max_time: 2,
                ..Default::default()
            },
        );
        let Some(s) = modulo_schedule(&g, &fu, 64) else {
            continue;
        };
        let r = stage_retiming(&g, &s);
        let prog = cred_pipelined(&g, &r, 33);
        check_against_reference(&g, &prog).unwrap();
        covered += 1;
    }
    assert!(covered >= 15, "scheduler should handle most random graphs");
}

#[test]
fn modulo_ii_comparable_to_retiming_period() {
    // With ample resources, the modulo II should be close to the OPT
    // retiming period (both are bounded below by ceil(B)).
    let fu = FuConfig::with_units(8, 8);
    for (name, g) in all_benchmarks() {
        let s = modulo_schedule(&g, &fu, 64).unwrap();
        let opt = cred::retime::min_period_retiming(&g);
        let rec = cred::schedule::modulo::rec_mii(&g);
        assert!(s.ii >= rec, "{name}");
        // Modulo scheduling may beat the *integer-period* retiming when
        // the bound is fractional, but never by more than a factor of 2
        // on these kernels; and it is never worse than 2x OPT.
        assert!(
            s.ii <= opt.period * 2,
            "{name}: II {} vs period {}",
            s.ii,
            opt.period
        );
    }
}
