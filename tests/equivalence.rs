//! Cross-crate equivalence battery: every program form every generator can
//! emit must execute bit-identically to the direct DFG recurrence, for a
//! grid of trip counts and unfolding factors including the awkward cases
//! (`n mod f = 0`, `n < M_r`, `f > M_r`, `f > n`).
//!
//! This is the mechanical verification of Theorems 4.1, 4.2, 4.6, and 4.7:
//! the CRED kernels replace prologue, epilogue, and remainder code exactly.

use cred::codegen::cred::{cred_pipelined, cred_retime_unfold, cred_unfold_retime, cred_unfolded};
use cred::codegen::pipeline::{original_program, pipelined_program};
use cred::codegen::unfolded::{retime_unfold_program, unfold_retime_program, unfolded_program};
use cred::codegen::DecMode;
use cred::dfg::{gen, Dfg};
use cred::retime::{min_period_retiming, Retiming};
use cred::unfold::unfold;
use cred::vm::check_against_reference;
use rand::{rngs::StdRng, SeedableRng};

fn sample_graphs(seed: u64, count: usize, nodes: usize) -> Vec<Dfg> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            gen::random_dfg(
                &mut rng,
                &gen::RandomDfgConfig {
                    nodes,
                    max_delay: 3,
                    back_edges: 2,
                    forward_edge_prob: 0.35,
                    max_time: 1,
                },
            )
        })
        .collect()
}

const NS: &[u64] = &[1, 2, 3, 4, 5, 7, 9, 12, 100, 101];
const FS: &[usize] = &[1, 2, 3, 4, 5];

#[test]
fn original_matches_reference() {
    for g in sample_graphs(1, 8, 6) {
        for &n in NS {
            check_against_reference(&g, &original_program(&g, n))
                .unwrap_or_else(|e| panic!("original n={n}: {e}"));
        }
    }
}

#[test]
fn pipelined_matches_reference() {
    for g in sample_graphs(2, 8, 6) {
        let r = min_period_retiming(&g).retiming;
        for &n in NS {
            check_against_reference(&g, &pipelined_program(&g, &r, n))
                .unwrap_or_else(|e| panic!("pipelined n={n}: {e}"));
        }
    }
}

#[test]
fn cred_pipelined_matches_reference() {
    for g in sample_graphs(3, 8, 6) {
        let r = min_period_retiming(&g).retiming;
        for &n in NS {
            check_against_reference(&g, &cred_pipelined(&g, &r, n))
                .unwrap_or_else(|e| panic!("cred n={n} r={:?}: {e}", r.values()));
        }
    }
}

#[test]
fn unfolded_matches_reference() {
    for g in sample_graphs(4, 6, 5) {
        for &f in FS {
            for &n in NS {
                check_against_reference(&g, &unfolded_program(&g, f, n))
                    .unwrap_or_else(|e| panic!("unfolded f={f} n={n}: {e}"));
            }
        }
    }
}

#[test]
fn cred_unfolded_matches_reference_both_modes() {
    for g in sample_graphs(5, 6, 5) {
        for &f in FS {
            for &n in NS {
                for mode in [DecMode::PerCopy, DecMode::Bulk] {
                    check_against_reference(&g, &cred_unfolded(&g, f, n, mode))
                        .unwrap_or_else(|e| panic!("cred-unfolded f={f} n={n} {mode:?}: {e}"));
                }
            }
        }
    }
}

#[test]
fn retime_unfold_matches_reference() {
    for g in sample_graphs(6, 6, 5) {
        let r = min_period_retiming(&g).retiming;
        for &f in FS {
            for &n in NS {
                check_against_reference(&g, &retime_unfold_program(&g, &r, f, n))
                    .unwrap_or_else(|e| panic!("retime-unfold f={f} n={n}: {e}"));
            }
        }
    }
}

#[test]
fn cred_retime_unfold_matches_reference_both_modes() {
    for g in sample_graphs(7, 6, 5) {
        let r = min_period_retiming(&g).retiming;
        for &f in FS {
            for &n in NS {
                for mode in [DecMode::PerCopy, DecMode::Bulk] {
                    check_against_reference(&g, &cred_retime_unfold(&g, &r, f, n, mode))
                        .unwrap_or_else(|e| {
                            panic!(
                                "cred-retime-unfold f={f} n={n} {mode:?} r={:?}: {e}",
                                r.values()
                            )
                        });
                }
            }
        }
    }
}

#[test]
fn unfold_retime_matches_reference() {
    for g in sample_graphs(8, 5, 5) {
        for &f in &[1usize, 2, 3, 4] {
            let u = unfold(&g, f);
            let r_f = min_period_retiming(&u.graph).retiming;
            for &n in NS {
                check_against_reference(&g, &unfold_retime_program(&g, &u, &r_f, n))
                    .unwrap_or_else(|e| panic!("unfold-retime f={f} n={n}: {e}"));
            }
        }
    }
}

#[test]
fn cred_unfold_retime_matches_reference() {
    for g in sample_graphs(9, 5, 5) {
        for &f in &[1usize, 2, 3] {
            let u = unfold(&g, f);
            let r_f = min_period_retiming(&u.graph).retiming;
            for &n in NS {
                check_against_reference(&g, &cred_unfold_retime(&g, &u, &r_f, n))
                    .unwrap_or_else(|e| panic!("cred-unfold-retime f={f} n={n}: {e}"));
            }
        }
    }
}

#[test]
fn zero_retiming_cred_equals_original_semantics() {
    // CRED with the identity retiming must still be a correct (if
    // pointless) program: one register, window exactly 1..=n.
    for g in sample_graphs(10, 4, 4) {
        for &n in NS {
            let r = Retiming::zero(g.node_count());
            check_against_reference(&g, &cred_pipelined(&g, &r, n)).unwrap();
        }
    }
}

#[test]
fn hand_retimings_also_verify() {
    // Not just OPT retimings: any legal normalized retiming must produce
    // correct programs. Use rotation-scheduling retimings as a second
    // source.
    use cred::schedule::{rotation_schedule, FuConfig};
    for g in sample_graphs(11, 5, 6) {
        let rot = rotation_schedule(&g, &FuConfig::with_units(2, 1), 25);
        let r = rot.retiming;
        for &n in &[1u64, 5, 23] {
            check_against_reference(&g, &pipelined_program(&g, &r, n)).unwrap();
            check_against_reference(&g, &cred_pipelined(&g, &r, n)).unwrap();
            for &f in &[2usize, 3] {
                check_against_reference(&g, &cred_retime_unfold(&g, &r, f, n, DecMode::Bulk))
                    .unwrap();
            }
        }
    }
}

#[test]
fn cred_rotating_matches_reference() {
    // The IA-64-style rotating-predicate variant (hardware auto-decrement,
    // no Dec instructions) must be execution-equivalent too.
    use cred::codegen::cred::cred_rotating;
    for g in sample_graphs(12, 6, 5) {
        let r = min_period_retiming(&g).retiming;
        for &f in FS {
            for &n in NS {
                check_against_reference(&g, &cred_rotating(&g, &r, f, n))
                    .unwrap_or_else(|e| panic!("cred-rotating f={f} n={n}: {e}"));
            }
        }
    }
}

#[test]
fn partial_collapses_match_reference() {
    // The ref-[4]-style half measures (straight-line prologue OR epilogue,
    // predication for the other half) must also be exact.
    use cred::codegen::collapse::{collapse_epilogue, collapse_prologue};
    for g in sample_graphs(13, 6, 5) {
        let r = min_period_retiming(&g).retiming;
        for &n in NS {
            if (n as i64) < r.max_value() {
                continue; // straight-line halves assume n >= M_r
            }
            check_against_reference(&g, &collapse_epilogue(&g, &r, n))
                .unwrap_or_else(|e| panic!("collapse-epilogue n={n}: {e}"));
            check_against_reference(&g, &collapse_prologue(&g, &r, n))
                .unwrap_or_else(|e| panic!("collapse-prologue n={n}: {e}"));
        }
    }
}
