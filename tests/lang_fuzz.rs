//! Grammar-directed fuzzing of the whole source-to-CRED pipeline:
//! generate random valid loop kernels as *text*, then parse, lower,
//! retime, generate all program forms, and verify each against the
//! recurrence. Any panic or verification failure anywhere in the stack
//! fails the test.

use cred::codegen::DecMode;
use cred::core::{CodeSizeReducer, ReducerConfig};
use proptest::prelude::*;

/// Render a random kernel with `n` statements. Statement `k` defines
/// array `v{k}`; references point at any array with a delay chosen so the
/// zero-delay subgraph stays acyclic (refs to self or earlier arrays use
/// delay >= 1; refs to later arrays may use delay 0) — mirroring the
/// generator invariants of `cred_dfg::gen`.
fn render_kernel(n: usize, shapes: &[u8], delays: &[u8], coeffs: &[i8]) -> String {
    let mut out = String::from("loop {\n");
    let mut di = 0usize;
    let mut delay_for = |def: usize, used: usize| -> u32 {
        let raw = delays[di % delays.len()] as u32 % 3;
        di += 1;
        if used <= def {
            raw + 1 // self/backward reference: must carry a delay
        } else {
            raw
        }
    };
    for k in 0..n {
        let shape = shapes[k % shapes.len()] % 6;
        let c = coeffs[k % coeffs.len()] as i64;
        let r1 = (k * 7 + 3) % n;
        let r2 = (k * 5 + 1) % n;
        let d1 = delay_for(k, r1);
        let d2 = delay_for(k, r2);
        let fmt_ref = |a: usize, d: u32| {
            if d == 0 {
                format!("v{a}[i]")
            } else {
                format!("v{a}[i-{d}]")
            }
        };
        let rhs = match shape {
            0 => format!("{c}"),
            1 => {
                // Render negative constants as subtraction: the grammar
                // has no unary minus in factor position.
                if c >= 0 {
                    format!("{} + {c}", fmt_ref(r1, d1))
                } else {
                    format!("{} - {}", fmt_ref(r1, d1), -(c as i128))
                }
            }
            2 => format!("{} + {}", fmt_ref(r1, d1), fmt_ref(r2, d2)),
            3 => format!("{} - {}", fmt_ref(r1, d1), fmt_ref(r2, d2)),
            4 => format!("{} * {}", fmt_ref(r1, d1), fmt_ref(r2, d2)),
            _ => format!("{} * {}", 1 + (c.rem_euclid(5)), fmt_ref(r1, d1)),
        };
        out.push_str(&format!("    v{k}[i] = {rhs};\n"));
    }
    out.push_str("}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_survive_the_whole_pipeline(
        n in 2..9usize,
        shapes in proptest::collection::vec(any::<u8>(), 4..12),
        delays in proptest::collection::vec(any::<u8>(), 4..12),
        coeffs in proptest::collection::vec(any::<i8>(), 4..12),
        trip in 1..40u64,
        f in 1..4usize,
    ) {
        let src = render_kernel(n, &shapes, &delays, &coeffs);
        let g = cred_lang::parse(&src)
            .unwrap_or_else(|e| panic!("generated source rejected: {e}\n{src}"));
        prop_assert_eq!(g.node_count(), n);
        let red = CodeSizeReducer::new(g)
            .with_config(ReducerConfig {
                trip_count: trip,
                unfold_factor: f,
                dec_mode: if f % 2 == 0 { DecMode::PerCopy } else { DecMode::Bulk },
                verify: true, // the reducer VM-checks every program
            })
            .run()
            .unwrap_or_else(|e| panic!("pipeline failed: {e}\n{src}"));
        prop_assert!(red.cred.code_size() <= red.pipelined.code_size().max(red.cred.code_size()));
    }

    #[test]
    fn random_kernels_roundtrip_through_unparse(
        n in 2..8usize,
        shapes in proptest::collection::vec(any::<u8>(), 4..12),
        delays in proptest::collection::vec(any::<u8>(), 4..12),
        coeffs in proptest::collection::vec(any::<i8>(), 4..12),
    ) {
        let src = render_kernel(n, &shapes, &delays, &coeffs);
        let g = cred_lang::parse(&src).unwrap();
        let text = cred_lang::unparse(&g);
        let g2 = cred_lang::parse(&text)
            .unwrap_or_else(|e| panic!("unparse output rejected: {e}\n{text}"));
        prop_assert_eq!(g.reference_execution(9), g2.reference_execution(9));
    }
}
