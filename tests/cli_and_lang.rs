//! Integration tests for the language frontend and the shipped kernel
//! sources: every `.loop` file in `kernels/` parses, analyzes, reduces,
//! and verifies end-to-end; unparsing the benchmark graphs round-trips.

use cred::core::{CodeSizeReducer, ReducerConfig};
use cred::kernels::all_benchmarks;
use cred_lang::{parse, unparse};

#[test]
fn shipped_kernel_files_reduce_end_to_end() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/kernels");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("kernels/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("loop") {
            continue;
        }
        found += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let g = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let red = CodeSizeReducer::new(g)
            .with_config(ReducerConfig {
                trip_count: 31,
                unfold_factor: 2,
                ..Default::default()
            })
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(red.cred.code_size() <= red.pipelined.code_size());
    }
    assert!(found >= 3, "expected shipped kernel files");
}

#[test]
fn figure3_loop_file_matches_paper_retiming() {
    let src = include_str!("../kernels/figure3.loop");
    let g = parse(src).unwrap();
    assert_eq!(g.node_count(), 5);
    let opt = cred::retime::min_period_retiming(&g);
    assert_eq!(opt.period, 1);
    let r = cred::retime::span::min_span_retiming(&g, 1).unwrap();
    // The paper's Figure 3 retiming: r = {A:3, B:2, C:2, D:1, E:0}.
    let vals: Vec<i64> = g.node_ids().map(|v| r.get(v)).collect();
    assert_eq!(vals, vec![3, 2, 2, 1, 0]);
}

#[test]
fn benchmark_graphs_unparse_and_reparse() {
    use cred::dfg::OpKind;
    // A single-input Mul(c)/Mac(c) evaluates exactly like Add(c), and the
    // textual form cannot distinguish them; compare ops up to that
    // canonicalization.
    let canon = |op: OpKind, fan_in: usize| match (op, fan_in) {
        (OpKind::Mul(c), 0 | 1) | (OpKind::Mac(c), 0 | 1) => OpKind::Add(c),
        (op, _) => op,
    };
    for (name, g) in all_benchmarks() {
        let text = unparse(&g);
        let g2 = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
        assert_eq!(g.node_count(), g2.node_count(), "{name}");
        assert_eq!(g.edge_count(), g2.edge_count(), "{name}");
        for v in g.node_ids() {
            let fan_in = g.in_edges(v).len();
            assert_eq!(
                canon(g.node(v).op, fan_in),
                canon(g2.node(v).op, fan_in),
                "{name}/{}",
                g.node(v).name
            );
        }
        assert_eq!(
            g.reference_execution(7),
            g2.reference_execution(7),
            "{name}: semantics must survive the round trip"
        );
    }
}

#[test]
fn extra_kernels_unparse_and_reparse() {
    for g in [
        cred::kernels::fft_butterflies(3),
        cred::kernels::lms_adaptive(3),
        cred::kernels::correlator(4),
        cred::kernels::fir_filter(6),
        cred::kernels::chao_sha_fig8(),
    ] {
        let text = unparse(&g);
        let g2 = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.reference_execution(7), g2.reference_execution(7));
    }
}
