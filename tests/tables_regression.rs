//! Regression locks for the experiment tables: the exact measured cells of
//! EXPERIMENTS.md. A change to any algorithm that silently shifts a table
//! value fails here.

use cred_bench::{compare_orders, table1_row, table2_row};
use cred_codegen::DecMode;
use cred_kernels::all_benchmarks;

#[test]
fn table1_measured_cells() {
    // (orig, retimed, cred, registers, period, m_r)
    let expected = [
        ("IIR Filter", 8, 16, 12, 2, 3, 1),
        ("Differential Equation", 11, 33, 17, 3, 2, 2),
        ("All-pole Filter", 15, 60, 23, 4, 2, 3),
        ("Elliptic Filter", 34, 102, 40, 3, 5, 2),
        ("4-stage Lattice Filter", 26, 78, 32, 3, 5, 2),
        ("Volterra Filter", 27, 54, 31, 2, 3, 1),
    ];
    for ((name, g), (ename, orig, ret, cr, rgs, period, m_r)) in
        all_benchmarks().iter().zip(expected)
    {
        assert_eq!(*name, ename);
        let row = table1_row(name, g, 101);
        assert_eq!(
            (
                row.orig,
                row.retimed,
                row.cred,
                row.registers,
                row.period,
                row.m_r
            ),
            (orig, ret, cr, rgs, period, m_r),
            "{name}"
        );
    }
}

#[test]
fn table2_measured_cells() {
    // (retime_unfold, cred, registers)
    let expected = [
        (40, 32, 2),
        (55, 45, 3),
        (120, 61, 4),
        (170, 114, 3),
        (130, 90, 3),
        (135, 89, 2),
    ];
    for ((name, g), (ru, cr, rgs)) in all_benchmarks().iter().zip(expected) {
        let row = table2_row(name, g, 3, 101);
        assert_eq!(
            (row.retime_unfold, row.cred, row.registers),
            (ru, cr, rgs),
            "{name}"
        );
    }
}

#[test]
fn table3_measured_cells() {
    let g = cred_kernels::chao_sha_fig8();
    // (f, unfold_retime, retime_unfold, cred, iteration_period)
    let expected = [
        (2usize, 10, 10, 12, 13.5),
        (3, 30, 30, 19, 14.0),
        (4, 20, 20, 22, 13.5),
    ];
    for (f, ur, ru, cr, period) in expected {
        let c = compare_orders(&g, f, None, 120, DecMode::Bulk);
        assert_eq!(
            (c.unfold_retime, c.retime_unfold, c.cred),
            (ur, ru, cr),
            "f={f}"
        );
        assert!((c.iteration_period - period).abs() < 1e-9, "f={f}");
    }
}

#[test]
fn table4_measured_cells() {
    let g = cred_kernels::lattice_filter();
    // CRED row matches the paper exactly: 61 / 90 / 119 with 3 registers.
    let expected = [
        (2usize, 104, 104, 61),
        (3, 156, 156, 90),
        (4, 208, 208, 119),
    ];
    for (f, ur, ru, cr) in expected {
        let c = compare_orders(&g, f, None, 96, DecMode::PerCopy);
        assert_eq!(
            (c.unfold_retime, c.retime_unfold, c.cred, c.registers),
            (ur, ru, cr, 3),
            "f={f}"
        );
    }
}

#[test]
fn table_orderings_hold() {
    // The paper's qualitative claims, independent of exact cells.
    for (name, g) in all_benchmarks() {
        let r1 = table1_row(name, &g, 101);
        assert!(r1.cred < r1.retimed, "{name}: CRED must shrink the loop");
        assert!(r1.retimed >= r1.orig, "{name}");
        let r2 = table2_row(name, &g, 3, 101);
        assert!(r2.cred < r2.retime_unfold, "{name}");
    }
    let lat = cred_kernels::lattice_filter();
    for f in [2usize, 3, 4] {
        let c = compare_orders(&lat, f, None, 96, DecMode::PerCopy);
        assert!(c.retime_unfold <= c.unfold_retime, "Theorem 4.5 at f={f}");
        assert!(c.cred < c.retime_unfold, "CRED wins at f={f}");
    }
}
