//! Fault injection: mutate correct CRED programs and check the VM catches
//! every corruption. This validates that the equivalence battery actually
//! has teeth — a checker that accepts mutants would prove nothing.

use cred::codegen::cred::{cred_pipelined, cred_retime_unfold};
use cred::codegen::ir::{Guard, Inst, LoopProgram};
use cred::codegen::DecMode;
use cred::dfg::{gen, Dfg, OpKind};
use cred::retime::min_period_retiming;
use cred::vm::check_against_reference;
use rand::{rngs::StdRng, SeedableRng};

fn sample(seed: u64) -> (Dfg, cred::retime::Retiming) {
    let g = gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes: 6,
            forward_edge_prob: 0.4,
            back_edges: 3,
            max_delay: 3,
            max_time: 1,
        },
    );
    let r = min_period_retiming(&g).retiming;
    (g, r)
}

fn assert_rejected(g: &Dfg, p: &LoopProgram, what: &str) {
    assert!(
        check_against_reference(g, p).is_err(),
        "VM accepted a corrupted program: {what}"
    );
}

/// Every mutation below must be detected for every sampled program.
#[test]
fn setup_init_off_by_one_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        if r.max_value() == 0 {
            continue;
        }
        let mut p = cred_pipelined(&g, &r, 23);
        if let Some(Inst::Setup { init, .. }) = p.pre.first_mut() {
            *init += 1;
        }
        assert_rejected(&g, &p, "setup init +1");
    }
}

#[test]
fn setup_bound_too_loose_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        if r.max_value() == 0 {
            continue;
        }
        let mut p = cred_pipelined(&g, &r, 23);
        if let Some(Inst::Setup { bound, .. }) = p.pre.first_mut() {
            *bound -= 1; // window one iteration too wide
        }
        assert_rejected(&g, &p, "bound -1 (overruns n)");
    }
}

#[test]
fn missing_decrement_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        if r.max_value() == 0 {
            continue;
        }
        let mut p = cred_pipelined(&g, &r, 23);
        let body = &mut p.body.as_mut().unwrap().body;
        let before = body.len();
        // Remove one decrement: its register's window freezes.
        if let Some(pos) = body.iter().position(|i| matches!(i, Inst::Dec { .. })) {
            body.remove(pos);
        }
        assert_ne!(body.len(), before);
        assert_rejected(&g, &p, "missing decrement");
    }
}

#[test]
fn wrong_guard_offset_rejected() {
    for seed in 0..12u64 {
        let (g, r) = sample(seed);
        let mut p = cred_retime_unfold(&g, &r, 3, 23, DecMode::Bulk);
        let body = &mut p.body.as_mut().unwrap().body;
        let mut mutated = false;
        for inst in body.iter_mut() {
            if let Inst::Compute {
                guard: Some(Guard { offset, .. }),
                ..
            } = inst
            {
                if *offset == 2 {
                    *offset = 0;
                    mutated = true;
                    break;
                }
            }
        }
        if mutated {
            assert_rejected(&g, &p, "guard offset 2 -> 0");
        }
    }
}

#[test]
fn wrong_operation_constant_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        let mut p = cred_pipelined(&g, &r, 23);
        let body = &mut p.body.as_mut().unwrap().body;
        for inst in body.iter_mut() {
            if let Inst::Compute { op, .. } = inst {
                *op = match *op {
                    OpKind::Add(c) => OpKind::Add(c + 1),
                    OpKind::Sub(c) => OpKind::Sub(c + 1),
                    OpKind::Mul(c) => OpKind::Mul(c + 1),
                    OpKind::Mac(c) => OpKind::Mac(c + 1),
                    OpKind::Scale(k, c) => OpKind::Scale(k, c + 1),
                    OpKind::ScaledMul(k, c) => OpKind::ScaledMul(k, c + 1),
                    OpKind::Input(c) => OpKind::Input(c + 1),
                };
                break;
            }
        }
        assert_rejected(&g, &p, "op constant +1");
    }
}

#[test]
fn shifted_source_index_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        let mut p = cred_pipelined(&g, &r, 23);
        let body = &mut p.body.as_mut().unwrap().body;
        let mut mutated = None;
        for inst in body.iter_mut() {
            if let Inst::Compute { srcs, .. } = inst {
                if let Some(s) = srcs.first_mut() {
                    if let cred::codegen::Index::Loop { offset, .. } = &mut s.index {
                        *offset -= 1; // read one iteration too early
                        mutated = Some(s.array);
                        break;
                    }
                }
            }
        }
        if let Some(arr) = mutated {
            // Skip genuinely equivalent mutants: reading a shift-invariant
            // (constant) value stream one iteration early changes nothing.
            let reference = g.reference_execution(23);
            let stream = &reference[arr as usize];
            if stream.windows(2).all(|w| w[0] == w[1]) {
                continue;
            }
            assert_rejected(&g, &p, "source index -1");
        }
    }
}

#[test]
fn truncated_loop_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        let mut p = cred_pipelined(&g, &r, 23);
        p.body.as_mut().unwrap().hi -= 1; // one iteration short
        assert_rejected(&g, &p, "loop one iteration short");
    }
}

#[test]
fn extended_loop_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        let mut p = cred_pipelined(&g, &r, 23);
        // One extra iteration: guards go below their bound and stay off,
        // so the extension is *masked correctly* and must still verify —
        // unless the bound mutation is combined. This documents that CRED
        // kernels are robust to over-running the loop.
        p.body.as_mut().unwrap().hi += 1;
        check_against_reference(&g, &p)
            .expect("guards mask extra iterations; extension is harmless");
    }
}

#[test]
fn swapped_dest_arrays_rejected() {
    for seed in 0..10u64 {
        let (g, r) = sample(seed);
        let mut p = cred_pipelined(&g, &r, 23);
        let body = &mut p.body.as_mut().unwrap().body;
        // Swap the destination arrays of the first two computes.
        let computes: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Inst::Compute { .. }))
            .map(|(i, _)| i)
            .collect();
        if computes.len() >= 2 {
            let (a, b) = (computes[0], computes[1]);
            let arr_a = match &body[a] {
                Inst::Compute { dest, .. } => dest.array,
                _ => unreachable!(),
            };
            let arr_b = match &body[b] {
                Inst::Compute { dest, .. } => dest.array,
                _ => unreachable!(),
            };
            // Skip genuinely equivalent mutants: if the two nodes compute
            // identical value streams (e.g. two constant adders with no
            // inputs), swapping their destinations is not a fault.
            let reference = g.reference_execution(23);
            if reference[arr_a as usize] == reference[arr_b as usize] {
                continue;
            }
            if let Inst::Compute { dest, .. } = &mut body[a] {
                dest.array = arr_b;
            }
            if let Inst::Compute { dest, .. } = &mut body[b] {
                dest.array = arr_a;
            }
            assert_rejected(&g, &p, "swapped destination arrays");
        }
    }
}
