//! Replay of the resource-constrained corpus entries: every committed
//! machine-tagged `.case` file is rescheduled by the exact solver, and
//! this test pins the II it must prove optimal and the shape of the
//! infeasibility witness on the topmost rejected rung. A solver change
//! that shifts any recorded II or downgrades a closed-form certificate
//! to a brute-force `Exhausted` one fails here, not silently in CI.

use cred_exact::{check, exact_schedule, Infeasible};
use cred_retime::min_period_retiming;
use cred_verify::corpus;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Coarse witness shape for pinning (the full arithmetic is re-checked
/// by `check_witness` on every rung).
fn witness_tag(w: &Infeasible) -> &'static str {
    match w {
        Infeasible::OpExceedsWindow { .. } => "window",
        Infeasible::ResourceCap { .. } => "resource-cap",
        Infeasible::IssueWidth { .. } => "issue-width",
        Infeasible::CriticalCycle { .. } => "critical-cycle",
        Infeasible::Exhausted { .. } => "exhausted",
    }
}

#[test]
fn machine_corpus_replays_with_recorded_ii_and_witness() {
    // stem -> (proven-optimal II, witness tag of the last rejected rung).
    let expected: &[(&str, u64, &str)] = &[
        ("scalar-parallel-loops", 2, "issue-width"),
        ("scalar-mac-chain", 3, "resource-cap"),
        ("scalar-issue-bound", 3, "issue-width"),
        ("vliw2-mac-latency", 2, "window"),
        ("vliw2-mixed", 4, "resource-cap"),
        // II 2 satisfies every closed-form screen (occupancy 3 <= 4,
        // issue 6 <= 8, cycle 6 <= 6) but the alternating zero-delay
        // chain forces all three ops of one class into the same slot —
        // only the search itself can prove that, so the witness is the
        // certificate-by-search.
        ("vliw4-balanced", 3, "exhausted"),
        // The custom latency override stretches the mac to 2 cycles, so
        // II 1 already fails the per-op window screen.
        ("custom-tight", 2, "window"),
        ("scalar-unfold-retime", 4, "issue-width"),
        ("vliw2-percopy", 4, "critical-cycle"),
        // Same shape as vliw4-balanced one size up: at II 2 the ring's
        // strict slot alternation puts all four ops of each class in one
        // slot, which only the search can rule out.
        ("vliw4-wide-ring", 3, "exhausted"),
    ];
    for &(stem, want_ii, want_tag) in expected {
        let path = corpus_dir().join(format!("{stem}.case"));
        let case = corpus::load_case(&path).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(
            !case.machine.is_unconstrained(),
            "{stem}: expected a resource-constrained corpus entry"
        );
        let sched = exact_schedule(&case.graph, &case.machine);
        assert_eq!(sched.ii, want_ii, "{stem}: II drifted");
        check::check_schedule(&case.graph, &case.machine, &sched)
            .unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(sched.rejected.len() as u64, sched.ii - 1, "{stem}");
        for rung in &sched.rejected {
            check::check_witness(&case.graph, &case.machine, rung)
                .unwrap_or_else(|e| panic!("{stem} II {}: {e}", rung.ii));
        }
        let last = sched
            .rejected
            .last()
            .unwrap_or_else(|| panic!("{stem}: II 1 accepted, no witness to pin"));
        assert_eq!(
            witness_tag(&last.witness),
            want_tag,
            "{stem}: witness at II {} is {:?}",
            last.ii,
            last.witness
        );
    }
}

/// At least one committed case must show the headline phenomenon: a
/// machine whose exact II strictly exceeds the retiming-only minimum
/// period — resources, not dependences, set the rate.
#[test]
fn corpus_contains_resource_bound_kernels() {
    let mut strictly_above = 0;
    for case in corpus::load_dir(&corpus_dir()).unwrap() {
        if case.machine.is_unconstrained() {
            continue;
        }
        let sched = exact_schedule(&case.graph, &case.machine);
        if sched.ii > min_period_retiming(&case.graph).period {
            strictly_above += 1;
        }
    }
    assert!(
        strictly_above >= 1,
        "no committed case has exact II strictly above the retiming period"
    );
}
