//! Bounded fuzz smoke test: the differential pipeline must be clean on a
//! fixed seed. CI's `verify-smoke` job runs the same configuration through
//! the CLI (`cred verify --cases 200 --seed 0`).

use cred_verify::{fuzz_suite, CaseConfig, Executor, FuzzConfig};

#[test]
fn two_hundred_cases_seed_zero_are_clean() {
    let report = fuzz_suite(&FuzzConfig {
        cases: 200,
        seed: 0,
        case: CaseConfig::default(),
        shrink_failures: true,
        executor: Executor::Tape,
    });
    if let Some(f) = report.failures.first() {
        let detail = match &f.shrunk {
            Some((small, err)) => format!("shrunk to {small}: {err}"),
            None => String::new(),
        };
        panic!("{}: {} {detail}", f.case, f.error);
    }
    assert_eq!(report.cases_run, 200);
    assert!(report.by_order[0] > 50 && report.by_order[1] > 50);
}

#[test]
fn stress_axes_beyond_defaults_are_clean() {
    // Push each axis past the default envelope: more nodes, deeper
    // delays, non-unit times, bigger unfolding factors.
    let report = fuzz_suite(&FuzzConfig {
        cases: 60,
        seed: 1,
        case: CaseConfig {
            max_nodes: 14,
            max_delay: 6,
            max_time: 4,
            max_trip: 60,
            max_unfold: 6,
            machine: None,
        },
        shrink_failures: false,
        executor: Executor::Tape,
    });
    if let Some(f) = report.failures.first() {
        panic!("{}: {}", f.case, f.error);
    }
}
