//! Mutation test for the exact scheduler's reservation tables.
//!
//! `cred_exact::hooks::RESERVATION_SLACK` injects an off-by-one into the
//! solver's per-class conflict check: with slack 1 the search believes
//! every functional-unit class has one more unit than the machine model
//! declares, so it packs ops the real machine cannot issue together.
//! The fifth oracle layer re-validates every schedule with the
//! *independent* checker in `cred_exact::check` (which never reads the
//! hook), so the fuzzer must catch the mutant — and the greedy shrinker
//! must reduce the kill to a handful of nodes, mirroring the PR 3
//! guard-offset mutation test for the code generators.
//!
//! The hook is a process-global atomic, so this test lives alone in its
//! own integration-test binary: `cargo test` gives each test file its
//! own process, and nothing else here can observe the armed mutant.

use cred_verify::{fuzz_suite, FailureKind, FuzzConfig};
use std::sync::atomic::Ordering;

/// Restore the hook even if an assertion unwinds.
struct SlackGuard;
impl Drop for SlackGuard {
    fn drop(&mut self) {
        cred_exact::hooks::RESERVATION_SLACK.store(0, Ordering::SeqCst);
    }
}

#[test]
fn reservation_off_by_one_is_caught_and_shrinks_small() {
    cred_exact::hooks::RESERVATION_SLACK.store(1, Ordering::SeqCst);
    let _guard = SlackGuard;

    let report = fuzz_suite(&FuzzConfig {
        cases: 300,
        seed: 0,
        shrink_failures: true,
        ..FuzzConfig::default()
    });
    // The mutant must be killed, and by the layer that owns it.
    let kill = report
        .failures
        .iter()
        .find(|f| f.error.kind == FailureKind::Exact)
        .unwrap_or_else(|| {
            panic!(
                "reservation off-by-one survived 300 fuzz cases ({} other failures)",
                report.failures.len()
            )
        });
    // Every failure in this run is the mutant's doing — no other layer
    // may misattribute it.
    for f in &report.failures {
        assert_eq!(f.error.kind, FailureKind::Exact, "{}: {}", f.case, f.error);
    }
    // The shrinker reduces the kill to a tiny reproducer: a couple of
    // same-class ops on a constrained machine is all it takes.
    let (small, small_err) = kill.shrunk.as_ref().expect("shrinking was requested");
    assert_eq!(small_err.kind, FailureKind::Exact, "{small_err}");
    assert!(
        small.graph.node_count() <= 4,
        "shrunk reproducer still has {} nodes: {small}",
        small.graph.node_count()
    );
    // Slack only matters when a per-class cap exists, so the minimized
    // case must have kept its machine constraint.
    assert!(
        !small.machine.is_unconstrained(),
        "shrunk case lost the machine constraint: {small}"
    );
}
