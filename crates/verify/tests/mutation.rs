//! Mutation testing of the oracle itself: inject a classic off-by-one into
//! the generated CRED code — shift a conditional guard's static offset —
//! and require that (a) the differential oracle catches it and (b) the
//! shrinker reduces the reproducer to a tiny case.
//!
//! If the oracle ever goes blind to this bug class (guard windows
//! mis-masking the hidden prologue), this test fails, not the fuzzer.

use cred_codegen::{Inst, LoopProgram};
use cred_verify::{
    random_case, shrink, verify_case_mutated, Case, CaseConfig, FailureKind, TransformOrder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bump the static offset of the first guarded compute in the kernel of
/// every CRED-collapsed program.
fn bump_guard_offset(p: &mut LoopProgram) {
    if !p.name.starts_with("cred") {
        return;
    }
    if let Some(l) = &mut p.body {
        for inst in &mut l.body {
            if let Inst::Compute { guard: Some(g), .. } = inst {
                g.offset += 1;
                return;
            }
        }
    }
}

/// The mutation only bites when the case actually emits a guarded kernel,
/// so hunt the deterministic case stream for cases the oracle rejects
/// under the mutation.
fn failing_cases(count: usize) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = CaseConfig::default();
    let mut out = Vec::new();
    for i in 0..500 {
        let c = random_case(&mut rng, format!("mut{i}"), &cfg);
        if verify_case_mutated(&c, &bump_guard_offset).is_err() {
            out.push(c);
            if out.len() == count {
                break;
            }
        }
    }
    out
}

#[test]
fn guard_offset_bug_is_caught_often() {
    let failing = failing_cases(20);
    assert!(
        failing.len() >= 20,
        "expected at least 20 of 500 cases to expose the guard-offset bug, got {}",
        failing.len()
    );
    // Both transformation orders must be represented among the catches.
    assert!(failing
        .iter()
        .any(|c| c.order == TransformOrder::RetimeUnfold));
    assert!(failing
        .iter()
        .any(|c| c.order == TransformOrder::UnfoldRetime));
}

#[test]
fn guard_offset_bug_shrinks_to_tiny_case() {
    let seed = &failing_cases(1)[0];
    let still_fails = |c: &Case| verify_case_mutated(c, &bump_guard_offset).is_err();
    let small = shrink(seed, &still_fails);
    assert!(still_fails(&small));
    assert!(
        small.graph.node_count() <= 4,
        "shrunk case still has {} nodes: {small}",
        small.graph.node_count()
    );
    // The minimized case must fail in an execution-visible way, not a
    // static-size way (static checks are skipped under mutation).
    let err = verify_case_mutated(&small, &bump_guard_offset).unwrap_err();
    assert!(
        matches!(
            err.kind,
            FailureKind::Values | FailureKind::Dynamic | FailureKind::Trace
        ),
        "{err}"
    );
}
