//! Regression replay: every `.case` file committed under the repository's
//! `tests/corpus/` must still pass the full oracle, and the textual format
//! must roundtrip it byte-identically.

use cred_verify::{corpus, verify_case};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let cases = corpus::load_dir(&corpus_dir()).unwrap();
    assert!(
        !cases.is_empty(),
        "committed corpus must not be empty (see tests/corpus/README.md)"
    );
    for case in &cases {
        verify_case(case).unwrap_or_else(|e| panic!("{case}: {e}"));
    }
}

#[test]
fn committed_corpus_roundtrips() {
    for case in corpus::load_dir(&corpus_dir()).unwrap() {
        let text = corpus::to_text(&case);
        let back = corpus::from_text(&text, &case.label).unwrap();
        assert_eq!(corpus::to_text(&back), text, "{}", case.label);
        assert_eq!(back.graph.fingerprint(), case.graph.fingerprint());
    }
}
