//! Regression replay: every `.case` file committed under the repository's
//! `tests/corpus/` must still pass the full oracle — on both VM
//! executors, with identical evidence — and the textual format must
//! roundtrip it byte-identically.

use cred_verify::{case_programs, corpus, verify_case, verify_case_on, Executor};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let cases = corpus::load_dir(&corpus_dir()).unwrap();
    assert!(
        !cases.is_empty(),
        "committed corpus must not be empty (see tests/corpus/README.md)"
    );
    for case in &cases {
        verify_case(case).unwrap_or_else(|e| panic!("{case}: {e}"));
    }
}

/// Every committed shrunk failure replays through *both* executors: the
/// tree-walker and the tape produce identical oracle reports, and the
/// raw `DiffReport` evidence for every generated program is identical
/// too. A corpus case that ever diverged between the two would mean the
/// tape compiler disagrees with the reference semantics exactly where a
/// historical bug lived — the worst possible place.
#[test]
fn committed_corpus_replays_identically_on_both_executors() {
    for case in corpus::load_dir(&corpus_dir()).unwrap() {
        let tape = verify_case_on(&case, Executor::Tape).unwrap_or_else(|e| panic!("{case}: {e}"));
        let tree = verify_case_on(&case, Executor::Tree).unwrap_or_else(|e| panic!("{case}: {e}"));
        assert_eq!(tape, tree, "{case}: oracle reports diverge");
        for p in case_programs(&case) {
            let a = cred_vm::diff_against_reference(&case.graph, &p);
            let b = cred_vm::diff_against_reference_tape(&case.graph, &p);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.arrays, y.arrays, "{case}: {}", p.name);
                    assert_eq!(x.computes_executed, y.computes_executed);
                    assert_eq!(x.computes_nullified, y.computes_nullified);
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "{case}: {}", p.name),
                (x, y) => panic!(
                    "{case}: {}: executors disagree (tree ok={}, tape ok={})",
                    p.name,
                    x.is_ok(),
                    y.is_ok()
                ),
            }
        }
    }
}

#[test]
fn committed_corpus_roundtrips() {
    for case in corpus::load_dir(&corpus_dir()).unwrap() {
        let text = corpus::to_text(&case);
        let back = corpus::from_text(&text, &case.label).unwrap();
        assert_eq!(corpus::to_text(&back), text, "{}", case.label);
        assert_eq!(back.graph.fingerprint(), case.graph.fingerprint());
    }
}
