//! The chaos harness: replay the five-layer differential oracle under
//! randomly sampled fault plans and prove the pipeline *fails well*.
//!
//! Each chaos case runs twice: once fault-free (the baseline — the suite
//! is clean, so this must pass) and once with a seeded [`ChaosPlan`]
//! installed that panics, delays, or injects errors at the fail-point
//! sites threaded through retime, explore, codegen, and the VM. Exactly
//! four outcomes are possible, and only one of them is a bug:
//!
//! * **clean** — the faults missed (or were harmless delays) and the
//!   report is bit-identical to the baseline;
//! * **degraded** — an injected error surfaced through a typed error
//!   channel ([`VerifyFailure`], `ExecError::Injected`, ...) and the run
//!   said so;
//! * **faulted** — an injected panic unwound out of the oracle; it was
//!   caught at the case boundary and isolated;
//! * **corrupted** — the run *passed* but its report differs from the
//!   baseline: a fault silently changed an answer. This is the failure
//!   mode the whole resilience layer exists to prevent, and the one that
//!   fails [`ChaosReport::is_sound`].
//!
//! Determinism: the case stream and every fault plan derive from the
//! suite seed, so a failing chaos case reproduces from `(seed, index)`
//! alone. Delays are bounded to a few milliseconds, so the suite also
//! demonstrates the absence of hangs.

use crate::case::{random_case, CaseConfig};
use crate::oracle::verify_case;
use cred_resilience::failpoint::{install, sites, ChaosPlan};
use cred_resilience::panic_message;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parameters of a [`chaos_suite`] run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of chaos cases to draw.
    pub cases: usize,
    /// Seed of the case stream *and* the fault-plan stream.
    pub seed: u64,
    /// Bounds on each drawn case.
    pub case: CaseConfig,
    /// Per-site arming probability, in percent.
    pub trip_percent: u32,
    /// Upper bound on injected delays, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            cases: 100,
            seed: 0,
            case: CaseConfig::default(),
            trip_percent: 40,
            max_delay_ms: 2,
        }
    }
}

/// How one chaos case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Report bit-identical to the fault-free baseline.
    Clean,
    /// A typed error surfaced (rendered diagnostic attached).
    Degraded(String),
    /// A panic unwound out of the oracle and was isolated (message
    /// attached).
    Faulted(String),
    /// **Silent corruption**: the run passed but its report differs from
    /// the baseline. The attached string describes the divergence.
    Corrupted(String),
}

impl ChaosOutcome {
    /// True for the one unacceptable outcome.
    pub fn is_corruption(&self) -> bool {
        matches!(self, ChaosOutcome::Corrupted(_))
    }
}

/// One chaos case: what was injected and what happened.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// The case's provenance tag (`chaos-seed{S}-case{i}`).
    pub label: String,
    /// The sites the sampled plan armed, rendered `site=action`.
    pub plan: Vec<String>,
    /// The verdict.
    pub outcome: ChaosOutcome,
}

impl fmt::Display for ChaosCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: ", self.label, self.plan.join(", "))?;
        match &self.outcome {
            ChaosOutcome::Clean => write!(f, "clean"),
            ChaosOutcome::Degraded(d) => write!(f, "degraded: {d}"),
            ChaosOutcome::Faulted(m) => write!(f, "faulted: {m}"),
            ChaosOutcome::Corrupted(d) => write!(f, "CORRUPTED: {d}"),
        }
    }
}

/// Aggregate result of a [`chaos_suite`] run.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Cases run.
    pub cases_run: usize,
    /// Cases whose report matched the baseline exactly.
    pub clean: usize,
    /// Cases that surfaced a typed error.
    pub degraded: usize,
    /// Cases that panicked and were isolated.
    pub faulted: usize,
    /// Every non-clean case, for diagnosis (corruptions included).
    pub incidents: Vec<ChaosCase>,
}

impl ChaosReport {
    /// The silent corruptions — must be empty for the suite to pass.
    pub fn corruptions(&self) -> Vec<&ChaosCase> {
        self.incidents
            .iter()
            .filter(|c| c.outcome.is_corruption())
            .collect()
    }

    /// True when no fault produced a silently wrong answer. Degradations
    /// and isolated panics are *expected* under injection; corruption is
    /// not.
    pub fn is_sound(&self) -> bool {
        self.corruptions().is_empty()
    }
}

/// Run `cfg.cases` chaos cases. Deterministic per seed.
///
/// Requires the `failpoints` feature (always on in this crate); plans are
/// installed process-globally, so concurrent chaos suites serialize on
/// the registry's install lock.
pub fn chaos_suite(cfg: &ChaosConfig) -> ChaosReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // Injected panics are *expected* here and every one is caught; the
    // default hook would spray a backtrace per isolated fault. Silence it
    // for the suite's duration (restored by the guard below even if the
    // harness itself unwinds).
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(h) = self.0.take() {
                std::panic::set_hook(h);
            }
        }
    }
    let _hook = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = ChaosReport::default();
    for i in 0..cfg.cases {
        let label = format!("chaos-seed{}-case{}", cfg.seed, i);
        let case = random_case(&mut rng, label.clone(), &cfg.case);
        // Fault-free baseline first: the fuzz suite is clean, so a
        // baseline failure is a real pipeline bug — report it as a
        // corruption so the suite fails loudly.
        let baseline = match verify_case(&case) {
            Ok(rep) => rep,
            Err(e) => {
                report.cases_run += 1;
                report.incidents.push(ChaosCase {
                    label,
                    plan: Vec::new(),
                    outcome: ChaosOutcome::Corrupted(format!("fault-free baseline failed: {e}")),
                });
                continue;
            }
        };
        // The plan seed mixes the suite seed with the case index so every
        // case sees a fresh plan, reproducible from (seed, i).
        let plan_seed = cfg
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(i as u64);
        let plan = ChaosPlan::sample(plan_seed, sites::ALL, cfg.trip_percent, cfg.max_delay_ms);
        let plan_desc: Vec<String> = plan.iter().map(|(s, a)| format!("{s}={a}")).collect();
        let outcome = {
            let _guard = install(plan);
            match catch_unwind(AssertUnwindSafe(|| verify_case(&case))) {
                Ok(Ok(rep)) if rep == baseline => ChaosOutcome::Clean,
                Ok(Ok(rep)) => ChaosOutcome::Corrupted(format!(
                    "run passed but diverged from baseline: got {rep:?}, baseline {baseline:?}"
                )),
                Ok(Err(e)) => ChaosOutcome::Degraded(e.to_string()),
                Err(payload) => ChaosOutcome::Faulted(panic_message(payload.as_ref())),
            }
        };
        report.cases_run += 1;
        match &outcome {
            ChaosOutcome::Clean => report.clean += 1,
            ChaosOutcome::Degraded(_) => report.degraded += 1,
            ChaosOutcome::Faulted(_) => report.faulted += 1,
            ChaosOutcome::Corrupted(_) => {}
        }
        if outcome != ChaosOutcome::Clean {
            report.incidents.push(ChaosCase {
                label,
                plan: plan_desc,
                outcome,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_resilience::failpoint::FaultAction;

    #[test]
    fn chaos_smoke_is_sound() {
        let report = chaos_suite(&ChaosConfig {
            cases: 25,
            ..ChaosConfig::default()
        });
        assert_eq!(report.cases_run, 25);
        assert!(
            report.is_sound(),
            "silent corruptions: {:#?}",
            report.corruptions()
        );
        // With a 40% arming probability across 10 sites, faults must
        // actually land — an all-clean report would mean the injection
        // machinery is dead, not that the pipeline is invincible.
        assert!(
            report.degraded + report.faulted > 0,
            "no fault ever fired: {report:?}"
        );
        // Tallies are consistent.
        assert_eq!(
            report.clean + report.degraded + report.faulted + report.corruptions().len(),
            report.cases_run
        );
    }

    #[test]
    fn chaos_suite_is_deterministic() {
        let cfg = ChaosConfig {
            cases: 10,
            seed: 7,
            ..ChaosConfig::default()
        };
        let a = chaos_suite(&cfg);
        let b = chaos_suite(&cfg);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.faulted, b.faulted);
        // Delay actions render with a Duration, which is stable too.
        let render = |r: &ChaosReport| {
            r.incidents
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn vm_injection_surfaces_as_typed_degradation() {
        use crate::case::TransformOrder;
        use cred_codegen::DecMode;
        use cred_dfg::gen;
        let case = crate::Case {
            label: "vm-inject".into(),
            graph: gen::chain_with_feedback(5, 2),
            n: 17,
            f: 2,
            order: TransformOrder::RetimeUnfold,
            mode: DecMode::Bulk,
            machine: cred_exact::MachineModel::unconstrained(),
        };
        let _guard = install(ChaosPlan::new().trip(sites::VM_EXEC, FaultAction::Error));
        let err = verify_case(&case).unwrap_err();
        assert!(err.detail.contains(sites::VM_EXEC), "{err}");
    }

    #[test]
    fn exact_branch_injection_surfaces_as_typed_degradation() {
        use crate::case::TransformOrder;
        use crate::oracle::FailureKind;
        use cred_codegen::DecMode;
        use cred_dfg::gen;
        let case = crate::Case {
            label: "exact-inject".into(),
            graph: gen::chain_with_feedback(5, 2),
            n: 17,
            f: 2,
            order: TransformOrder::RetimeUnfold,
            mode: DecMode::Bulk,
            // A constrained machine forces real branch-and-bound work, so
            // the armed site is guaranteed to be reached.
            machine: cred_exact::MachineModel::builtin("scalar").unwrap(),
        };
        // The oracle's exact layer runs under a budget, so an injected
        // error at the branch site must come back as a *typed* fifth-layer
        // failure naming the site — never a panic, never a wrong answer.
        let _guard = install(ChaosPlan::new().trip(sites::EXACT_BRANCH, FaultAction::Error));
        let err = verify_case(&case).unwrap_err();
        assert_eq!(err.kind, FailureKind::Exact, "{err}");
        assert!(err.detail.contains(sites::EXACT_BRANCH), "{err}");
    }

    #[test]
    fn tape_compiler_injection_surfaces_as_typed_degradation() {
        use crate::case::TransformOrder;
        use cred_codegen::DecMode;
        use cred_dfg::gen;
        let case = crate::Case {
            label: "compile-inject".into(),
            graph: gen::chain_with_feedback(5, 2),
            n: 17,
            f: 2,
            order: TransformOrder::RetimeUnfold,
            mode: DecMode::Bulk,
            machine: cred_exact::MachineModel::unconstrained(),
        };
        // The oracle's default executor lowers through the tape compiler,
        // so a fault armed at its entry must surface as a typed
        // degradation naming the site — proof that `credc chaos` covers
        // the compiler, not just the interpreters.
        let _guard = install(ChaosPlan::new().trip(sites::VM_COMPILE, FaultAction::Error));
        let err = verify_case(&case).unwrap_err();
        assert!(err.detail.contains(sites::VM_COMPILE), "{err}");
        // The tree-walker path does not compile and must sail through.
        crate::verify_case_on(&case, crate::Executor::Tree).unwrap();
    }
}
