//! Textual corpus format for fuzz cases.
//!
//! Shrunk failures are persisted as small `.case` files under
//! `tests/corpus/` and replayed as regression tests (and by
//! `cred verify --corpus`). The format is line-oriented and diff-friendly:
//!
//! ```text
//! # cred-verify case v1
//! n 17
//! f 2
//! order retime-unfold
//! mode bulk
//! machine scalar
//! node A 1 add 0
//! node B 1 scl 3 7
//! edge 0 1 2
//! ```
//!
//! Node lines are `node <name> <time> <mnemonic> <consts...>` in id order
//! (so `edge` lines can refer to nodes by index); the mnemonics are
//! [`OpKind::mnemonic`] with one constant (`add sub mul mac inp`) or two
//! (`scl sml`).
//!
//! The optional `machine` line selects the model the exact scheduler
//! (oracle layer 5) reschedules the kernel under: either a builtin name
//! (`unconstrained scalar vliw2 vliw4`) or the inline form
//! `machine custom <name> <issue-width> <alu-units> <mac-units>
//! <alu-latency> <mac-latency>` with `-` for unlimited / no override.
//! Files predating the directive parse as `unconstrained`, and an
//! unconstrained machine round-trips to no line at all.

use crate::case::{Case, TransformOrder};
use cred_codegen::DecMode;
use cred_dfg::{Dfg, OpClass, OpKind};
use cred_exact::MachineModel;
use std::fs;
use std::path::Path;

const HEADER: &str = "# cred-verify case v1";

/// Render `case` in the corpus format (label is carried by the file name,
/// not the payload).
pub fn to_text(case: &Case) -> String {
    let g = &case.graph;
    let mut s = String::new();
    s.push_str(HEADER);
    s.push('\n');
    s.push_str(&format!("n {}\n", case.n));
    s.push_str(&format!("f {}\n", case.f));
    s.push_str(&format!("order {}\n", case.order));
    s.push_str(&format!(
        "mode {}\n",
        match case.mode {
            DecMode::PerCopy => "per-copy",
            DecMode::Bulk => "bulk",
        }
    ));
    if let Some(line) = machine_line(&case.machine) {
        s.push_str(&line);
        s.push('\n');
    }
    for v in g.node_ids() {
        let nd = g.node(v);
        debug_assert!(
            !nd.name.contains(char::is_whitespace),
            "corpus format requires whitespace-free node names"
        );
        let consts = match nd.op {
            OpKind::Add(c)
            | OpKind::Sub(c)
            | OpKind::Mul(c)
            | OpKind::Mac(c)
            | OpKind::Input(c) => format!("{c}"),
            OpKind::Scale(k, c) | OpKind::ScaledMul(k, c) => format!("{k} {c}"),
        };
        s.push_str(&format!(
            "node {} {} {} {}\n",
            nd.name,
            nd.time,
            nd.op.mnemonic(),
            consts
        ));
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        s.push_str(&format!(
            "edge {} {} {}\n",
            ed.src.index(),
            ed.dst.index(),
            ed.delay
        ));
    }
    s
}

/// Render the `machine` directive for `m`, or `None` when the default
/// (unconstrained) applies and the line is omitted.
fn machine_line(m: &MachineModel) -> Option<String> {
    if m.is_unconstrained() {
        return None;
    }
    // A machine that is exactly a builtin round-trips by name; anything
    // else uses the inline form so nothing is lost.
    if MachineModel::builtin(&m.name).as_ref() == Some(m) {
        return Some(format!("machine {}", m.name));
    }
    let opt = |v: Option<u32>| v.map_or("-".to_string(), |x| x.to_string());
    Some(format!(
        "machine custom {} {} {} {} {} {}",
        m.name,
        opt(m.issue_width),
        opt(m.units(OpClass::Alu)),
        opt(m.units(OpClass::Mac)),
        opt(m.latency_override(OpClass::Alu)),
        opt(m.latency_override(OpClass::Mac)),
    ))
}

fn parse_machine(fields: &[&str]) -> Result<MachineModel, String> {
    match fields {
        [name] => {
            MachineModel::builtin(name).ok_or_else(|| format!("unknown builtin machine {name:?}"))
        }
        ["custom", name, iw, alu_u, mac_u, alu_l, mac_l] => {
            let opt = |s: &str| -> Result<Option<u32>, String> {
                if s == "-" {
                    return Ok(None);
                }
                let v: u32 = s.parse().map_err(|_| format!("bad machine field {s:?}"))?;
                if v == 0 {
                    return Err("machine fields must be positive".into());
                }
                Ok(Some(v))
            };
            let mut m = MachineModel::unconstrained();
            m.name = name.to_string();
            m.issue_width = opt(iw)?;
            m.set_units(OpClass::Alu, opt(alu_u)?);
            m.set_units(OpClass::Mac, opt(mac_u)?);
            m.set_latency(OpClass::Alu, opt(alu_l)?);
            m.set_latency(OpClass::Mac, opt(mac_l)?);
            Ok(m)
        }
        _ => Err(
            "expected `machine <builtin>` or `machine custom <name> <iw> \
             <alu-units> <mac-units> <alu-latency> <mac-latency>`"
                .into(),
        ),
    }
}

fn parse_op(mnemonic: &str, consts: &[&str]) -> Result<OpKind, String> {
    let one = || -> Result<i64, String> {
        match consts {
            [c] => c.parse().map_err(|_| format!("bad constant {c:?}")),
            _ => Err(format!("{mnemonic} takes one constant")),
        }
    };
    let two = || -> Result<(i64, i64), String> {
        match consts {
            [k, c] => Ok((
                k.parse().map_err(|_| format!("bad constant {k:?}"))?,
                c.parse().map_err(|_| format!("bad constant {c:?}"))?,
            )),
            _ => Err(format!("{mnemonic} takes two constants")),
        }
    };
    Ok(match mnemonic {
        "add" => OpKind::Add(one()?),
        "sub" => OpKind::Sub(one()?),
        "mul" => OpKind::Mul(one()?),
        "mac" => OpKind::Mac(one()?),
        "inp" => OpKind::Input(one()?),
        "scl" => {
            let (k, c) = two()?;
            OpKind::Scale(k, c)
        }
        "sml" => {
            let (k, c) = two()?;
            OpKind::ScaledMul(k, c)
        }
        other => return Err(format!("unknown op mnemonic {other:?}")),
    })
}

/// Parse the corpus format. `label` becomes the case's provenance tag.
pub fn from_text(text: &str, label: &str) -> Result<Case, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(format!("missing header line {HEADER:?}")),
    }
    let mut n = None;
    let mut f = None;
    let mut order = None;
    let mut mode = None;
    let mut machine = None;
    let mut g = Dfg::new();
    let mut ids = Vec::new();
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", ln + 1);
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields[0] {
            "n" => {
                n = Some(
                    fields
                        .get(1)
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| err("expected `n <u64>`".into()))?,
                )
            }
            "f" => {
                let v: usize = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("expected `f <usize>`".into()))?;
                if v < 1 {
                    return Err(err("unfolding factor must be >= 1".into()));
                }
                f = Some(v);
            }
            "order" => {
                order = Some(match fields.get(1).copied() {
                    Some("retime-unfold") => TransformOrder::RetimeUnfold,
                    Some("unfold-retime") => TransformOrder::UnfoldRetime,
                    other => return Err(err(format!("unknown order {other:?}"))),
                })
            }
            "mode" => {
                mode = Some(match fields.get(1).copied() {
                    Some("per-copy") => DecMode::PerCopy,
                    Some("bulk") => DecMode::Bulk,
                    other => return Err(err(format!("unknown mode {other:?}"))),
                })
            }
            "machine" => {
                if machine.is_some() {
                    return Err(err("duplicate machine line".into()));
                }
                machine = Some(parse_machine(&fields[1..]).map_err(err)?);
            }
            "node" => {
                if fields.len() < 4 {
                    return Err(err("expected `node <name> <time> <op> <consts...>`".into()));
                }
                let time: u32 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("bad time {:?}", fields[2])))?;
                let op = parse_op(fields[3], &fields[4..]).map_err(err)?;
                ids.push(g.add_node(fields[1].to_string(), time, op));
            }
            "edge" => {
                if fields.len() != 4 {
                    return Err(err("expected `edge <src> <dst> <delay>`".into()));
                }
                let src: usize = fields[1]
                    .parse()
                    .map_err(|_| err(format!("bad src {:?}", fields[1])))?;
                let dst: usize = fields[2]
                    .parse()
                    .map_err(|_| err(format!("bad dst {:?}", fields[2])))?;
                let delay: u32 = fields[3]
                    .parse()
                    .map_err(|_| err(format!("bad delay {:?}", fields[3])))?;
                if src >= ids.len() || dst >= ids.len() {
                    return Err(err(format!(
                        "edge refers to node {} but only {} are declared",
                        src.max(dst),
                        ids.len()
                    )));
                }
                g.add_edge(ids[src], ids[dst], delay);
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    g.validate().map_err(|e| format!("invalid graph: {e}"))?;
    Ok(Case {
        label: label.to_string(),
        graph: g,
        n: n.ok_or("missing `n` line")?,
        f: f.ok_or("missing `f` line")?,
        order: order.ok_or("missing `order` line")?,
        mode: mode.ok_or("missing `mode` line")?,
        machine: machine.unwrap_or_else(MachineModel::unconstrained),
    })
}

/// Write `case` to `path` in the corpus format.
pub fn save_case(case: &Case, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, to_text(case))
}

/// Load one `.case` file; the file stem becomes the label.
pub fn load_case(path: &Path) -> Result<Case, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let label = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "corpus".into());
    from_text(&text, &label).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every `*.case` file under `dir`, sorted by file name. A missing
/// directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<Case>, String> {
    let mut paths = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let p = entry.map_err(|e| e.to_string())?.path();
                if p.extension().is_some_and(|e| e == "case") {
                    paths.push(p);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    }
    paths.sort();
    paths.iter().map(|p| load_case(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{random_case, CaseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrips_random_cases() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = CaseConfig::default();
        for i in 0..40 {
            let c = random_case(&mut rng, format!("r{i}"), &cfg);
            let back = from_text(&to_text(&c), &c.label).unwrap();
            assert_eq!(back.n, c.n);
            assert_eq!(back.f, c.f);
            assert_eq!(back.order, c.order);
            assert_eq!(back.mode, c.mode);
            assert_eq!(back.machine, c.machine);
            assert_eq!(back.graph.fingerprint(), c.graph.fingerprint());
        }
    }

    #[test]
    fn machine_directive_round_trips_and_defaults() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = random_case(&mut rng, "m".into(), &CaseConfig::default());

        // No directive at all => unconstrained.
        let mut c = base.clone();
        c.machine = MachineModel::unconstrained();
        let text = to_text(&c);
        assert!(!text.contains("machine"), "{text}");
        assert!(from_text(&text, "m").unwrap().machine.is_unconstrained());

        // Builtins round-trip by name.
        let mut c = base.clone();
        c.machine = MachineModel::builtin("vliw2").unwrap();
        let text = to_text(&c);
        assert!(text.contains("machine vliw2"), "{text}");
        assert_eq!(from_text(&text, "m").unwrap().machine, c.machine);

        // A custom machine round-trips through the inline form.
        let mut m = MachineModel::unconstrained();
        m.name = "bench".into();
        m.issue_width = Some(3);
        m.set_units(cred_dfg::OpClass::Mac, Some(1));
        m.set_latency(cred_dfg::OpClass::Mac, Some(2));
        let mut c = base.clone();
        c.machine = m.clone();
        let text = to_text(&c);
        assert!(text.contains("machine custom bench 3 - 1 - 2"), "{text}");
        assert_eq!(from_text(&text, "m").unwrap().machine, m);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_text("", "x").is_err());
        let ok = "# cred-verify case v1\nn 3\nf 1\norder retime-unfold\nmode bulk\nnode A 1 add 0\nedge 0 0 1\n";
        assert!(from_text(ok, "x").is_ok());
        for broken in [
            ok.replace("order retime-unfold", "order sideways").as_str(),
            ok.replace("edge 0 0 1", "edge 0 3 1").as_str(),
            ok.replace("node A 1 add 0", "node A 1 add").as_str(),
            ok.replace("n 3\n", "").as_str(),
            ok.replace("edge 0 0 1", "edge 0 0 0").as_str(), // zero-delay self-loop
            ok.replace("mode bulk", "mode bulk\nmachine dsp56k")
                .as_str(),
            ok.replace("mode bulk", "mode bulk\nmachine custom x 0 - - - -")
                .as_str(),
            ok.replace("mode bulk", "mode bulk\nmachine scalar\nmachine vliw2")
                .as_str(),
        ] {
            assert!(from_text(broken, "x").is_err(), "{broken}");
        }
    }
}
