//! # cred-verify — end-to-end differential verification
//!
//! Fuzzes the whole transformation pipeline: random executable DFGs are
//! pushed through retiming, unfolding, code generation, and CRED collapse
//! in both transformation orders, executed on the strict `cred-vm`, and
//! checked against five independent predictions (see [`oracle`]):
//! closed-form static sizes ([`cred_codegen::ExpectedCounts`]), the DFG
//! recurrence ([`cred_dfg::Dfg::reference_execution`]), closed-form
//! dynamic counts, and the guard-state trace — plus the paper's theorem
//! checkers in `cred-core`.
//!
//! Failures are minimized by the greedy [`shrink`] minimizer and persisted
//! in the textual [`corpus`] format under `tests/corpus/` for regression
//! replay. The CLI front end is `cred verify --cases N --seed S`.

pub mod case;
pub mod chaos;
pub mod corpus;
pub mod oracle;
pub mod shrink;

pub use case::{random_case, Case, CaseConfig, TransformOrder};
pub use chaos::{chaos_suite, ChaosConfig, ChaosOutcome, ChaosReport};
pub use oracle::{
    case_programs, verify_case, verify_case_mutated, verify_case_on, CaseReport, Executor,
    FailureKind, ProgramReport, VerifyFailure,
};
pub use shrink::shrink;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a [`fuzz_suite`] run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random cases to draw.
    pub cases: usize,
    /// Seed of the deterministic case stream (`seed{S}-case{i}` labels).
    pub seed: u64,
    /// Bounds on each drawn case.
    pub case: CaseConfig,
    /// Minimize each failure with [`shrink`] before reporting it.
    pub shrink_failures: bool,
    /// VM backend the oracle's execution layer runs (tape by default;
    /// tree for cross-checking the tape compiler).
    pub executor: Executor,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 200,
            seed: 0,
            case: CaseConfig::default(),
            shrink_failures: false,
            executor: Executor::default(),
        }
    }
}

/// One failing case from a suite run.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The case as drawn.
    pub case: Case,
    /// The oracle's rejection of the drawn case.
    pub error: VerifyFailure,
    /// Minimized reproducer (present when
    /// [`FuzzConfig::shrink_failures`] is set), with the error its
    /// minimal form triggers.
    pub shrunk: Option<(Case, VerifyFailure)>,
}

/// Aggregate result of a [`fuzz_suite`] run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases drawn and checked.
    pub cases_run: usize,
    /// Programs generated, executed, and diffed across all cases.
    pub programs_checked: usize,
    /// Cases per transformation order (retime∘unfold, unfold∘retime).
    pub by_order: [usize; 2],
    /// Every rejected case.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when no case was rejected.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Draw and verify `cfg.cases` random cases. Deterministic per seed: the
/// same config always draws the same case stream.
pub fn fuzz_suite(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = FuzzReport::default();
    for i in 0..cfg.cases {
        let label = format!("seed{}-case{}", cfg.seed, i);
        let case = random_case(&mut rng, label, &cfg.case);
        report.cases_run += 1;
        report.by_order[match case.order {
            TransformOrder::RetimeUnfold => 0,
            TransformOrder::UnfoldRetime => 1,
        }] += 1;
        match verify_case_on(&case, cfg.executor) {
            Ok(rep) => report.programs_checked += rep.programs.len(),
            Err(error) => {
                let shrunk = cfg.shrink_failures.then(|| {
                    let small = shrink(&case, &|c| verify_case_on(c, cfg.executor).is_err());
                    let err = verify_case_on(&small, cfg.executor)
                        .expect_err("shrink must preserve the failure predicate");
                    (small, err)
                });
                report.failures.push(FuzzFailure {
                    case,
                    error,
                    shrunk,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_is_clean_and_covers_both_orders() {
        let report = fuzz_suite(&FuzzConfig {
            cases: 30,
            ..FuzzConfig::default()
        });
        if let Some(f) = report.failures.first() {
            panic!("{}: {}", f.case, f.error);
        }
        assert_eq!(report.cases_run, 30);
        assert!(report.by_order[0] > 0 && report.by_order[1] > 0);
        assert!(report.programs_checked >= 3 * 30);
    }

    #[test]
    fn suite_is_deterministic() {
        let cfg = FuzzConfig {
            cases: 10,
            seed: 42,
            ..FuzzConfig::default()
        };
        let a = fuzz_suite(&cfg);
        let b = fuzz_suite(&cfg);
        assert_eq!(a.programs_checked, b.programs_checked);
        assert_eq!(a.by_order, b.by_order);
    }
}
