//! Fuzz cases: one complete trip through the transformation pipeline.
//!
//! A [`Case`] fixes everything the pipeline is free to choose — the graph
//! (node count, delay distribution, timing model), the trip count, the
//! unfolding factor, the transformation order, and the decrement mode —
//! so a failure is reproducible from the case alone, with no reference to
//! the random stream that produced it.

use cred_codegen::DecMode;
use cred_dfg::gen::{random_dfg, RandomDfgConfig};
use cred_dfg::Dfg;
use cred_exact::MachineModel;
use rand::{Rng, RngExt};
use std::fmt;

/// Which composition of transformations the case exercises (§3.4 of the
/// paper distinguishes the two orders; they need different register
/// counts and code-size formulas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformOrder {
    /// Retime first, then unfold the pipelined loop (Theorem 4.5 / 4.6).
    RetimeUnfold,
    /// Unfold first, then software-pipeline the unfolded loop
    /// (Theorem 4.4).
    UnfoldRetime,
}

impl fmt::Display for TransformOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformOrder::RetimeUnfold => write!(f, "retime-unfold"),
            TransformOrder::UnfoldRetime => write!(f, "unfold-retime"),
        }
    }
}

/// One fuzz case: a graph plus every pipeline parameter.
#[derive(Debug, Clone)]
pub struct Case {
    /// Provenance tag (`seed0-case17`, or a corpus file stem).
    pub label: String,
    /// The data flow graph under transformation.
    pub graph: Dfg,
    /// Original trip count `n` (0 and tiny values are deliberately
    /// included: they exercise the clipped-window code paths).
    pub n: u64,
    /// Unfolding factor `f >= 1`.
    pub f: usize,
    /// Transformation order.
    pub order: TransformOrder,
    /// Conditional-register decrement placement.
    pub mode: DecMode,
    /// Machine model the exact scheduler (oracle layer 5) reschedules the
    /// kernel under. Sampled from the builtins by [`random_case`];
    /// [`MachineModel::unconstrained`] makes layer 5 a pure differential
    /// test against the retiming solvers.
    pub machine: MachineModel,
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |V|={} |E|={} n={} f={} {} {:?} machine={}",
            self.label,
            self.graph.node_count(),
            self.graph.edge_count(),
            self.n,
            self.f,
            self.order,
            self.mode,
            self.machine.name
        )
    }
}

/// Bounds for [`random_case`]. The defaults keep single-case runtime in
/// the microsecond range so a thousand-case suite stays interactive.
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// Maximum node count (minimum is 1).
    pub max_nodes: usize,
    /// Maximum per-edge delay (the delay distribution's upper bound is
    /// itself drawn per case from `1..=max_delay`).
    pub max_delay: u32,
    /// Maximum node computation time (1 = the paper's unit-time model;
    /// larger values exercise the Figure 8 timing model).
    pub max_time: u32,
    /// Maximum trip count `n`.
    pub max_trip: u64,
    /// Maximum unfolding factor.
    pub max_unfold: usize,
    /// Pin every case to this machine instead of sampling one per case
    /// (the `credc verify --machine` path). `None` samples uniformly
    /// over the builtins.
    pub machine: Option<MachineModel>,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            max_nodes: 10,
            max_delay: 4,
            max_time: 3,
            max_trip: 40,
            max_unfold: 4,
            machine: None,
        }
    }
}

/// Draw one case from `rng`. Every free axis of the pipeline is sampled:
/// graph shape and delay/timing distributions, trip count (biased toward
/// degenerate `n <= 2` a quarter of the time), unfolding factor,
/// transformation order, decrement mode, and the machine model the exact
/// scheduler runs under (uniform over the builtins, so a quarter of all
/// cases exercise the pure retiming-differential path).
pub fn random_case(rng: &mut impl Rng, label: String, cfg: &CaseConfig) -> Case {
    let nodes = rng.random_range(1..=cfg.max_nodes);
    let dfg_cfg = RandomDfgConfig {
        nodes,
        forward_edge_prob: rng.random_range(15..=50u32) as f64 / 100.0,
        // At least one back edge keeps the graph cyclic, the paper's
        // DSP-loop domain.
        back_edges: rng.random_range(1..=nodes),
        max_delay: rng.random_range(1..=cfg.max_delay),
        max_time: rng.random_range(1..=cfg.max_time.max(1)),
    };
    let graph = random_dfg(rng, &dfg_cfg);
    let n = if rng.random_bool(0.25) {
        rng.random_range(0..=2u64)
    } else {
        rng.random_range(3..=cfg.max_trip)
    };
    Case {
        label,
        graph,
        n,
        f: rng.random_range(1..=cfg.max_unfold),
        order: if rng.random_bool(0.5) {
            TransformOrder::RetimeUnfold
        } else {
            TransformOrder::UnfoldRetime
        },
        mode: if rng.random_bool(0.5) {
            DecMode::PerCopy
        } else {
            DecMode::Bulk
        },
        machine: cfg.machine.clone().unwrap_or_else(|| {
            let names = MachineModel::BUILTIN_NAMES;
            let pick = rng.random_range(0..names.len());
            MachineModel::builtin(names[pick]).expect("builtin names resolve")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pinned_machine_overrides_sampling() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CaseConfig {
            machine: MachineModel::builtin("vliw2"),
            ..CaseConfig::default()
        };
        for i in 0..20 {
            let c = random_case(&mut rng, format!("c{i}"), &cfg);
            assert_eq!(c.machine.name, "vliw2");
        }
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let cfg = CaseConfig::default();
        let a = random_case(&mut StdRng::seed_from_u64(3), "t".into(), &cfg);
        let b = random_case(&mut StdRng::seed_from_u64(3), "t".into(), &cfg);
        assert_eq!(a.n, b.n);
        assert_eq!(a.f, b.f);
        assert_eq!(a.order, b.order);
        assert_eq!(a.machine, b.machine);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn cases_are_well_formed_and_cover_both_orders() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CaseConfig::default();
        let mut orders = (false, false);
        let mut machines = [false; 4];
        for i in 0..50 {
            let c = random_case(&mut rng, format!("c{i}"), &cfg);
            assert!(c.graph.validate().is_ok());
            assert!(c.f >= 1);
            match c.order {
                TransformOrder::RetimeUnfold => orders.0 = true,
                TransformOrder::UnfoldRetime => orders.1 = true,
            }
            let mi = MachineModel::BUILTIN_NAMES
                .iter()
                .position(|&n| n == c.machine.name)
                .expect("sampled machine is a builtin");
            machines[mi] = true;
        }
        assert!(orders.0 && orders.1);
        assert!(
            machines.iter().all(|&m| m),
            "50 cases must cover every builtin machine: {machines:?}"
        );
    }
}
