//! The differential oracle: run one [`Case`] through every generator its
//! transformation order covers, execute the results on `cred-vm`, and
//! check five independent layers of predictions:
//!
//! 1. **static** — code size, compute count, register count, and trip
//!    count against `cred-codegen`'s closed-form [`ExpectedCounts`];
//! 2. **values** — every array element against
//!    [`Dfg::reference_execution`](cred_dfg::Dfg::reference_execution)
//!    via the VM's strict semantics (structured
//!    [`DiffReport`](cred_vm::DiffReport) on mismatch);
//! 3. **dynamic** — executed/nullified instruction counts reported by the
//!    VM against the same closed forms (Theorems 4.1/4.2/4.6);
//! 4. **trace** — the guard-state dry run ([`trace_loop`]) must agree
//!    with both the static schedule (`trip * body computes` events) and
//!    the dynamic counts;
//! 5. **exact** — the case's kernel is rescheduled from scratch by the
//!    exact resource-constrained scheduler (`cred-exact`) under the
//!    case's sampled [`MachineModel`]: the schedule must pass the
//!    independent legality checker (window, resources, dependences), the
//!    rejected-II ladder must be contiguous with an arithmetically
//!    verified witness per rung (II-optimality), on an unconstrained
//!    machine the II must be **bit-identical** to the retiming minimum
//!    period, and the schedule's stage retiming is lowered into a
//!    pipelined program and pushed through layers 1–4 like every other
//!    generator.
//!
//! On top of the per-program checks, the paper's theorem checkers
//! (`cred-core::theorems`, the S_ret / S_{r,f} / S_{f,r} size formulas)
//! run against the case's graph, retiming, and factor.

use crate::case::{Case, TransformOrder};
use cred_codegen::cred::{cred_pipelined, cred_retime_unfold, cred_unfold_retime};
use cred_codegen::pipeline::{original_program, pipelined_program};
use cred_codegen::unfolded::{retime_unfold_program, unfold_retime_program};
use cred_codegen::{ExpectedCounts, Inst, LoopProgram};
use cred_core::theorems;
use cred_exact::{check as exact_check, exact_schedule_budgeted};
use cred_explore::cache::compute_plan;
use cred_resilience::Budget;
use cred_retime::min_period_retiming;
use cred_schedule::KernelSchedule;
use cred_unfold::unfold;
use cred_vm::{execute, execute_tape, trace_loop, value_diff, DiffReport};
use std::fmt;

/// Which `cred-vm` executor the oracle's execution layer runs.
///
/// [`Executor::Tape`] (the default) compiles each program once into a
/// flat instruction tape and runs that — the fast path that lets CI
/// afford 50x the differential-testing budget. [`Executor::Tree`] is the
/// original tree-walking interpreter, kept as the reference semantics;
/// the two are held equivalent by `cred_vm::cross_check_executors` and
/// the differential proptests, so running the oracle under `Tree`
/// (`credc verify --executor tree`) is a cross-check of the tape
/// compiler itself, not a different oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Executor {
    /// Compile to a flat tape, then execute (fast path, default).
    #[default]
    Tape,
    /// Tree-walk the program directly (reference semantics).
    Tree,
}

/// Which oracle layer rejected the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Static instruction counts deviate from the closed forms.
    Static,
    /// The VM faulted or produced values differing from the reference.
    Values,
    /// Executed/nullified counts deviate from the closed forms.
    Dynamic,
    /// The guard-state trace disagrees with the schedule or the counts.
    Trace,
    /// A `cred-core` theorem checker rejected the case.
    Theorem,
    /// The exact scheduler's product failed re-validation: illegal
    /// schedule, broken II ladder, bogus infeasibility witness, or a
    /// period diverging from the retiming solvers.
    Exact,
    /// The closed-form maxlive (register pressure) of a kernel schedule
    /// disagrees with the brute-force live-interval replay.
    Maxlive,
}

/// A rejected case: which program, which oracle layer, and a rendered
/// diagnostic.
#[derive(Debug, Clone)]
pub struct VerifyFailure {
    /// Generator tag of the failing program (`"cred"`, `"pipelined"`,
    /// ...), or `"theorems"` for a theorem-layer failure.
    pub program: String,
    /// The oracle layer that fired.
    pub kind: FailureKind,
    /// Human-readable diagnostic (VM site/diff reports included).
    pub detail: String,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {}: {}", self.kind, self.program, self.detail)
    }
}

impl std::error::Error for VerifyFailure {}

/// Per-program summary of a passing case. `PartialEq` so the chaos
/// harness can compare a run under fault injection bit-for-bit against
/// its fault-free baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramReport {
    /// Generator tag.
    pub name: String,
    /// Static code size.
    pub code_size: usize,
    /// Conditional registers used.
    pub registers: usize,
    /// Guard-enabled compute executions.
    pub computes_executed: u64,
    /// Guard-disabled compute executions.
    pub computes_nullified: u64,
}

/// Everything a passing case established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// The case's provenance tag.
    pub label: String,
    /// Minimum cycle period of the (unfolded) graph the pipeline found.
    pub period: u64,
    /// Optimal initiation interval the exact scheduler proved for the
    /// kernel under the case's machine model (layer 5).
    pub exact_ii: u64,
    /// One entry per program the oracle generated and executed.
    pub programs: Vec<ProgramReport>,
}

fn computes(insts: &[Inst]) -> u64 {
    insts
        .iter()
        .filter(|i| matches!(i, Inst::Compute { .. }))
        .count() as u64
}

/// All programs the case's transformation order produces, paired with
/// their closed-form expectations, plus the achieved period.
fn programs_for(case: &Case) -> (Vec<(LoopProgram, ExpectedCounts)>, u64) {
    let g = &case.graph;
    let (n, f) = (case.n, case.f);
    let mut out = vec![(original_program(g, n), ExpectedCounts::original(g, n))];
    match case.order {
        TransformOrder::RetimeUnfold => {
            // The production path under attack: the warm-started solver
            // pipeline behind `cred explore` (period search, span
            // minimization, register compaction, Theorem 4.5 projection).
            let plan = compute_plan(g, f);
            let r = &plan.projected;
            out.push((
                pipelined_program(g, r, n),
                ExpectedCounts::pipelined(g, r, n),
            ));
            out.push((
                retime_unfold_program(g, r, f, n),
                ExpectedCounts::retime_unfold(g, r, f, n),
            ));
            out.push((
                cred_retime_unfold(g, r, f, n, case.mode),
                ExpectedCounts::cred_retime_unfold(g, r, f, n, case.mode),
            ));
            if f > 1 {
                // Also collapse the un-unfolded pipelined loop, so every
                // case attacks the f = 1 CRED path as well.
                out.push((
                    cred_pipelined(g, r, n),
                    ExpectedCounts::cred_pipelined(g, r, n),
                ));
            }
            (out, plan.period)
        }
        TransformOrder::UnfoldRetime => {
            let u = unfold(g, f);
            let opt = min_period_retiming(&u.graph);
            let r_f = &opt.retiming;
            out.push((
                unfold_retime_program(g, &u, r_f, n),
                ExpectedCounts::unfold_retime(g, &u, r_f, n),
            ));
            out.push((
                cred_unfold_retime(g, &u, r_f, n),
                ExpectedCounts::cred_unfold_retime(g, &u, r_f, n),
            ));
            (out, opt.period)
        }
    }
}

fn verify_program(
    case: &Case,
    p: &LoopProgram,
    expect: &ExpectedCounts,
    reference: &[Vec<i64>],
    executor: Executor,
    mutated: bool,
) -> Result<ProgramReport, VerifyFailure> {
    let fail = |kind, detail: String| VerifyFailure {
        program: p.name.clone(),
        kind,
        detail,
    };
    // Layer 1: static counts. Skipped for mutated programs — a mutation
    // is free to change the static shape; what matters is that the
    // execution layers below catch it.
    if !mutated {
        expect
            .check_static(p)
            .map_err(|e| fail(FailureKind::Static, e))?;
    }
    // Layer 2: strict execution + full value diff against the case's
    // (precomputed) reference recurrence, on the selected executor.
    let res = match executor {
        Executor::Tape => execute_tape(p),
        Executor::Tree => execute(p),
    }
    .map_err(|e| fail(FailureKind::Values, DiffReport::Exec(e).to_string()))?;
    let cells = value_diff(&case.graph, p.n as usize, &res.arrays, reference);
    if !cells.is_empty() {
        return Err(fail(
            FailureKind::Values,
            DiffReport::Values { cells }.to_string(),
        ));
    }
    // Layer 3: dynamic counts.
    expect
        .check_dynamic(res.computes_executed, res.computes_nullified)
        .map_err(|e| fail(FailureKind::Dynamic, e))?;
    // Layer 4: the guard-state trace agrees with the static schedule and
    // with the dynamic counts (straight-line pre/post computes always
    // execute and are not traced).
    if let Some(l) = &p.body {
        let ev = trace_loop(p);
        let want_events = l.trip_count() * computes(&l.body);
        if ev.len() as u64 != want_events {
            return Err(fail(
                FailureKind::Trace,
                format!(
                    "trace produced {} events, schedule says trip * body = {}",
                    ev.len(),
                    want_events
                ),
            ));
        }
        let enabled = ev.iter().filter(|e| e.enabled).count() as u64;
        let straight_line = computes(&p.pre) + computes(&p.post);
        if enabled + straight_line != expect.computes_executed {
            return Err(fail(
                FailureKind::Trace,
                format!(
                    "trace enabled {enabled} + straight-line {straight_line} != expected executed {}",
                    expect.computes_executed
                ),
            ));
        }
    }
    Ok(ProgramReport {
        name: p.name.clone(),
        code_size: p.code_size(),
        registers: p.register_count(),
        computes_executed: res.computes_executed,
        computes_nullified: res.computes_nullified,
    })
}

/// Layer 5: reschedule the kernel exactly under the case's machine model
/// and re-validate everything the solver claims. Returns the proven
/// schedule and the [`ProgramReport`] of the pipelined program generated
/// from its stage retiming (executed through layers 1–4).
fn check_exact(
    case: &Case,
    reference: &[Vec<i64>],
    executor: Executor,
) -> Result<(cred_exact::ExactSchedule, ProgramReport), VerifyFailure> {
    let g = &case.graph;
    let m = &case.machine;
    let fail = |detail: String| VerifyFailure {
        program: "exact".into(),
        kind: FailureKind::Exact,
        detail,
    };
    // Budgeted entry so an armed `exact.branch` fail point surfaces as a
    // typed degradation instead of a panic (the chaos harness depends on
    // this; an unlimited budget itself never binds).
    let sched = exact_schedule_budgeted(g, m, &Budget::unlimited())
        .map_err(|e| fail(format!("search interrupted: {e}")))?;
    exact_check::check_schedule(g, m, &sched)
        .map_err(|e| fail(format!("illegal schedule at II {}: {e}", sched.ii)))?;
    // II-optimality: the ladder below the achieved II must be complete,
    // contiguous, and certified rung by rung.
    if sched.rejected.len() as u64 != sched.ii - 1 {
        return Err(fail(format!(
            "II {} claimed optimal but only {} rungs were rejected",
            sched.ii,
            sched.rejected.len()
        )));
    }
    for (i, rung) in sched.rejected.iter().enumerate() {
        if rung.ii != i as u64 + 1 {
            return Err(fail(format!(
                "ladder not contiguous: rung {i} claims II {}",
                rung.ii
            )));
        }
        exact_check::check_witness(g, m, rung)
            .map_err(|e| fail(format!("witness for II {}: {e}", rung.ii)))?;
    }
    // Differential agreement with the retiming solvers: bit-identical on
    // an unconstrained machine, a hard lower bound whenever the machine
    // keeps the paper's op times (resources only ever push the II up).
    let no_overrides = cred_dfg::OpClass::ALL
        .iter()
        .all(|&c| m.latency_override(c).is_none());
    if no_overrides {
        let opt = min_period_retiming(g);
        if m.is_unconstrained() && sched.ii != opt.period {
            return Err(fail(format!(
                "unconstrained II {} != retiming min period {}",
                sched.ii, opt.period
            )));
        }
        if sched.ii < opt.period {
            return Err(fail(format!(
                "II {} beats the resource-free lower bound {}",
                sched.ii, opt.period
            )));
        }
    }
    // Lower the exact schedule into the code-generation pipeline: its
    // stage retiming must be a legal retiming, and the pipelined program
    // built from it must survive the four VM-facing layers like any
    // other generator's output.
    let r = sched.stage_retiming();
    if !r.is_legal(g) {
        return Err(fail("stage retiming is not a legal retiming".into()));
    }
    let mut p = pipelined_program(g, &r, case.n);
    p.name = "exact-pipelined".into();
    let expect = ExpectedCounts::pipelined(g, &r, case.n);
    let report = verify_program(case, &p, &expect, reference, executor, false)?;
    Ok((sched, report))
}

/// Maxlive layer: the closed-form steady-state register-pressure count
/// (the fourth explore objective) must agree with an explicit
/// live-interval replay on the same kernel schedule — both for the
/// production retime+unfold sequential kernel and for the exact modulo
/// schedule when one exists.
fn check_maxlive(
    case: &Case,
    exact: Option<&cred_exact::ExactSchedule>,
) -> Result<(), VerifyFailure> {
    let g = &case.graph;
    let fail = |detail: String| VerifyFailure {
        program: "maxlive".into(),
        kind: FailureKind::Maxlive,
        detail,
    };
    if case.order == TransformOrder::RetimeUnfold {
        let r = compute_plan(g, case.f).projected;
        let k = KernelSchedule::sequential(g, &r, case.f);
        let closed = k.maxlive().maxlive;
        let replayed = k.replay_maxlive();
        if closed != replayed {
            return Err(fail(format!(
                "sequential kernel (f = {}): closed-form maxlive {closed} != replayed {replayed}",
                case.f
            )));
        }
    }
    if let Some(sched) = exact {
        let k = KernelSchedule::modulo(g, &sched.slot, &sched.stage, sched.ii);
        let closed = k.maxlive().maxlive;
        let replayed = k.replay_maxlive();
        if closed != replayed {
            return Err(fail(format!(
                "modulo kernel (II = {}): closed-form maxlive {closed} != replayed {replayed}",
                sched.ii
            )));
        }
    }
    Ok(())
}

fn check_theorems(case: &Case) -> Result<(), VerifyFailure> {
    let g = &case.graph;
    let (n, f) = (case.n, case.f);
    let fail = |detail: String| VerifyFailure {
        program: "theorems".into(),
        kind: FailureKind::Theorem,
        detail,
    };
    match case.order {
        TransformOrder::RetimeUnfold => {
            let r = compute_plan(g, f).projected;
            theorems::theorem_4_1(g, &r, n).map_err(&fail)?;
            theorems::theorem_4_2(g, &r, n).map_err(&fail)?;
            theorems::theorem_4_3(g, &r, n).map_err(&fail)?;
            theorems::theorem_4_5(g, f, n).map_err(&fail)?;
            theorems::theorem_4_6(g, &r, f, n).map_err(&fail)?;
            theorems::theorem_4_7(g, &r, f, n).map_err(&fail)?;
        }
        TransformOrder::UnfoldRetime => {
            theorems::theorem_4_4(g, f, n).map_err(&fail)?;
            theorems::theorem_4_5(g, f, n).map_err(&fail)?;
        }
    }
    Ok(())
}

/// Run the full oracle on one case (on the default [`Executor::Tape`]).
pub fn verify_case(case: &Case) -> Result<CaseReport, VerifyFailure> {
    verify_case_with(case, None, Executor::default())
}

/// Run the full oracle on one case with an explicit execution backend.
pub fn verify_case_on(case: &Case, executor: Executor) -> Result<CaseReport, VerifyFailure> {
    verify_case_with(case, None, executor)
}

/// Run the oracle with a program mutator injected between code generation
/// and execution — the mutation-testing entry point. The mutator sees
/// every generated program (filter on `p.name` to target one); theorem
/// checks are skipped since they regenerate their own programs.
pub fn verify_case_mutated(
    case: &Case,
    mutate: &dyn Fn(&mut LoopProgram),
) -> Result<CaseReport, VerifyFailure> {
    verify_case_with(case, Some(mutate), Executor::default())
}

/// The bare programs the case's transformation order generates — the
/// differential-testing surface. Exposed so cross-executor tests (the
/// `execute_tape == execute` proptests, dual-executor corpus replay) can
/// run both VM backends over exactly the programs the oracle would.
pub fn case_programs(case: &Case) -> Vec<LoopProgram> {
    programs_for(case).0.into_iter().map(|(p, _)| p).collect()
}

fn verify_case_with(
    case: &Case,
    mutate: Option<&dyn Fn(&mut LoopProgram)>,
    executor: Executor,
) -> Result<CaseReport, VerifyFailure> {
    let (mut programs, period) = programs_for(case);
    if let Some(m) = mutate {
        for (p, _) in &mut programs {
            m(p);
        }
    }
    // Every generated program is diffed against the same recurrence, so
    // evaluate it once per case rather than once per program.
    let reference = case.graph.reference_execution(case.n as usize);
    let mut reports = Vec::with_capacity(programs.len());
    for (p, expect) in &programs {
        reports.push(verify_program(
            case,
            p,
            expect,
            &reference,
            executor,
            mutate.is_some(),
        )?);
    }
    // Layer 5 and the theorem checkers regenerate their own programs, so
    // a program mutator cannot reach them — skip both under mutation
    // (the exact layer has its own mutation hook inside the solver).
    let exact_ii = if mutate.is_none() {
        let (sched, exact_report) = check_exact(case, &reference, executor)?;
        reports.push(exact_report);
        check_maxlive(case, Some(&sched))?;
        check_theorems(case)?;
        sched.ii
    } else {
        0
    };
    Ok(CaseReport {
        label: case.label.clone(),
        period,
        exact_ii,
        programs: reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{random_case, CaseConfig};
    use cred_codegen::DecMode;
    use cred_dfg::gen;
    use cred_exact::MachineModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_case(order: TransformOrder) -> Case {
        Case {
            label: "chain".into(),
            graph: gen::chain_with_feedback(5, 2),
            n: 17,
            f: 2,
            order,
            mode: DecMode::Bulk,
            machine: MachineModel::unconstrained(),
        }
    }

    #[test]
    fn chain_passes_both_orders() {
        for order in [TransformOrder::RetimeUnfold, TransformOrder::UnfoldRetime] {
            let rep = verify_case(&chain_case(order)).unwrap();
            assert!(rep.programs.len() >= 3);
            // The original program is always first and unguarded.
            assert_eq!(rep.programs[0].name, "original");
            assert_eq!(rep.programs[0].computes_nullified, 0);
        }
    }

    #[test]
    fn random_cases_pass() {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = CaseConfig::default();
        for i in 0..25 {
            let c = random_case(&mut rng, format!("t{i}"), &cfg);
            verify_case(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }

    #[test]
    fn guard_offset_mutation_is_caught() {
        let case = chain_case(TransformOrder::RetimeUnfold);
        let err = verify_case_mutated(&case, &|p| {
            if !p.name.starts_with("cred") {
                return;
            }
            if let Some(l) = &mut p.body {
                for inst in &mut l.body {
                    if let cred_codegen::Inst::Compute { guard: Some(g), .. } = inst {
                        g.offset += 1;
                        return;
                    }
                }
            }
        })
        .unwrap_err();
        // The shifted guard window mis-masks the prologue: the VM layers
        // must catch it (as a fault, a value diff, or a count deviation).
        assert!(
            matches!(
                err.kind,
                FailureKind::Values | FailureKind::Dynamic | FailureKind::Trace
            ),
            "{err}"
        );
    }

    #[test]
    fn exact_layer_runs_on_every_machine() {
        // The same kernel rescheduled under every builtin: the scalar
        // machine must serialize the five ops (II = 5 on a 5-node chain
        // with issue width 1), while unconstrained matches the retiming
        // period; every report carries the exact-pipelined program.
        for name in MachineModel::BUILTIN_NAMES {
            let mut case = chain_case(TransformOrder::RetimeUnfold);
            case.machine = MachineModel::builtin(name).unwrap();
            let rep = verify_case(&case).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(rep.exact_ii >= 1, "{name}");
            assert!(
                rep.programs.iter().any(|p| p.name == "exact-pipelined"),
                "{name}: {rep:?}"
            );
            if name == "scalar" {
                assert_eq!(rep.exact_ii, 5, "width-1 machine must serialize");
            }
            if name == "unconstrained" {
                assert_eq!(rep.exact_ii, min_period_retiming(&case.graph).period);
            }
        }
    }

    #[test]
    fn identity_mutation_passes() {
        let case = chain_case(TransformOrder::UnfoldRetime);
        verify_case_mutated(&case, &|_| {}).unwrap();
    }

    #[test]
    fn executor_backends_agree_on_reports() {
        let mut rng = StdRng::seed_from_u64(4242);
        let cfg = CaseConfig::default();
        for i in 0..10 {
            let c = random_case(&mut rng, format!("x{i}"), &cfg);
            let tape = verify_case_on(&c, Executor::Tape).unwrap_or_else(|e| panic!("{c}: {e}"));
            let tree = verify_case_on(&c, Executor::Tree).unwrap_or_else(|e| panic!("{c}: {e}"));
            assert_eq!(tape, tree, "{c}");
        }
    }
}
