//! Greedy failure shrinker.
//!
//! Given a failing [`Case`] and a predicate `still_fails`, repeatedly try
//! structure-reducing edits — drop a node, drop an edge, shrink the trip
//! count or unfolding factor, flatten delays, unit times, simplify ops —
//! and keep any edit after which the predicate still holds. Every accepted
//! edit strictly decreases a finite measure (node count, edge count, `f`,
//! `n`, total delay, total time, op complexity), so the loop terminates;
//! it stops at a local minimum where no single edit preserves the failure.
//!
//! The vendored `proptest` stand-in deliberately has no shrinking, so this
//! is the only minimizer in the workspace — corpus entries under
//! `tests/corpus/` are its outputs.

use crate::case::Case;
use cred_dfg::{Dfg, OpKind};

/// Rebuild `g` without node index `drop`, remapping edges (incident edges
/// are dropped with the node). Returns `None` if the result is malformed.
fn without_node(g: &Dfg, drop: usize) -> Option<Dfg> {
    if g.node_count() <= 1 {
        return None;
    }
    let mut out = Dfg::new();
    let mut map = vec![usize::MAX; g.node_count()];
    for v in g.node_ids() {
        if v.index() == drop {
            continue;
        }
        let nd = g.node(v);
        map[v.index()] = out.add_node(nd.name.clone(), nd.time, nd.op).index();
    }
    let ids: Vec<_> = out.node_ids().collect();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let (s, d) = (map[ed.src.index()], map[ed.dst.index()]);
        if s == usize::MAX || d == usize::MAX {
            continue;
        }
        out.add_edge(ids[s], ids[d], ed.delay);
    }
    out.validate().ok()?;
    Some(out)
}

/// Rebuild `g` with a per-edge delay override (or edge dropped when the
/// override is `None`), keeping nodes intact.
fn with_edges(g: &Dfg, f: impl Fn(usize, u32) -> Option<u32>) -> Option<Dfg> {
    let mut out = Dfg::new();
    for v in g.node_ids() {
        let nd = g.node(v);
        out.add_node(nd.name.clone(), nd.time, nd.op);
    }
    let ids: Vec<_> = out.node_ids().collect();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if let Some(delay) = f(e.index(), ed.delay) {
            out.add_edge(ids[ed.src.index()], ids[ed.dst.index()], delay);
        }
    }
    out.validate().ok()?;
    Some(out)
}

/// Rebuild `g` with every node mapped through `f` as `(time, op)`.
fn with_nodes(g: &Dfg, f: impl Fn(u32, OpKind) -> (u32, OpKind)) -> Option<Dfg> {
    let mut out = Dfg::new();
    for v in g.node_ids() {
        let nd = g.node(v);
        let (time, op) = f(nd.time, nd.op);
        out.add_node(nd.name.clone(), time, op);
    }
    let ids: Vec<_> = out.node_ids().collect();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        out.add_edge(ids[ed.src.index()], ids[ed.dst.index()], ed.delay);
    }
    out.validate().ok()?;
    Some(out)
}

fn op_complexity(op: OpKind) -> u32 {
    match op {
        OpKind::Add(0) => 0,
        OpKind::Add(_) => 1,
        OpKind::Input(_) => 2,
        OpKind::Sub(_) | OpKind::Mul(_) => 3,
        OpKind::Scale(..) => 4,
        OpKind::Mac(_) | OpKind::ScaledMul(..) => 5,
    }
}

/// Candidate single edits of `case`, roughly most-aggressive first.
fn candidates(case: &Case) -> Vec<Case> {
    let g = &case.graph;
    let mut out = Vec::new();
    let mut push_graph = |graph: Option<Dfg>| {
        if let Some(graph) = graph {
            out.push(Case {
                graph,
                ..case.clone()
            });
        }
    };
    // Drop each node (with incident edges), then each edge.
    for v in 0..g.node_count() {
        push_graph(without_node(g, v));
    }
    for e in 0..g.edge_count() {
        push_graph(with_edges(g, |i, d| (i != e).then_some(d)));
    }
    // Flatten all delays to 1, then reduce each edge's delay by one.
    if g.edge_ids().any(|e| g.edge(e).delay > 1) {
        push_graph(with_edges(g, |_, d| Some(d.min(1))));
    }
    for e in 0..g.edge_count() {
        let d = g.edge(cred_dfg::EdgeId(e as u32)).delay;
        if d > 0 {
            push_graph(with_edges(g, |i, d| Some(if i == e { d - 1 } else { d })));
        }
    }
    // Unit-time every node; simplify every op to the cheapest one that
    // still ranks lower on the complexity order.
    if !g.is_unit_time() {
        push_graph(with_nodes(g, |_, op| (1, op)));
    }
    if g.node_ids().any(|v| op_complexity(g.node(v).op) > 0) {
        push_graph(with_nodes(g, |t, _| (t, OpKind::Add(0))));
    }
    // Relax the machine model to unconstrained (keeps failures that only
    // need the dependence structure machine-free; resource-dependent
    // failures simply reject the edit).
    if !case.machine.is_unconstrained() {
        out.push(Case {
            machine: cred_exact::MachineModel::unconstrained(),
            ..case.clone()
        });
    }
    // Shrink the pipeline parameters.
    for f in [1, case.f / 2, case.f - 1] {
        if f >= 1 && f < case.f {
            out.push(Case { f, ..case.clone() });
        }
    }
    for n in [0, 1, 2, case.n / 2, case.n.saturating_sub(1)] {
        if n < case.n {
            out.push(Case { n, ..case.clone() });
        }
    }
    out
}

/// Strictly-decreasing measure driving termination.
#[allow(clippy::type_complexity)]
fn measure(case: &Case) -> (usize, usize, usize, u64, u64, u64, u64, u64) {
    let g = &case.graph;
    (
        g.node_count(),
        g.edge_count(),
        case.f,
        case.n,
        g.total_delays(),
        g.total_time(),
        g.node_ids()
            .map(|v| op_complexity(g.node(v).op) as u64)
            .sum(),
        // Constrained machines rank above unconstrained so the machine
        // relaxation edit strictly decreases the measure.
        u64::from(!case.machine.is_unconstrained()),
    )
}

/// Greedily minimize `case` under `still_fails`. The input must itself
/// satisfy the predicate; the result does, and no single candidate edit of
/// it does while being smaller.
pub fn shrink(case: &Case, still_fails: &dyn Fn(&Case) -> bool) -> Case {
    debug_assert!(still_fails(case), "shrink requires a failing input");
    let mut best = case.clone();
    loop {
        let before = measure(&best);
        let next = candidates(&best)
            .into_iter()
            .find(|c| measure(c) < before && still_fails(c));
        match next {
            Some(c) => best = c,
            None => break,
        }
    }
    best.label = format!("{}-shrunk", case.label);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::TransformOrder;
    use cred_codegen::DecMode;
    use cred_dfg::gen;

    fn big_case() -> Case {
        Case {
            label: "big".into(),
            graph: gen::layered(3, 3, 2),
            n: 30,
            f: 3,
            order: TransformOrder::RetimeUnfold,
            mode: DecMode::Bulk,
            machine: cred_exact::MachineModel::unconstrained(),
        }
    }

    #[test]
    fn shrinks_to_single_node_under_trivial_predicate() {
        let out = shrink(&big_case(), &|_| true);
        assert_eq!(out.graph.node_count(), 1);
        assert_eq!(out.f, 1);
        assert_eq!(out.n, 0);
        assert!(out.label.ends_with("-shrunk"));
    }

    #[test]
    fn preserves_predicate_that_needs_structure() {
        // Predicate: at least 2 nodes and n >= 5. The shrinker must stop
        // exactly at that boundary.
        let out = shrink(&big_case(), &|c| c.graph.node_count() >= 2 && c.n >= 5);
        assert_eq!(out.graph.node_count(), 2);
        assert_eq!(out.n, 5);
        assert!(out.graph.validate().is_ok());
    }
}
