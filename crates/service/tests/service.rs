//! End-to-end tests of the evaluation server: protocol behavior, request
//! coalescing, deadline admission control, and clean shutdown.

mod common;

use std::path::Path;
use std::time::Duration;

use common::{kernels_dir, Client, TestServer};
use cred_explore::{point_json, ExploreRequest};

/// The cold-run `"points":[...]` fragment every server response for
/// `kernel` must contain bit-for-bit.
fn expected_points(kernel: &str, max_f: usize, n: u64) -> String {
    let src = std::fs::read_to_string(kernels_dir().join(format!("{kernel}.loop")))
        .expect("bundled kernel");
    let resp = ExploreRequest::from_source(&src)
        .expect("kernel parses")
        .max_f(max_f)
        .trip_count(n)
        .run()
        .expect("cold run");
    let points: Vec<String> = resp.points.iter().map(point_json).collect();
    format!("\"points\":[{}]", points.join(","))
}

#[test]
fn ping_echoes_the_id() {
    let server = TestServer::spawn(|_| {});
    let resp = server.request("{\"type\":\"ping\",\"id\":\"abc\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"schema_version\":3"), "{resp}");
    assert!(resp.contains("\"id\":\"abc\""), "{resp}");
    assert!(resp.contains("\"type\":\"pong\""), "{resp}");
    // Integer ids are echoed as integers.
    let resp = server.request("{\"type\":\"ping\",\"id\":7}");
    assert!(resp.contains("\"id\":7"), "{resp}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_protocol_errors_not_hangups() {
    let server = TestServer::spawn(|_| {});
    let mut client = server.connect();
    for (req, want) in [
        ("this is not json", "bad JSON"),
        ("[1,2,3]", "must be a JSON object"),
        ("{\"id\":1}", "missing request type"),
        ("{\"type\":\"frobnicate\"}", "unknown request type"),
        (
            "{\"type\":\"explore\"}",
            "needs a \\\"kernel\\\" name or a \\\"source\\\"",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"nope\"}",
            "unknown kernel",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"source\":\"x\"}",
            "not both",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":0}",
            "max_f must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":99}",
            "max_f must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"n\":0}",
            "n must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"mode\":\"sideways\"}",
            "mode must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"deadline_ms\":0}",
            "deadline_ms must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"schema_version\":1}",
            "schema_version must be",
        ),
        (
            "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_registers\":\"lots\"}",
            "max_registers must be",
        ),
        (
            "{\"type\":\"explore\",\"source\":\"not a kernel\"}",
            "\"code\":\"parse\"",
        ),
    ] {
        let resp = client.request(req);
        assert!(resp.contains("\"ok\":false"), "{req} -> {resp}");
        assert!(resp.contains(want), "{req} -> {resp}");
    }
    // The connection survived all of that.
    let resp = client.request("{\"type\":\"ping\"}");
    assert!(resp.contains("\"pong\""), "{resp}");
    server.shutdown();
}

#[test]
fn explore_matches_the_cold_run_and_reuses_the_cache() {
    let server = TestServer::spawn(|_| {});
    let want = expected_points("figure3", 3, 100);
    let resp = server
        .request("{\"type\":\"explore\",\"id\":1,\"kernel\":\"figure3\",\"max_f\":3,\"n\":100}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(
        resp.contains(&want),
        "points must match the cold run:\n{resp}"
    );
    assert!(resp.contains("\"coalesced\":false"), "{resp}");
    assert!(resp.contains("\"frontier\":["), "{resp}");
    assert!(resp.contains("\"degraded\":[]"), "{resp}");
    assert!(resp.contains("\"failed\":[]"), "{resp}");
    // Same request again: answered from the shared cache, same bits.
    let again = server
        .request("{\"type\":\"explore\",\"id\":2,\"kernel\":\"figure3\",\"max_f\":3,\"n\":100}");
    assert!(again.contains(&want), "{again}");
    let stats = server.request("{\"type\":\"stats\"}");
    assert!(
        stats.contains("\"misses\":3"),
        "3 factors solved once: {stats}"
    );
    assert!(stats.contains("\"hits\":3"), "re-request all hits: {stats}");
    server.shutdown();
}

#[test]
fn source_requests_match_named_kernel_requests() {
    let server = TestServer::spawn(|_| {});
    let src = std::fs::read_to_string(kernels_dir().join("figure3.loop")).unwrap();
    let named =
        server.request("{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31}");
    let by_source = server.request(&format!(
        "{{\"type\":\"explore\",\"source\":{},\"max_f\":2,\"n\":31}}",
        cred_service::json::escape(&src)
    ));
    let points_of = |resp: &str| {
        let start = resp.find("\"points\":").expect("points present");
        let end = resp.find("\"degraded\":").expect("degraded present");
        resp[start..end].to_string()
    };
    assert!(named.contains("\"ok\":true"), "{named}");
    assert!(by_source.contains("\"ok\":true"), "{by_source}");
    assert_eq!(points_of(&named), points_of(&by_source));
    server.shutdown();
}

/// The headline coalescing test: two clients fire the identical request
/// concurrently; exactly one computation runs, both responses carry
/// bit-identical points equal to a cold run.
#[test]
fn concurrent_identical_requests_coalesce_onto_one_compute() {
    let server = TestServer::spawn(|_| {});
    let want = expected_points("elliptic", 3, 60);
    // The leader's compute is held open 600 ms (the debug test hook) so
    // the second client reliably joins the in-flight request rather than
    // racing past it. The hook is excluded from the coalescing key.
    let req = "{\"type\":\"explore\",\"kernel\":\"elliptic\",\"max_f\":3,\"n\":60,\
               \"debug_delay_ms\":600}";
    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let a = std::thread::spawn(move || Client::connect(&addr_a).request(req));
    // Stagger the second client into the first one's flight window.
    std::thread::sleep(Duration::from_millis(150));
    let b = std::thread::spawn(move || Client::connect(&addr_b).request(req));
    let resp_a = a.join().unwrap();
    let resp_b = b.join().unwrap();

    for resp in [&resp_a, &resp_b] {
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(
            resp.contains(&want),
            "coalesced response differs from cold run:\n{resp}"
        );
    }
    let joined = [&resp_a, &resp_b]
        .iter()
        .filter(|r| r.contains("\"coalesced\":true"))
        .count();
    assert_eq!(joined, 1, "exactly one client joined:\n{resp_a}\n{resp_b}");

    let stats = server.request("{\"type\":\"stats\"}");
    assert!(
        stats.contains("\"explore_computes\":1"),
        "one solve for two clients: {stats}"
    );
    assert!(stats.contains("\"coalesced_joins\":1"), "{stats}");
    server.shutdown();
}

/// A joiner must not inherit an outcome shaped by the leader's budget:
/// a starved leader degrades, but the unlimited joiner that coalesced
/// onto its flight recomputes and gets the clean cold-run answer.
#[test]
fn budget_shaped_outcomes_are_not_shared_with_joiners() {
    let server = TestServer::spawn(|_| {});
    let want = expected_points("elliptic", 2, 60);
    // Leader: a zero work budget pushes every factor down the
    // degradation ladder (exhaustion-caused events); the debug hook
    // holds the flight open so the second client overlaps it.
    let leader_req = "{\"type\":\"explore\",\"id\":\"starved\",\"kernel\":\"elliptic\",\
                      \"max_f\":2,\"n\":60,\"work_limit\":0,\"debug_delay_ms\":600}";
    // Joiner: identical coalesce key (limits are excluded from it), but
    // an unlimited budget.
    let joiner_req = "{\"type\":\"explore\",\"id\":\"roomy\",\"kernel\":\"elliptic\",\
                      \"max_f\":2,\"n\":60}";
    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let a = std::thread::spawn(move || Client::connect(&addr_a).request(leader_req));
    std::thread::sleep(Duration::from_millis(150));
    let b = std::thread::spawn(move || Client::connect(&addr_b).request(joiner_req));
    let leader = a.join().unwrap();
    let joiner = b.join().unwrap();
    // The leader's own response reflects its starved budget...
    assert!(leader.contains("\"ok\":true"), "{leader}");
    assert!(!leader.contains("\"degraded\":[]"), "{leader}");
    // ...but the joiner sees none of it: a clean response, bit-identical
    // to a cold unlimited run, and not marked coalesced.
    assert!(joiner.contains("\"ok\":true"), "{joiner}");
    assert!(joiner.contains("\"degraded\":[]"), "{joiner}");
    assert!(
        joiner.contains(&want),
        "joiner must match the cold run:\n{joiner}"
    );
    assert!(joiner.contains("\"coalesced\":false"), "{joiner}");
    let stats = server.request("{\"type\":\"stats\"}");
    assert!(stats.contains("\"coalesce_recomputes\":1"), "{stats}");
    assert!(stats.contains("\"explore_computes\":2"), "{stats}");
    assert!(stats.contains("\"coalesced_joins\":0"), "{stats}");
    server.shutdown();
}

/// A request that exceeds its deadline is answered with a typed budget
/// error on a live connection — not a hangup.
#[test]
fn deadline_overrun_is_a_typed_budget_error() {
    let server = TestServer::spawn(|c| {
        c.default_deadline = Some(Duration::from_millis(150));
    });
    let mut client = server.connect();
    // The debug delay makes the compute overstay the per-request
    // deadline deterministically.
    let resp = client.request(
        "{\"type\":\"explore\",\"id\":\"late\",\"kernel\":\"figure3\",\"max_f\":2,\
         \"n\":31,\"deadline_ms\":100,\"debug_delay_ms\":400}",
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"code\":\"budget-exhausted\""), "{resp}");
    assert!(resp.contains("\"id\":\"late\""), "{resp}");
    // The connection is still serviceable afterwards...
    let resp = client.request(
        "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\
         \"deadline_ms\":60000}",
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // ...and the server-wide default deadline applies when the request
    // names none.
    let resp = client.request(
        "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\
         \"debug_delay_ms\":400}",
    );
    assert!(resp.contains("\"code\":\"budget-exhausted\""), "{resp}");
    let stats = server.request("{\"type\":\"stats\"}");
    assert!(stats.contains("\"budget_exhaustions\":2"), "{stats}");
    server.shutdown();
}

#[test]
fn strict_requests_succeed_when_nothing_degrades() {
    let server = TestServer::spawn(|_| {});
    let resp = server.request(
        "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\"strict\":true}",
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    server.shutdown();
}

/// A strict request that observes degradation gets the typed error *and*
/// still lands in the degradation counters.
#[test]
fn strict_degradation_is_typed_and_still_counted() {
    let server = TestServer::spawn(|_| {});
    let resp = server.request(
        "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\
         \"work_limit\":0,\"strict\":true}",
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(
        resp.contains("\"code\":\"degraded-under-strict\""),
        "{resp}"
    );
    let stats = server.request("{\"type\":\"stats\"}");
    assert!(
        stats.contains("\"degraded_points\":2"),
        "both starved factors must be counted: {stats}"
    );
    server.shutdown();
}

#[test]
fn pipelined_lines_in_one_write_are_all_answered() {
    let server = TestServer::spawn(|_| {});
    let mut client = server.connect();
    client.send("{\"type\":\"ping\",\"id\":1}\n{\"type\":\"ping\",\"id\":2}");
    let first = client.recv();
    let second = client.recv();
    assert!(first.contains("\"id\":1"), "{first}");
    assert!(second.contains("\"id\":2"), "{second}");
    server.shutdown();
}

#[test]
fn shutdown_dumps_metrics_when_asked() {
    let dir = std::env::temp_dir().join(format!("cred-service-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("metrics.json");
    let server = TestServer::spawn(|c| {
        c.metrics_dump = Some(dump.clone());
    });
    server.request("{\"type\":\"ping\"}");
    server.request("{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31}");
    server.shutdown();
    let dumped = std::fs::read_to_string(&dump).expect("metrics dump written");
    assert!(dumped.contains("\"explore_computes\":1"), "{dumped}");
    assert!(dumped.contains("\"cache\""), "{dumped}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_with_idle_connections_open_is_prompt() {
    let server = TestServer::spawn(|_| {});
    // Idle connections must not delay shutdown: the event loop is woken
    // explicitly, it never sits in a read-timeout poll cycle.
    let idle: Vec<Client> = (0..8).map(|_| server.connect()).collect();
    let start = std::time::Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "shutdown with idle connections took {elapsed:?}"
    );
    drop(idle);
}

#[test]
fn overload_sheds_with_a_typed_overloaded_error() {
    let server = TestServer::spawn(|c| {
        c.workers = 1;
        c.max_in_flight = 1;
    });
    let mut slow = server.connect();
    // Occupy the single admission slot with a deliberately held flight.
    slow.send("{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\"debug_delay_ms\":800,\"id\":\"slow\"}");
    std::thread::sleep(Duration::from_millis(200));
    // The next explore must be shed immediately, not queued behind it.
    let mut shed = server.connect();
    let start = std::time::Instant::now();
    let resp = shed.request(
        "{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":31,\"id\":\"shed\"}",
    );
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "shed response must not wait for the slow flight"
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"code\":\"overloaded\""), "{resp}");
    assert!(resp.contains("\"id\":\"shed\""), "{resp}");
    // Non-explore requests are never shed: the loop answers them inline.
    let pong = shed.request("{\"type\":\"ping\"}");
    assert!(pong.contains("\"ok\":true"), "{pong}");
    // The admitted request still completes normally.
    let slow_resp = slow.recv();
    assert!(slow_resp.contains("\"ok\":true"), "{slow_resp}");
    assert!(slow_resp.contains("\"id\":\"slow\""), "{slow_resp}");
    let stats = server.request("{\"type\":\"stats\"}");
    assert!(stats.contains("\"shed_requests\":1"), "{stats}");
    server.shutdown();
}

#[test]
fn poll_fallback_backend_serves_the_same_protocol() {
    let server = TestServer::spawn(|c| {
        c.force_poll_backend = true;
    });
    let resp = server.request("{\"type\":\"ping\",\"id\":\"poll\"}");
    assert!(resp.contains("\"type\":\"pong\""), "{resp}");
    assert!(resp.contains("\"id\":\"poll\""), "{resp}");
    let resp = server.request("{\"type\":\"explore\",\"kernel\":\"figure3\",\"max_f\":3,\"n\":61}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains(&expected_points("figure3", 3, 61)), "{resp}");
    // Pipelining works on the fallback too, in order.
    let mut client = server.connect();
    client.send("{\"type\":\"ping\",\"id\":1}\n{\"type\":\"ping\",\"id\":2}");
    assert!(client.recv().contains("\"id\":1"));
    assert!(client.recv().contains("\"id\":2"));
    server.shutdown();
}

#[test]
fn missing_kernels_dir_fails_bind_with_io_error() {
    let err = cred_service::Server::bind(cred_service::ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        kernels_dir: Some(Path::new("/nonexistent/kernels").to_path_buf()),
        ..cred_service::ServiceConfig::default()
    })
    .err()
    .expect("bind must fail");
    assert_eq!(err.code(), "io");
}
