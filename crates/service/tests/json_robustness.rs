//! Robustness fuzzing of the wire-protocol JSON reader against the
//! committed request corpus (`tests/corpus/requests.ndjson`): every
//! truncation and every seeded byte mutation must produce a typed error
//! or a clean parse — never a panic — and a live server must answer
//! garbage with a typed `protocol` error while keeping the connection.

mod common;

use std::path::Path;

use common::TestServer;
use cred_service::json;

/// The committed corpus: one realistic request line per entry.
fn corpus() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/requests.ndjson");
    let text = std::fs::read_to_string(&path).expect("corpus file");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() >= 12, "corpus shrank to {} lines", lines.len());
    lines
}

/// splitmix64 — the repo's standard deterministic stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn corpus_lines_parse_and_every_proper_prefix_is_rejected() {
    for line in corpus() {
        assert!(
            json::parse(&line).is_ok(),
            "corpus line must be valid: {line}"
        );
        // A request object cut off mid-line is never valid JSON: the
        // framing layer must be able to trust that a split frame fails
        // typed instead of parsing as something shorter.
        for cut in 0..line.len() {
            let prefix = &line[..cut];
            assert!(
                json::parse(prefix).is_err(),
                "prefix of length {cut} parsed: {prefix:?}"
            );
        }
    }
}

#[test]
fn seeded_byte_mutations_never_panic_the_parser() {
    let corpus = corpus();
    let mut state = 0xC0FFEEu64;
    for line in &corpus {
        let bytes = line.as_bytes();
        for _ in 0..2000 {
            let pos = (splitmix(&mut state) as usize) % bytes.len();
            let val = (splitmix(&mut state) & 0xFF) as u8;
            let mut mutated = bytes.to_vec();
            mutated[pos] = val;
            // Random bytes may break UTF-8; the wire layer's lossy
            // conversion is what the parser actually sees.
            let text = String::from_utf8_lossy(&mutated).into_owned();
            let outcome =
                std::panic::catch_unwind(|| json::parse(&text).map(|_| ()).map_err(|_| ()));
            assert!(outcome.is_ok(), "parser panicked on {text:?}");
        }
        // Insertions and deletions as well as replacements.
        for _ in 0..500 {
            let mut mutated = bytes.to_vec();
            let pos = (splitmix(&mut state) as usize) % mutated.len();
            if splitmix(&mut state).is_multiple_of(2) {
                mutated.insert(pos, (splitmix(&mut state) & 0xFF) as u8);
            } else {
                mutated.remove(pos);
            }
            let text = String::from_utf8_lossy(&mutated).into_owned();
            let outcome =
                std::panic::catch_unwind(|| json::parse(&text).map(|_| ()).map_err(|_| ()));
            assert!(outcome.is_ok(), "parser panicked on {text:?}");
        }
    }
}

#[test]
fn live_server_answers_garbage_with_typed_protocol_errors() {
    let server = TestServer::spawn(|_| {});
    let mut client = server.connect();
    let mut state = 0xBAD_F00Du64;
    for line in corpus() {
        // Truncations at several depths: all invalid JSON, all answered
        // with a typed protocol error on a surviving connection. (Never
        // send the *full* line here — real corpus requests execute.)
        let cuts: Vec<usize> = (1..line.len())
            .step_by(line.len().div_ceil(8).max(1))
            .collect();
        for cut in cuts {
            let resp = client.request(&line[..cut]);
            assert!(
                resp.contains("\"code\":\"protocol\""),
                "truncated {:?} -> {resp}",
                &line[..cut]
            );
        }
        // Control-byte garbage spliced into the line — what chaosnet's
        // garbage fault produces on the wire.
        let mut garbled = line.clone().into_bytes();
        let pos = (splitmix(&mut state) as usize) % garbled.len();
        garbled.insert(pos, 0x01 + (splitmix(&mut state) % 6) as u8);
        let garbled = String::from_utf8_lossy(&garbled).into_owned();
        let resp = client.request(&garbled);
        assert!(
            resp.contains("\"code\":\"protocol\""),
            "garbled {garbled:?} -> {resp}"
        );
    }
    // The connection took every malformed line and still works.
    let resp = client.request("{\"type\":\"ping\",\"id\":\"alive\"}");
    assert!(resp.contains("\"pong\""), "{resp}");
    server.shutdown();
}
