//! End-to-end chaos: a real server behind the `chaosnet` fault-injection
//! proxy, driven by the resilient client. The oracle is the clean
//! response for the same request — every response the client *delivers*
//! must be bit-identical to it, whatever the proxy did to the wire.
//! Fixed single-fault plans pin the two headline scenarios
//! (reset-mid-response, stalled reads) deterministically on both poller
//! backends.

mod common;

use std::time::Duration;

use common::TestServer;
use cred_service::chaosnet::NetFault;
use cred_service::{
    ChaosProxy, ChaosProxyConfig, ClientConfig, ClientError, NetChaosPlan, ResilientClient,
};

/// Both poller backends, labeled for assertion messages.
fn backends() -> Vec<(bool, &'static str)> {
    if cfg!(target_os = "linux") {
        vec![(false, "epoll"), (true, "poll")]
    } else {
        vec![(true, "poll")]
    }
}

/// The oracle view of an explore response: everything but the trailing
/// `"cache":{...}` counters, which legitimately change as the shared
/// cache warms up (including across the retries chaos forces).
fn payload(resp: &str) -> &str {
    resp.split(",\"cache\":")
        .next()
        .expect("split always yields a first piece")
}

/// A client tuned for test time: short backoff, short breaker cooldown.
fn fast_client(addr: String, max_attempts: u32) -> ResilientClient {
    ResilientClient::new(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            max_attempts,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            breaker_cooldown: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
}

#[test]
fn seeded_chaos_run_delivers_every_request_bit_identical() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 4;
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| c.force_poll_backend = force_poll);
        let proxy = ChaosProxy::spawn(
            server.addr.parse().expect("server addr"),
            ChaosProxyConfig {
                seed: 0,
                trip_percent: 25,
                force_poll_backend: force_poll,
                ..ChaosProxyConfig::default()
            },
        )
        .expect("spawn proxy");

        // The oracle table: the clean response for every request line,
        // fetched directly from the server. A repeat fetch proves the
        // responses are deterministic before chaos gets the blame.
        let line = |c: usize, r: usize| {
            format!(
                "{{\"type\":\"explore\",\"id\":\"c{c}-r{r}\",\"kernel\":\"figure3\",\
                 \"max_f\":{},\"n\":{}}}",
                1 + r % 3,
                40 + 10 * r
            )
        };
        let expected: Vec<Vec<String>> = (0..CLIENTS)
            .map(|c| {
                (0..REQUESTS)
                    .map(|r| payload(&server.request(&line(c, r))).to_string())
                    .collect()
            })
            .collect();
        assert_eq!(
            expected[0][0],
            payload(&server.request(&line(0, 0))),
            "[{backend}] clean responses must be deterministic"
        );

        // Connection-per-request traffic through the proxy: every
        // request rides a fresh seeded fault plan.
        let mut total_retries = 0;
        for (c, oracle) in expected.iter().enumerate() {
            let mut client = fast_client(proxy.addr().to_string(), 24);
            for (r, want) in oracle.iter().enumerate() {
                let got = client
                    .request(&line(c, r))
                    .unwrap_or_else(|e| panic!("[{backend}] client {c} request {r}: {e}"));
                assert_eq!(
                    payload(&got),
                    want,
                    "[{backend}] delivered response differs from the clean run"
                );
                client.disconnect();
            }
            total_retries += client.stats().retries;
        }

        let stats = proxy.stats();
        assert!(
            stats.connections >= (CLIENTS * REQUESTS) as u64,
            "[{backend}] {} connections for {} requests",
            stats.connections,
            CLIENTS * REQUESTS
        );
        assert!(
            stats.faulted_connections > 0,
            "[{backend}] seed 0 at trip 25 must fault some connections"
        );
        // Plans are seeded, so the faults (and the retries they force)
        // are reproducible; a run where nothing had to be retried means
        // the proxy stopped injecting.
        assert!(
            stats.resets_injected + stats.garbage_injected > 0,
            "[{backend}] no hard fault injected: {stats:?}"
        );
        assert!(
            total_retries > 0,
            "[{backend}] hard faults were injected but no request retried"
        );
        proxy.stop();
        server.shutdown();
    }
}

#[test]
fn reset_mid_response_fails_typed_after_exhausting_retries() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| c.force_poll_backend = force_poll);
        // Every connection resets 8 bytes into the response — shorter
        // than any response line, so no attempt can ever succeed.
        let proxy = ChaosProxy::spawn(
            server.addr.parse().expect("server addr"),
            ChaosProxyConfig {
                fixed_plan: Some(NetChaosPlan {
                    client_to_server: Vec::new(),
                    server_to_client: vec![NetFault::ResetAfter { bytes: 8 }],
                }),
                force_poll_backend: force_poll,
                ..ChaosProxyConfig::default()
            },
        )
        .expect("spawn proxy");

        let mut client = fast_client(proxy.addr().to_string(), 3);
        let err = client
            .request("{\"type\":\"ping\",\"id\":\"doomed\"}")
            .expect_err("every attempt is reset mid-response");
        match err {
            ClientError::Exhausted { attempts, .. } => {
                assert_eq!(attempts, 3, "[{backend}] budget is 3 attempts")
            }
            other => panic!("[{backend}] expected Exhausted, got {other}"),
        }
        let stats = client.stats();
        assert_eq!(stats.attempts, 3, "[{backend}] {stats:?}");
        assert_eq!(stats.retries, 2, "[{backend}] {stats:?}");
        assert_eq!(
            proxy.stats().resets_injected,
            3,
            "[{backend}] one injected reset per attempt"
        );
        proxy.stop();
        server.shutdown();
    }
}

#[test]
fn stalled_and_shredded_responses_are_delivered_without_retries() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| c.force_poll_backend = force_poll);
        // Shred the request into 3-byte segments, stall the response
        // stream mid-line, then shred it into 2-byte segments: slow and
        // ugly, but lossless — the client must deliver on the first
        // attempt with no retry.
        let proxy = ChaosProxy::spawn(
            server.addr.parse().expect("server addr"),
            ChaosProxyConfig {
                fixed_plan: Some(NetChaosPlan {
                    client_to_server: vec![NetFault::SplitWrites { max_chunk: 3 }],
                    server_to_client: vec![
                        NetFault::StallReads {
                            after_bytes: 10,
                            stall_ms: 100,
                        },
                        NetFault::SplitWrites { max_chunk: 2 },
                    ],
                }),
                force_poll_backend: force_poll,
                ..ChaosProxyConfig::default()
            },
        )
        .expect("spawn proxy");

        let line =
            "{\"type\":\"explore\",\"id\":\"slow\",\"kernel\":\"figure3\",\"max_f\":2,\"n\":60}";
        let want = payload(&server.request(line)).to_string();
        let mut client = fast_client(proxy.addr().to_string(), 24);
        let got = client.request(line).expect("lossless faults must deliver");
        assert_eq!(
            payload(&got),
            want,
            "[{backend}] shredded delivery must be exact"
        );
        let stats = client.stats();
        assert_eq!(stats.retries, 0, "[{backend}] {stats:?}");
        assert_eq!(stats.corrupt_responses, 0, "[{backend}] {stats:?}");
        assert!(
            proxy.stats().stalls_injected >= 1,
            "[{backend}] the stall must have armed: {:?}",
            proxy.stats()
        );
        proxy.stop();
        server.shutdown();
    }
}
