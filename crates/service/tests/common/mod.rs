//! Shared helpers for the service integration tests: spawn a server on
//! an ephemeral port and speak the line protocol to it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use cred_explore::CredError;
use cred_service::{Server, ServiceConfig};

/// The repo's bundled kernel directory.
pub fn kernels_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

/// A running test server plus the handle to join it after `shutdown`.
pub struct TestServer {
    pub addr: String,
    handle: JoinHandle<Result<(), CredError>>,
}

impl TestServer {
    /// Spawn with the bundled kernels and the given config tweaks.
    pub fn spawn(tweak: impl FnOnce(&mut ServiceConfig)) -> TestServer {
        let mut config = ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            kernels_dir: Some(kernels_dir()),
            ..ServiceConfig::default()
        };
        tweak(&mut config);
        let server = Server::bind(config).expect("bind test server");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || server.run());
        TestServer { addr, handle }
    }

    /// Open a client connection.
    pub fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// One-shot request on a fresh connection.
    pub fn request(&self, line: &str) -> String {
        self.connect().request(line)
    }

    /// Ask the server to stop and wait for a clean exit.
    pub fn shutdown(self) {
        let resp = self.request("{\"type\":\"shutdown\"}");
        assert!(resp.contains("\"ok\":true"), "shutdown refused: {resp}");
        self.handle
            .join()
            .expect("server thread must not panic")
            .expect("server must exit cleanly");
    }
}

/// One protocol connection.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    /// Send one request line and read one response line.
    pub fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    pub fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write newline");
        self.stream.flush().expect("flush");
    }

    pub fn recv(&mut self) -> String {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed the connection");
        resp.trim().to_string()
    }

    /// Write bytes exactly as given — no newline appended. Lifecycle
    /// tests use this to leave partial lines on the wire.
    #[allow(dead_code)]
    pub fn send_raw(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("write");
        self.stream.flush().expect("flush");
    }

    /// Surrender the underlying stream (e.g. to watch for the server's
    /// close with a read timeout).
    #[allow(dead_code)]
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}
