//! Wire-format compatibility: a committed response at the current
//! schema version must keep replaying byte-for-byte.
//!
//! The golden file pins the full explore response for a fixed request
//! (figure3, max_f 3, n 31, bulk, fresh server). If this test fails, the
//! wire format changed — either revert the change or bump
//! `SCHEMA_VERSION` with a compat plan (v1 -> v2 added the optional
//! `machine` parameter and `exact` response object; this request names
//! no machine, so the v2 golden body is the v1 body). Regenerate
//! deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p cred-service --test golden_wire`.

mod common;

use std::path::Path;

use common::TestServer;

const REQUEST: &str =
    "{\"type\":\"explore\",\"id\":\"golden-1\",\"kernel\":\"figure3\",\"max_f\":3,\"n\":31}";

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/explore_v2.json")
}

#[test]
fn explore_response_replays_byte_for_byte() {
    // A fresh server makes the embedded cache counters deterministic:
    // exactly the three per-factor plans of this request, all misses.
    let server = TestServer::spawn(|_| {});
    let resp = server.request(REQUEST);
    server.shutdown();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), resp.clone() + "\n").expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 and commit it");
    assert_eq!(
        resp,
        golden.trim_end(),
        "the wire format drifted from the committed golden response"
    );
    assert!(golden.contains("\"schema_version\":2"));
}
