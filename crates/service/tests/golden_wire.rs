//! Wire-format compatibility: committed responses must keep replaying
//! byte-for-byte — at the current schema version AND at every version
//! the server still answers.
//!
//! The golden files pin the full explore response for a fixed request
//! (figure3, max_f 3, n 31, bulk, fresh server). If the v3 test fails,
//! the wire format changed — either revert the change or bump
//! `SCHEMA_VERSION` with a compat plan (v1 -> v2 added the optional
//! `machine` parameter and `exact` response object; v2 -> v3 nests each
//! point's metrics in an `objectives` object with `maxlive` and renames
//! `pareto` to `frontier`). If the **v2** test fails, the compatibility
//! path broke: requests carrying `"schema_version":2` are promised the
//! exact bytes a v2 server produced, forever. Regenerate deliberately
//! with `UPDATE_GOLDEN=1 cargo test -p cred-service --test golden_wire`
//! (the v2 golden should never need regeneration).

mod common;

use std::path::Path;

use common::TestServer;

const REQUEST_V3: &str =
    "{\"type\":\"explore\",\"id\":\"golden-1\",\"kernel\":\"figure3\",\"max_f\":3,\"n\":31}";

const REQUEST_V2: &str = "{\"type\":\"explore\",\"id\":\"golden-1\",\"kernel\":\"figure3\",\
     \"max_f\":3,\"n\":31,\"schema_version\":2}";

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn replay(request: &str, golden: &str, update: bool) {
    // A fresh server makes the embedded cache counters deterministic:
    // exactly the three per-factor plans of this request, all misses.
    let server = TestServer::spawn(|_| {});
    let resp = server.request(request);
    server.shutdown();
    let path = golden_path(golden);
    if update {
        std::fs::write(&path, resp.clone() + "\n").expect("write golden");
    }
    let expected = std::fs::read_to_string(&path)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 and commit it");
    assert_eq!(
        resp,
        expected.trim_end(),
        "the wire format drifted from the committed golden response"
    );
}

#[test]
fn explore_response_replays_byte_for_byte() {
    replay(
        REQUEST_V3,
        "explore_v3.json",
        std::env::var_os("UPDATE_GOLDEN").is_some(),
    );
    let golden = std::fs::read_to_string(golden_path("explore_v3.json")).unwrap();
    assert!(golden.contains("\"schema_version\":3"));
    assert!(golden.contains("\"frontier\":["));
    assert!(golden.contains("\"objectives\""));
    assert!(golden.contains("\"maxlive\""));
}

#[test]
fn v2_request_replays_the_v2_golden_byte_for_byte() {
    // The v2 golden was committed by a v2 server; the compat path must
    // reproduce it exactly, so it is NOT regenerated under UPDATE_GOLDEN.
    replay(REQUEST_V2, "explore_v2.json", false);
    let golden = std::fs::read_to_string(golden_path("explore_v2.json")).unwrap();
    assert!(golden.contains("\"schema_version\":2"));
    assert!(golden.contains("\"pareto\":["));
    assert!(!golden.contains("maxlive"));
}
