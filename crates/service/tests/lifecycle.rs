//! Connection-lifecycle tests: idle timeouts, the slowloris progress
//! deadline, stalled readers, peer resets, and graceful drain — each
//! verified through the typed close-reason counters and exercised on
//! both poller backends.

mod common;

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use common::TestServer;
use cred_service::json::{self, Json};

/// Read the `"conns"` counter object out of a `stats` response.
fn conn_counters(stats_resp: &str) -> Vec<(String, u64)> {
    let v = json::parse(stats_resp).expect("stats response parses");
    let conns = v
        .get("stats")
        .and_then(|s| s.get("conns"))
        .expect("stats carries a conns object");
    match conns {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is a u64")))
            .collect(),
        other => panic!("conns is not an object: {other}"),
    }
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("no counter {name}"))
}

/// Poll `stats` on fresh connections until `pred` holds or the deadline
/// passes; returns the final counters.
fn await_counters(
    server: &TestServer,
    deadline: Duration,
    pred: impl Fn(&[(String, u64)]) -> bool,
) -> Vec<(String, u64)> {
    let end = Instant::now() + deadline;
    loop {
        let counters = conn_counters(&server.request("{\"type\":\"stats\"}"));
        if pred(&counters) || Instant::now() >= end {
            return counters;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Both poller backends, labeled for assertion messages.
fn backends() -> Vec<(bool, &'static str)> {
    if cfg!(target_os = "linux") {
        vec![(false, "epoll"), (true, "poll")]
    } else {
        vec![(true, "poll")]
    }
}

/// Put the socket in "RST on close" mode so dropping it sends a hard
/// reset instead of a graceful FIN (SO_LINGER with a zero timeout).
#[cfg(unix)]
fn set_linger_zero(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
}

#[test]
fn idle_connections_are_closed_with_the_idle_reason() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| {
            c.force_poll_backend = force_poll;
            c.idle_timeout = Some(Duration::from_millis(100));
            c.progress_timeout = None;
        });
        let mut client = server.connect();
        let resp = client.request("{\"type\":\"ping\",\"id\":1}");
        assert!(resp.contains("\"pong\""), "[{backend}] {resp}");
        // Quiescent now: the server must close us, not hold the socket
        // forever. EOF is the close; it must arrive well before 5 s.
        let mut stream = client.into_stream();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let start = Instant::now();
        match stream.read(&mut buf) {
            Ok(0) => {}
            other => panic!("[{backend}] expected idle close, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "[{backend}] idle close took {:?}",
            start.elapsed()
        );
        let counters = await_counters(&server, Duration::from_secs(2), |c| {
            counter(c, "idle_closed") >= 1
        });
        assert_eq!(counter(&counters, "idle_closed"), 1, "[{backend}]");
        assert_eq!(counter(&counters, "slow_closed"), 0, "[{backend}]");
        server.shutdown();
    }
}

#[test]
fn slowloris_partial_lines_hit_the_progress_deadline() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| {
            c.force_poll_backend = force_poll;
            c.idle_timeout = None;
            c.progress_timeout = Some(Duration::from_millis(150));
        });
        // A request line that never finishes: the progress clock starts
        // at the first partial byte and must close the connection.
        let mut stream = TcpStream::connect(&server.addr).unwrap();
        stream.write_all(b"{\"type\":\"pi").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let start = Instant::now();
        match stream.read(&mut buf) {
            Ok(0) => {}
            other => panic!("[{backend}] expected slow close, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "[{backend}] slow close took {:?}",
            start.elapsed()
        );
        let counters = await_counters(&server, Duration::from_secs(2), |c| {
            counter(c, "slow_closed") >= 1
        });
        assert_eq!(counter(&counters, "slow_closed"), 1, "[{backend}]");
        assert_eq!(counter(&counters, "idle_closed"), 0, "[{backend}]");
        server.shutdown();
    }
}

#[test]
fn steady_pipelining_with_persistent_partials_is_not_slowloris() {
    // A client that always has the *next* request's prefix in the buffer
    // is making progress on every completed line; the progress deadline
    // must key off line completion, not buffer emptiness.
    let server = TestServer::spawn(|c| {
        c.idle_timeout = None;
        c.progress_timeout = Some(Duration::from_millis(150));
    });
    let mut client = server.connect();
    for i in 0..8 {
        // One write carries a complete ping plus the prefix of the next.
        client.send_raw(&format!(
            "{{\"type\":\"ping\",\"id\":{i}}}\n{{\"type\":\"pin"
        ));
        let resp = client.recv();
        assert!(resp.contains("\"pong\""), "round {i}: {resp}");
        // Sit inside the progress window with the partial outstanding,
        // then complete it. Cumulative partial time across rounds far
        // exceeds the window; per-line it never does.
        std::thread::sleep(Duration::from_millis(60));
        client.send_raw(&format!("g\",\"id\":{}}}\n", i + 100));
        let resp = client.recv();
        assert!(resp.contains("\"pong\""), "round {i} completion: {resp}");
    }
    let counters = conn_counters(&server.request("{\"type\":\"stats\"}"));
    assert_eq!(counter(&counters, "slow_closed"), 0);
    server.shutdown();
}

#[test]
fn stalled_readers_are_closed_without_buffering_to_the_hard_cap() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| {
            c.force_poll_backend = force_poll;
            c.idle_timeout = None;
            c.progress_timeout = Some(Duration::from_millis(200));
            // Tiny watermarks so an inflated response trips the pause
            // immediately; the hard cap stays far away — the *deadline*
            // must do the closing, not the cap.
            c.write_high_water = 4 << 10;
            c.write_low_water = 1 << 10;
        });
        // Ask for a response padded far past every kernel socket buffer,
        // then never read a byte of it.
        let mut stream = TcpStream::connect(&server.addr).unwrap();
        stream
            .write_all(
                b"{\"type\":\"explore\",\"id\":\"stall\",\"kernel\":\"figure3\",\
                  \"n\":10,\"debug_pad_bytes\":8388608}\n",
            )
            .unwrap();
        let counters = await_counters(&server, Duration::from_secs(10), |c| {
            counter(c, "slow_closed") >= 1
        });
        assert_eq!(
            counter(&counters, "slow_closed"),
            1,
            "[{backend}] {counters:?}"
        );
        drop(stream);
        server.shutdown();
    }
}

#[test]
fn half_open_peers_with_undeliverable_output_are_closed() {
    // The peer half-closes (FIN) but never drains what we owe it: EOF
    // with pending writes starts the progress clock.
    let server = TestServer::spawn(|c| {
        c.idle_timeout = None;
        c.progress_timeout = Some(Duration::from_millis(200));
        c.write_high_water = 4 << 10;
        c.write_low_water = 1 << 10;
    });
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream
        .write_all(
            b"{\"type\":\"explore\",\"id\":\"halfopen\",\"kernel\":\"figure3\",\
              \"n\":10,\"debug_pad_bytes\":8388608}\n",
        )
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let counters = await_counters(&server, Duration::from_secs(10), |c| {
        counter(c, "slow_closed") >= 1
    });
    assert_eq!(counter(&counters, "slow_closed"), 1, "{counters:?}");
    drop(stream);
    server.shutdown();
}

#[test]
fn peer_resets_mid_response_are_counted_as_resets() {
    for (force_poll, backend) in backends() {
        let server = TestServer::spawn(|c| {
            c.force_poll_backend = force_poll;
            c.idle_timeout = None;
            c.progress_timeout = None;
        });
        // Ask for a deliberately slow solve, then hard-reset the socket
        // while the response is still being computed: the server learns
        // about the reset from the socket, mid-request.
        let stream = TcpStream::connect(&server.addr).unwrap();
        let mut stream = stream;
        stream
            .write_all(
                b"{\"type\":\"explore\",\"id\":\"rst\",\"kernel\":\"figure3\",\
                  \"n\":10,\"debug_delay_ms\":300}\n",
            )
            .unwrap();
        set_linger_zero(&stream);
        drop(stream); // RST, not FIN
        let counters = await_counters(&server, Duration::from_secs(10), |c| {
            counter(c, "reset_by_peer") >= 1
        });
        assert_eq!(
            counter(&counters, "reset_by_peer"),
            1,
            "[{backend}] {counters:?}"
        );
        server.shutdown();
    }
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_accounts_every_connection() {
    let dump =
        std::env::temp_dir().join(format!("cred-lifecycle-drain-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let server = {
        let dump = dump.clone();
        TestServer::spawn(move |c| {
            c.metrics_dump = Some(dump);
            c.idle_timeout = None;
            c.progress_timeout = None;
        })
    };
    // Two idle connections that will ride out the drain...
    let idle_a = server.connect();
    let mut idle_b = server.connect();
    let resp = idle_b.request("{\"type\":\"ping\",\"id\":\"b\"}");
    assert!(resp.contains("\"pong\""), "{resp}");
    // ...and one connection with a response still being computed when
    // the drain begins.
    let mut busy = server.connect();
    busy.send(
        "{\"type\":\"explore\",\"id\":\"busy\",\"kernel\":\"figure3\",\
         \"n\":10,\"debug_delay_ms\":400}",
    );
    std::thread::sleep(Duration::from_millis(50)); // let it be admitted
    server.shutdown();
    // The in-flight response was still delivered before the close.
    let resp = busy.recv();
    assert!(resp.contains("\"id\":\"busy\""), "{resp}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // And then the drain closed the connection.
    let mut stream = busy.into_stream();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset) => {}
        other => panic!("expected drain close, got {other:?}"),
    }
    drop(idle_a);
    drop(idle_b);
    // The final snapshot must account for every accepted connection:
    // accepted == closed_ok + idle + slow + reset + drained.
    let snapshot = std::fs::read_to_string(&dump).expect("metrics dump written");
    let v = json::parse(&snapshot).expect("dump parses");
    let conns = v.get("conns").expect("dump carries conns");
    let get = |k: &str| conns.get(k).and_then(Json::as_u64).expect("counter");
    let accepted = get("accepted");
    let sum = get("closed_ok")
        + get("idle_closed")
        + get("slow_closed")
        + get("reset_by_peer")
        + get("drained");
    assert!(accepted >= 4, "saw {accepted} connections");
    assert_eq!(
        accepted, sum,
        "every accepted connection ends in exactly one reason: {snapshot}"
    );
    assert!(get("drained") >= 2, "idle+busy conns drain: {snapshot}");
    let _ = std::fs::remove_file(&dump);
}
