//! Readiness polling for the event-loop server: a thin, hand-rolled
//! wrapper over `epoll(7)` on Linux with a portable `poll(2)` fallback,
//! plus a cross-thread [`Waker`] (an `eventfd(2)` on Linux, a
//! nonblocking self-pipe elsewhere).
//!
//! The repo deliberately has no external dependencies, so instead of
//! `mio`/`tokio` this module declares the handful of libc symbols it
//! needs directly (`std` already links libc on every unix target — these
//! declarations add no dependency, only signatures). The surface is the
//! minimum an NDJSON request/response server needs:
//!
//! * [`Poller::register`] / [`reregister`](Poller::reregister) /
//!   [`deregister`](Poller::deregister) — level-triggered read/write
//!   interest per file descriptor, each registration carrying a caller
//!   token;
//! * [`Poller::wait`] — block until something is ready, translating the
//!   backend's events into [`Event`]s;
//! * [`Poller::waker`] — a clonable, `Send` handle that makes `wait`
//!   return from any thread (workers use it to deliver completions, the
//!   shutdown path uses it to interrupt an idle loop promptly).
//!
//! Level-triggered semantics keep the connection state machines simple:
//! an interest that was not fully serviced simply fires again on the
//! next wait.
//!
//! The epoll backend is O(ready) per wait; the poll backend rebuilds its
//! `pollfd` array per call and is O(registered) — correct everywhere
//! `poll(2)` exists, and kept honest by a test that forces it on Linux
//! ([`crate::ServiceConfig::force_poll_backend`]).

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

mod ffi {
    // Each backend uses its half of these declarations; the other half
    // is intentionally unused on any given target.
    #![allow(dead_code)]

    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`. The kernel ABI packs it on x86; other
    /// architectures use natural alignment.
    #[derive(Clone, Copy, Debug)]
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct pollfd`.
    #[derive(Clone, Copy, Debug)]
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = std::os::raw::c_uint;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// One readiness notification: the token given at registration plus what
/// the descriptor is ready for. `hangup` folds in both error and hangup
/// conditions — the caller's read/write will surface the specific error.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// The registration token reserved for the waker's descriptor. `wait`
/// filters it out (wakes are reported via its return value), so callers
/// never observe it.
const WAKE_TOKEN: u64 = u64::MAX;

/// An owned descriptor that closes on drop (no `OwnedFd` juggling — the
/// poller deals in raw fds end to end).
#[derive(Debug)]
struct ClosingFd(RawFd);

impl Drop for ClosingFd {
    fn drop(&mut self) {
        unsafe { ffi::close(self.0) };
    }
}

/// The write end of the wake channel: signal-safe, clonable, `Send`.
/// Writing is best-effort — a full pipe/counter means a wake is already
/// pending, which is exactly what the writer wanted.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<ClosingFd>,
    /// eventfd wants an 8-byte counter increment; a pipe wants any byte.
    is_eventfd: bool,
}

impl Waker {
    /// Make the owning poller's `wait` return. Callable from any thread.
    pub fn wake(&self) {
        let buf: [u8; 8] = 1u64.to_ne_bytes();
        let len = if self.is_eventfd { 8 } else { 1 };
        // EAGAIN means a wake is already pending; any other failure is
        // unrecoverable at this layer and harmless to ignore (the loop
        // also wakes on its own traffic).
        unsafe { ffi::write(self.fd.0, buf.as_ptr().cast(), len) };
    }
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Put `fd` in nonblocking mode via fcntl (used for the self-pipe; the
/// sockets go through std's `set_nonblocking`).
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = ffi::fcntl(fd, ffi::F_GETFL, 0);
        if flags < 0 {
            return Err(last_os_error());
        }
        if ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) < 0 {
            return Err(last_os_error());
        }
    }
    Ok(())
}

/// Read-side wake channel: eventfd where available, otherwise a
/// nonblocking pipe.
#[derive(Debug)]
enum WakeRead {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    EventFd(Arc<ClosingFd>),
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    Pipe(ClosingFd),
}

impl WakeRead {
    fn fd(&self) -> RawFd {
        match self {
            WakeRead::EventFd(fd) => fd.0,
            WakeRead::Pipe(fd) => fd.0,
        }
    }

    /// Drain pending wake signals so a level-triggered poller stops
    /// reporting them.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { ffi::read(self.fd(), buf.as_mut_ptr().cast(), buf.len()) };
            // 0 cannot happen (the write end outlives us via the Waker's
            // Arc for eventfd; for a pipe EOF just stops the draining);
            // negative is EAGAIN = fully drained.
            if n <= 0 {
                return;
            }
            // An eventfd read always consumes the whole counter.
            if matches!(self, WakeRead::EventFd(_)) {
                return;
            }
        }
    }
}

/// Construct the wake channel: `(read side, write handle)`.
#[cfg(target_os = "linux")]
fn wake_channel() -> io::Result<(WakeRead, Waker)> {
    let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
    if fd < 0 {
        return Err(last_os_error());
    }
    let shared = Arc::new(ClosingFd(fd));
    Ok((
        WakeRead::EventFd(Arc::clone(&shared)),
        Waker {
            fd: shared,
            is_eventfd: true,
        },
    ))
}

/// Construct the wake channel: `(read side, write handle)`.
#[cfg(not(target_os = "linux"))]
fn wake_channel() -> io::Result<(WakeRead, Waker)> {
    let mut fds = [0i32; 2];
    if unsafe { ffi::pipe(fds.as_mut_ptr()) } < 0 {
        return Err(last_os_error());
    }
    let (r, w) = (ClosingFd(fds[0]), ClosingFd(fds[1]));
    set_nonblocking(r.0)?;
    set_nonblocking(w.0)?;
    Ok((
        WakeRead::Pipe(r),
        Waker {
            fd: Arc::new(w),
            is_eventfd: false,
        },
    ))
}

/// Desired readiness per registration (level-triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn epoll_mask(self) -> u32 {
        let mut m = ffi::EPOLLRDHUP;
        if self.readable {
            m |= ffi::EPOLLIN;
        }
        if self.writable {
            m |= ffi::EPOLLOUT;
        }
        m
    }

    fn poll_mask(self) -> i16 {
        let mut m = 0;
        if self.readable {
            m |= ffi::POLLIN;
        }
        if self.writable {
            m |= ffi::POLLOUT;
        }
        m
    }
}

#[derive(Debug)]
enum Backend {
    /// epoll instance fd; registrations live in the kernel.
    Epoll(ClosingFd),
    /// Userspace registration table, handed to `poll(2)` on every wait.
    Poll {
        registered: HashMap<RawFd, (u64, Interest)>,
    },
}

/// A level-triggered readiness poller over raw fds. Not thread-safe —
/// it belongs to the event loop thread; other threads interact with it
/// only through its [`Waker`].
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    wake_read: WakeRead,
    waker: Waker,
    /// Scratch for epoll_wait.
    events: Vec<ffi::EpollEvent>,
    /// Scratch for poll(2).
    pollfds: Vec<ffi::PollFd>,
    /// Tokens parallel to `pollfds`.
    poll_tokens: Vec<u64>,
}

impl Poller {
    /// A new poller: epoll on Linux unless `force_poll` asks for the
    /// portable `poll(2)` backend (the only backend elsewhere).
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        let (wake_read, waker) = wake_channel()?;
        let use_epoll = cfg!(target_os = "linux") && !force_poll;
        let backend = if use_epoll {
            let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(last_os_error());
            }
            Backend::Epoll(ClosingFd(fd))
        } else {
            Backend::Poll {
                registered: HashMap::new(),
            }
        };
        let mut poller = Poller {
            backend,
            wake_read,
            waker,
            events: vec![ffi::EpollEvent { events: 0, data: 0 }; 1024],
            pollfds: Vec::new(),
            poll_tokens: Vec::new(),
        };
        poller.ctl(true, poller.wake_read.fd(), WAKE_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    /// True when this poller runs on the `poll(2)` fallback backend.
    pub fn is_poll_backend(&self) -> bool {
        matches!(self.backend, Backend::Poll { .. })
    }

    /// A wake handle for other threads.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    fn ctl(&mut self, add: bool, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(ep) => {
                let mut ev = ffi::EpollEvent {
                    events: interest.epoll_mask(),
                    data: token,
                };
                let op = if add {
                    ffi::EPOLL_CTL_ADD
                } else {
                    ffi::EPOLL_CTL_MOD
                };
                if unsafe { ffi::epoll_ctl(ep.0, op, fd, &mut ev) } < 0 {
                    return Err(last_os_error());
                }
                Ok(())
            }
            Backend::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Start watching `fd` with `interest`; events carry `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(true, fd, token, interest)
    }

    /// Change the interest (and/or token) of a registered fd.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(false, fd, token, interest)
    }

    /// Stop watching `fd`. Must be called *before* closing the fd on the
    /// poll backend (epoll drops closed fds by itself, the userspace
    /// table does not).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll(ep) => {
                let mut ev = ffi::EpollEvent { events: 0, data: 0 };
                if unsafe { ffi::epoll_ctl(ep.0, ffi::EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                    return Err(last_os_error());
                }
                Ok(())
            }
            Backend::Poll { registered } => {
                registered.remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready, a waker fires, or
    /// `timeout` passes. Ready fds are appended to `out` (cleared first);
    /// returns `true` when a wake was consumed.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        out.clear();
        let timeout_ms: i32 = timeout_millis(timeout);
        let mut woken = false;
        match &mut self.backend {
            Backend::Epoll(ep) => {
                let n = loop {
                    let n = unsafe {
                        ffi::epoll_wait(
                            ep.0,
                            self.events.as_mut_ptr(),
                            self.events.len() as i32,
                            timeout_ms,
                        )
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let e = last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                for ev in &self.events[..n] {
                    let (mask, token) = (ev.events, ev.data);
                    if token == WAKE_TOKEN {
                        woken = true;
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: mask & ffi::EPOLLIN != 0,
                        writable: mask & ffi::EPOLLOUT != 0,
                        hangup: mask & (ffi::EPOLLERR | ffi::EPOLLHUP | ffi::EPOLLRDHUP) != 0,
                    });
                }
            }
            Backend::Poll { registered } => {
                self.pollfds.clear();
                self.poll_tokens.clear();
                for (&fd, &(token, interest)) in registered.iter() {
                    self.pollfds.push(ffi::PollFd {
                        fd,
                        events: interest.poll_mask(),
                        revents: 0,
                    });
                    self.poll_tokens.push(token);
                }
                loop {
                    let n = unsafe {
                        ffi::poll(
                            self.pollfds.as_mut_ptr(),
                            self.pollfds.len() as ffi::NfdsT,
                            timeout_ms,
                        )
                    };
                    if n >= 0 {
                        break;
                    }
                    let e = last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                }
                for (pfd, &token) in self.pollfds.iter().zip(&self.poll_tokens) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if token == WAKE_TOKEN {
                        woken = true;
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: pfd.revents & ffi::POLLIN != 0,
                        writable: pfd.revents & ffi::POLLOUT != 0,
                        hangup: pfd.revents & (ffi::POLLERR | ffi::POLLHUP) != 0,
                    });
                }
            }
        }
        if woken {
            self.wake_read.drain();
        }
        Ok(woken)
    }
}

/// Convert a wait timeout to the millisecond argument `epoll_wait`/`poll`
/// expect: `-1` blocks forever, `0` polls and returns. Rounds *up* so a
/// nonzero duration never becomes a 0 ms busy-poll (a 1 µs timer would
/// otherwise spin the loop), and a sub-slot timer is never woken early
/// and rescheduled forever. Saturates at `i32::MAX` ms (~24 days).
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::new(true).expect("poll backend")];
        if cfg!(target_os = "linux") {
            v.push(Poller::new(false).expect("epoll backend"));
        }
        v
    }

    #[test]
    fn waker_interrupts_an_idle_wait_from_another_thread() {
        for mut poller in backends() {
            let waker = poller.waker();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
            });
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            // No timeout: only the wake can end this wait.
            let woken = poller.wait(&mut events, None).unwrap();
            assert!(woken, "wait must report the wake");
            assert!(events.is_empty(), "the wake token is filtered out");
            assert!(start.elapsed() < Duration::from_secs(5));
            t.join().unwrap();
            // The wake was drained: the next wait times out quietly.
            let woken = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(!woken && events.is_empty());
        }
    }

    #[test]
    fn readable_socket_reports_its_token() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            client.write_all(b"hello\n").unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{events:?}"
            );
            // Deregistered fds go quiet.
            poller.deregister(server.as_raw_fd()).unwrap();
            client.write_all(b"more\n").unwrap();
            let woken = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!woken && events.is_empty(), "{events:?}");
        }
    }

    #[test]
    fn write_interest_fires_on_an_unblocked_socket() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let _server = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(
                    client.as_raw_fd(),
                    7,
                    Interest {
                        readable: false,
                        writable: true,
                    },
                )
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.writable),
                "{events:?}"
            );
        }
    }

    #[test]
    fn linux_default_is_epoll_and_force_poll_is_poll() {
        if cfg!(target_os = "linux") {
            assert!(!Poller::new(false).unwrap().is_poll_backend());
        }
        assert!(Poller::new(true).unwrap().is_poll_backend());
    }

    #[test]
    fn requested_timeout_bounds_an_idle_wait_on_both_backends() {
        // The timer integration depends on `wait(Some(d))` returning
        // close to `d` when nothing is ready: a timeout that blocked
        // past its bound would fire idle/progress deadlines late.
        for mut poller in backends() {
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            let woken = poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            let elapsed = start.elapsed();
            assert!(!woken && events.is_empty());
            assert!(
                elapsed >= Duration::from_millis(45),
                "woke early: {elapsed:?} (backend poll={})",
                poller.is_poll_backend()
            );
            assert!(
                elapsed < Duration::from_secs(5),
                "timeout did not bound the wait: {elapsed:?} (backend poll={})",
                poller.is_poll_backend()
            );
        }
    }

    #[test]
    fn sub_millisecond_timeout_still_sleeps_on_both_backends() {
        // A 1 µs timeout must round UP to 1 ms, not down to 0: a 0 ms
        // wait is a nonblocking poll, and a timer loop built on it would
        // spin the CPU until the sub-ms deadline passes.
        for mut poller in backends() {
            let mut events = Vec::new();
            let mut spins = 0u32;
            let start = std::time::Instant::now();
            // If rounding handed the kernel 0 ms, these 20 waits would
            // all return instantly (well under 1 ms total).
            while spins < 20 {
                poller
                    .wait(&mut events, Some(Duration::from_micros(1)))
                    .unwrap();
                spins += 1;
            }
            let elapsed = start.elapsed();
            assert!(
                elapsed >= Duration::from_millis(10),
                "20 one-µs waits finished in {elapsed:?} — rounding slept 0 ms \
                 (backend poll={})",
                poller.is_poll_backend()
            );
        }
    }

    #[test]
    fn timeout_rounding_never_maps_nonzero_to_zero() {
        assert_eq!(timeout_millis(None), -1);
        // Zero means "poll and return": the caller explicitly asked for
        // an immediate pass (an overdue timer), not a sleep.
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        // Everything nonzero rounds up, never down to 0.
        assert_eq!(timeout_millis(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_micros(999))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(1))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_micros(1500))), 2);
        assert_eq!(timeout_millis(Some(Duration::from_millis(250))), 250);
        // And saturates instead of overflowing the C int.
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
