//! A seeded in-process TCP fault-injection proxy for the evaluation
//! service.
//!
//! `chaosnet` sits between a client and the server and misbehaves on
//! purpose, the way real networks do: it splits frames into tiny
//! segments, coalesces and delays writes, stalls reads, resets
//! connections mid-response, and injects garbage bytes into the stream.
//! It extends PR 4's fail-point discipline (`cred-resilience`) to the
//! network boundary: every connection gets a [`NetChaosPlan`] sampled
//! from a seed with the same dependency-free splitmix64 idiom as
//! `ChaosPlan::sample`, so a failing run names a seed and a connection
//! index that reproduce it exactly.
//!
//! The proxy reuses the service's own [`Poller`] on a dedicated thread:
//! one nonblocking event loop, every proxied connection a pair of
//! sockets with a per-direction byte pipe and fault state. Fault timers
//! (write holds, read stalls) bound the poller wait the same way the
//! server's timer wheel does.
//!
//! # Why garbage bytes come from the control range
//!
//! Injected garbage is drawn from `0x01..=0x06` — bytes that RFC 8259
//! forbids both inside strings (raw control characters) and between
//! tokens. A corrupted frame therefore *provably* fails the strict
//! [`crate::json`] parser, so a well-behaved client can always detect
//! the corruption and retry; the chaos-loadgen oracle then verifies
//! that no corrupted bytes were ever silently accepted. Arbitrary-byte
//! corruption (e.g. a flipped digit) is indistinguishable from a valid
//! response without an end-to-end checksum, which the NDJSON protocol
//! does not carry — noted as future work in DESIGN.md.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::poller::{Event, Interest, Poller};

/// Registration token of the proxy's listen socket (`u64::MAX` is the
/// poller's wake token). Connection pair `k` uses tokens `2k` (client
/// side) and `2k + 1` (upstream side).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Per-direction buffered-byte cap; beyond it the source side stops
/// being read until the sink drains (the proxy's own backpressure).
const PIPE_CAP: usize = 1 << 20;

/// Bytes read from one socket per readiness pass.
const READ_CHUNK: usize = 64 << 10;

/// The injected garbage alphabet: raw control bytes a strict JSON
/// parser must reject wherever they land (see the module docs).
const GARBAGE_BYTES: [u8; 6] = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06];

/// One network fault applied to one direction of a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Forward at most `max_chunk` bytes per write — frames arrive
    /// shredded into tiny segments.
    SplitWrites { max_chunk: usize },
    /// After every `every_bytes` forwarded bytes, hold writes for
    /// `delay_ms`. Bytes accumulate during the hold, so this also
    /// *coalesces* frames that were written separately.
    DelayWrites { every_bytes: u64, delay_ms: u64 },
    /// Hard-close both sockets once `bytes` have been forwarded in this
    /// direction — a mid-frame (often mid-response) connection reset.
    ResetAfter { bytes: u64 },
    /// Once `bytes` have been *received* from the source, stop reading
    /// it for `stall_ms` (one-shot).
    StallReads { after_bytes: u64, stall_ms: u64 },
    /// Once `bytes` have been received, splice `len` garbage bytes into
    /// the stream (one-shot).
    Garbage { after_bytes: u64, len: usize },
}

/// The seeded fault plan for one proxied connection: independent fault
/// lists per direction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetChaosPlan {
    pub client_to_server: Vec<NetFault>,
    pub server_to_client: Vec<NetFault>,
}

impl NetChaosPlan {
    /// A plan that forwards everything faithfully.
    pub fn passthrough() -> NetChaosPlan {
        NetChaosPlan::default()
    }

    /// True when the plan injects no fault at all.
    pub fn is_passthrough(&self) -> bool {
        self.client_to_server.is_empty() && self.server_to_client.is_empty()
    }

    /// Sample a plan from a seed: each fault kind arms independently
    /// with probability `trip_percent`% (resets at half that — they are
    /// the most disruptive), magnitudes drawn from the same stream.
    /// Deterministic, dependency-free, and shrinkable by seed — the
    /// same contract as `cred_resilience`'s `ChaosPlan::sample`.
    pub fn sample(seed: u64, trip_percent: u32) -> NetChaosPlan {
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64 — deterministic and dependency-free.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let trip = u64::from(trip_percent);
        let direction = |next: &mut dyn FnMut() -> u64| -> Vec<NetFault> {
            let mut faults = Vec::new();
            if next() % 100 < trip {
                faults.push(NetFault::SplitWrites {
                    max_chunk: 1 + (next() % 7) as usize,
                });
            }
            if next() % 100 < trip {
                faults.push(NetFault::DelayWrites {
                    every_bytes: 64 + next() % 512,
                    delay_ms: 5 + next() % 60,
                });
            }
            if next() % 100 < trip / 2 {
                faults.push(NetFault::ResetAfter {
                    bytes: 16 + next() % 768,
                });
            }
            if next() % 100 < trip {
                faults.push(NetFault::StallReads {
                    after_bytes: next() % 512,
                    stall_ms: 20 + next() % 120,
                });
            }
            if next() % 100 < trip {
                faults.push(NetFault::Garbage {
                    after_bytes: next() % 256,
                    len: 1 + (next() % 12) as usize,
                });
            }
            faults
        };
        NetChaosPlan {
            client_to_server: direction(&mut next),
            server_to_client: direction(&mut next),
        }
    }

    /// The plan for connection `index` under base `seed` — how the
    /// proxy derives per-connection plans.
    pub fn for_connection(seed: u64, index: u64, trip_percent: u32) -> NetChaosPlan {
        NetChaosPlan::sample(
            seed.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15)),
            trip_percent,
        )
    }
}

/// Configuration for [`ChaosProxy::spawn`].
#[derive(Debug, Clone)]
pub struct ChaosProxyConfig {
    /// Base seed; connection `k` gets
    /// [`NetChaosPlan::for_connection`]`(seed, k, trip_percent)`.
    pub seed: u64,
    /// Per-fault arming probability in percent (resets arm at half).
    pub trip_percent: u32,
    /// Override: apply this exact plan to every connection instead of
    /// sampling (used by tests to pin one fault kind).
    pub fixed_plan: Option<NetChaosPlan>,
    /// Force the portable `poll(2)` backend.
    pub force_poll_backend: bool,
}

impl Default for ChaosProxyConfig {
    fn default() -> Self {
        ChaosProxyConfig {
            seed: 0,
            trip_percent: 25,
            fixed_plan: None,
            force_poll_backend: false,
        }
    }
}

/// Injection counters, all relaxed (read after the run).
#[derive(Debug, Default)]
struct ProxyStats {
    connections: AtomicU64,
    faulted_connections: AtomicU64,
    resets_injected: AtomicU64,
    garbage_injected: AtomicU64,
    stalls_injected: AtomicU64,
    delays_injected: AtomicU64,
    bytes_client_to_server: AtomicU64,
    bytes_server_to_client: AtomicU64,
}

/// A frozen copy of the proxy's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStatsSnapshot {
    /// Connections accepted = fault plans sampled.
    pub connections: u64,
    /// Connections whose plan injected at least one fault.
    pub faulted_connections: u64,
    pub resets_injected: u64,
    pub garbage_injected: u64,
    pub stalls_injected: u64,
    pub delays_injected: u64,
    pub bytes_client_to_server: u64,
    pub bytes_server_to_client: u64,
}

impl ProxyStats {
    fn snapshot(&self) -> ProxyStatsSnapshot {
        ProxyStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            faulted_connections: self.faulted_connections.load(Ordering::Relaxed),
            resets_injected: self.resets_injected.load(Ordering::Relaxed),
            garbage_injected: self.garbage_injected.load(Ordering::Relaxed),
            stalls_injected: self.stalls_injected.load(Ordering::Relaxed),
            delays_injected: self.delays_injected.load(Ordering::Relaxed),
            bytes_client_to_server: self.bytes_client_to_server.load(Ordering::Relaxed),
            bytes_server_to_client: self.bytes_server_to_client.load(Ordering::Relaxed),
        }
    }
}

/// The fault-injection proxy. [`spawn`](ChaosProxy::spawn) binds a
/// local port, starts the event-loop thread, and returns a
/// [`ProxyHandle`].
pub struct ChaosProxy;

/// A running proxy: its address, counters, and shutdown control.
pub struct ProxyHandle {
    addr: SocketAddr,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    waker: crate::poller::Waker,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ProxyHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current injection counters.
    pub fn stats(&self) -> ProxyStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop the proxy thread, closing every proxied connection.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ProxyHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl ChaosProxy {
    /// Bind `127.0.0.1:0` and start proxying to `upstream` under
    /// `config`'s fault regime.
    pub fn spawn(upstream: SocketAddr, config: ChaosProxyConfig) -> std::io::Result<ProxyHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new(config.force_poll_backend)?;
        let waker = poller.waker();
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut looper = ProxyLoop {
            poller,
            listener,
            upstream,
            config,
            pairs: HashMap::new(),
            next_pair: 0,
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
        };
        looper
            .poller
            .register(looper.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        let join = std::thread::Builder::new()
            .name("cred-chaosnet".into())
            .spawn(move || looper.run())?;
        Ok(ProxyHandle {
            addr,
            stats,
            stop,
            waker,
            join: Some(join),
        })
    }
}

/// Compiled per-direction fault state.
#[derive(Debug, Default)]
struct DirFaults {
    split: Option<usize>,
    delay: Option<(u64, Duration)>,
    reset_after: Option<u64>,
    stall_read: Option<(u64, Duration)>,
    garbage: Option<(u64, usize)>,
}

impl DirFaults {
    fn compile(faults: &[NetFault]) -> DirFaults {
        let mut d = DirFaults::default();
        for f in faults {
            match *f {
                NetFault::SplitWrites { max_chunk } => d.split = Some(max_chunk.max(1)),
                NetFault::DelayWrites {
                    every_bytes,
                    delay_ms,
                } => {
                    d.delay = Some((every_bytes.max(1), Duration::from_millis(delay_ms)));
                }
                NetFault::ResetAfter { bytes } => d.reset_after = Some(bytes),
                NetFault::StallReads {
                    after_bytes,
                    stall_ms,
                } => d.stall_read = Some((after_bytes, Duration::from_millis(stall_ms))),
                NetFault::Garbage { after_bytes, len } => d.garbage = Some((after_bytes, len)),
            }
        }
        d
    }
}

/// One direction of a proxied connection: a byte pipe plus fault state.
struct Pipe {
    buf: Vec<u8>,
    pos: usize,
    /// Bytes read from the source socket.
    received: u64,
    /// Bytes written to the sink socket.
    forwarded: u64,
    src_eof: bool,
    /// Half-close propagated to the sink after EOF + full flush.
    sink_shut: bool,
    faults: DirFaults,
    /// Write hold in effect (delay fault).
    hold_until: Option<Instant>,
    /// Next forwarded-byte mark that triggers a delay hold.
    next_delay_mark: u64,
    /// Read stall in effect.
    read_hold_until: Option<Instant>,
    stall_done: bool,
    garbage_done: bool,
}

impl Pipe {
    fn new(faults: DirFaults) -> Pipe {
        let next_delay_mark = faults.delay.map_or(u64::MAX, |(every, _)| every);
        Pipe {
            buf: Vec::new(),
            pos: 0,
            received: 0,
            forwarded: 0,
            src_eof: false,
            sink_shut: false,
            faults,
            hold_until: None,
            next_delay_mark,
            read_hold_until: None,
            stall_done: false,
            garbage_done: false,
        }
    }

    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn read_stalled(&self, now: Instant) -> bool {
        self.read_hold_until.is_some_and(|t| now < t)
    }

    fn holding(&self, now: Instant) -> bool {
        self.hold_until.is_some_and(|t| now < t)
    }

    /// This direction is finished: source EOF seen and everything
    /// forwarded.
    fn finished(&self) -> bool {
        self.src_eof && self.pending() == 0
    }

    /// Earliest fault timer pending on this pipe.
    fn next_deadline(&self) -> Option<Instant> {
        match (self.hold_until, self.read_hold_until) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

/// A proxied connection: the client-facing socket, the upstream socket,
/// and one pipe per direction.
struct Pair {
    client: TcpStream,
    upstream: TcpStream,
    c2s: Pipe,
    s2c: Pipe,
    client_interest: Interest,
    upstream_interest: Interest,
}

struct ProxyLoop {
    poller: Poller,
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosProxyConfig,
    pairs: HashMap<u64, Pair>,
    next_pair: u64,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
}

/// What a pump pass decided about the connection.
enum PumpOutcome {
    Keep,
    /// Injected reset or transport error: drop both sockets now.
    Kill,
}

impl ProxyLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            let timeout = self
                .pairs
                .values()
                .filter_map(|p| match (p.c2s.next_deadline(), p.s2c.next_deadline()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                })
                .min()
                .map(|t| t.saturating_duration_since(now));
            if self.poller.wait(&mut events, timeout).is_err() {
                return;
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                if ev.token == LISTENER_TOKEN {
                    self.accept_all();
                } else {
                    let pair_id = ev.token / 2;
                    let client_side = ev.token % 2 == 0;
                    if ev.readable || ev.hangup {
                        self.read_side(pair_id, client_side);
                    }
                    self.service_pair(pair_id);
                }
            }
            events = batch;
            // Expired fault timers: clear holds and resume the affected
            // pairs (cheap scan — the proxy hosts test traffic).
            let now = Instant::now();
            let expired: Vec<u64> = self
                .pairs
                .iter_mut()
                .filter_map(|(&id, p)| {
                    let mut hit = false;
                    for pipe in [&mut p.c2s, &mut p.s2c] {
                        if pipe.hold_until.is_some_and(|t| t <= now) {
                            pipe.hold_until = None;
                            hit = true;
                        }
                        if pipe.read_hold_until.is_some_and(|t| t <= now) {
                            pipe.read_hold_until = None;
                            hit = true;
                        }
                    }
                    hit.then_some(id)
                })
                .collect();
            for id in expired {
                self.service_pair(id);
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((client, _)) => {
                    let Ok(upstream) = TcpStream::connect(self.upstream) else {
                        continue;
                    };
                    if client.set_nonblocking(true).is_err()
                        || upstream.set_nonblocking(true).is_err()
                    {
                        continue;
                    }
                    let _ = client.set_nodelay(true);
                    let _ = upstream.set_nodelay(true);
                    let index = self.next_pair;
                    self.next_pair += 1;
                    let plan = match &self.config.fixed_plan {
                        Some(p) => p.clone(),
                        None => NetChaosPlan::for_connection(
                            self.config.seed,
                            index,
                            self.config.trip_percent,
                        ),
                    };
                    self.stats.connections.fetch_add(1, Ordering::Relaxed);
                    if !plan.is_passthrough() {
                        self.stats
                            .faulted_connections
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let client_token = index * 2;
                    let upstream_token = index * 2 + 1;
                    if self
                        .poller
                        .register(client.as_raw_fd(), client_token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    if self
                        .poller
                        .register(upstream.as_raw_fd(), upstream_token, Interest::READ)
                        .is_err()
                    {
                        let _ = self.poller.deregister(client.as_raw_fd());
                        continue;
                    }
                    self.pairs.insert(
                        index,
                        Pair {
                            client,
                            upstream,
                            c2s: Pipe::new(DirFaults::compile(&plan.client_to_server)),
                            s2c: Pipe::new(DirFaults::compile(&plan.server_to_client)),
                            client_interest: Interest::READ,
                            upstream_interest: Interest::READ,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Read available bytes from one side into its pipe, applying the
    /// stall and garbage faults.
    fn read_side(&mut self, pair_id: u64, client_side: bool) {
        let now = Instant::now();
        let Some(pair) = self.pairs.get_mut(&pair_id) else {
            return;
        };
        let (src, pipe) = if client_side {
            (&mut pair.client, &mut pair.c2s)
        } else {
            (&mut pair.upstream, &mut pair.s2c)
        };
        if pipe.read_stalled(now) || pipe.src_eof || pipe.pending() >= PIPE_CAP {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut taken = 0usize;
        loop {
            if taken >= READ_CHUNK || pipe.pending() >= PIPE_CAP {
                break;
            }
            match src.read(&mut chunk[..]) {
                Ok(0) => {
                    pipe.src_eof = true;
                    break;
                }
                Ok(n) => {
                    pipe.buf.extend_from_slice(&chunk[..n]);
                    pipe.received += n as u64;
                    taken += n;
                    // One-shot garbage splice at the exact stream offset
                    // `after` — mid-frame whenever the offset falls
                    // inside one, which is what makes the fault bite.
                    if let Some((after, len)) = pipe.faults.garbage {
                        if !pipe.garbage_done && pipe.received >= after {
                            pipe.garbage_done = true;
                            let overshoot = (pipe.received - after) as usize;
                            let at = pipe.buf.len().saturating_sub(overshoot).max(pipe.pos);
                            pipe.buf.splice(
                                at..at,
                                (0..len).map(|i| GARBAGE_BYTES[i % GARBAGE_BYTES.len()]),
                            );
                            self.stats.garbage_injected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // One-shot read stall.
                    if let Some((after, stall)) = pipe.faults.stall_read {
                        if !pipe.stall_done && pipe.received >= after {
                            pipe.stall_done = true;
                            pipe.read_hold_until = Some(now + stall);
                            self.stats.stalls_injected.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Treat a read error like an EOF with nothing more
                    // coming; the pair dies once the other side drains.
                    pipe.src_eof = true;
                    pipe.buf.truncate(pipe.buf.len());
                    break;
                }
            }
        }
    }

    /// Pump both directions, propagate half-closes, recompute interest,
    /// and kill the pair on injected resets or transport errors.
    fn service_pair(&mut self, pair_id: u64) {
        let now = Instant::now();
        let outcome = {
            let Some(pair) = self.pairs.get_mut(&pair_id) else {
                return;
            };
            let stats = &self.stats;
            let a = pump(&mut pair.c2s, &mut pair.upstream, now, stats, true);
            let b = pump(&mut pair.s2c, &mut pair.client, now, stats, false);
            match (a, b) {
                (PumpOutcome::Keep, PumpOutcome::Keep) => {
                    // Propagate half-closes once a direction finishes.
                    if pair.c2s.finished() && !pair.c2s.sink_shut {
                        pair.c2s.sink_shut = true;
                        let _ = pair.upstream.shutdown(Shutdown::Write);
                    }
                    if pair.s2c.finished() && !pair.s2c.sink_shut {
                        pair.s2c.sink_shut = true;
                        let _ = pair.client.shutdown(Shutdown::Write);
                    }
                    if pair.c2s.finished() && pair.s2c.finished() {
                        PumpOutcome::Kill
                    } else {
                        PumpOutcome::Keep
                    }
                }
                _ => PumpOutcome::Kill,
            }
        };
        match outcome {
            PumpOutcome::Kill => self.kill_pair(pair_id),
            PumpOutcome::Keep => self.refresh_interest(pair_id),
        }
    }

    fn refresh_interest(&mut self, pair_id: u64) {
        let now = Instant::now();
        let Some(pair) = self.pairs.get_mut(&pair_id) else {
            return;
        };
        let client_want = Interest {
            readable: !pair.c2s.read_stalled(now)
                && !pair.c2s.src_eof
                && pair.c2s.pending() < PIPE_CAP,
            writable: pair.s2c.pending() > 0 && !pair.s2c.holding(now),
        };
        let upstream_want = Interest {
            readable: !pair.s2c.read_stalled(now)
                && !pair.s2c.src_eof
                && pair.s2c.pending() < PIPE_CAP,
            writable: pair.c2s.pending() > 0 && !pair.c2s.holding(now),
        };
        let mut broken = false;
        if client_want != pair.client_interest {
            pair.client_interest = client_want;
            broken |= self
                .poller
                .reregister(pair.client.as_raw_fd(), pair_id * 2, client_want)
                .is_err();
        }
        if upstream_want != pair.upstream_interest {
            pair.upstream_interest = upstream_want;
            broken |= self
                .poller
                .reregister(pair.upstream.as_raw_fd(), pair_id * 2 + 1, upstream_want)
                .is_err();
        }
        if broken {
            self.kill_pair(pair_id);
        }
    }

    fn kill_pair(&mut self, pair_id: u64) {
        if let Some(pair) = self.pairs.remove(&pair_id) {
            let _ = self.poller.deregister(pair.client.as_raw_fd());
            let _ = self.poller.deregister(pair.upstream.as_raw_fd());
        }
    }
}

/// Write as much of the pipe as its faults allow into `sink`.
fn pump(
    pipe: &mut Pipe,
    sink: &mut TcpStream,
    now: Instant,
    stats: &ProxyStats,
    to_server: bool,
) -> PumpOutcome {
    loop {
        if pipe.pending() == 0 {
            break;
        }
        if pipe.holding(now) {
            break;
        }
        let mut chunk = pipe.pending();
        if let Some(max) = pipe.faults.split {
            chunk = chunk.min(max);
        }
        if let Some((_, delay)) = pipe.faults.delay {
            if pipe.forwarded >= pipe.next_delay_mark {
                pipe.hold_until = Some(now + delay);
                pipe.next_delay_mark = pipe.forwarded + pipe.faults.delay.unwrap().0;
                stats.delays_injected.fetch_add(1, Ordering::Relaxed);
                let _ = delay;
                continue;
            }
            chunk = chunk.min((pipe.next_delay_mark - pipe.forwarded) as usize);
        }
        if let Some(reset_at) = pipe.faults.reset_after {
            let left = reset_at.saturating_sub(pipe.forwarded);
            if left == 0 {
                stats.resets_injected.fetch_add(1, Ordering::Relaxed);
                return PumpOutcome::Kill;
            }
            chunk = chunk.min(left as usize);
        }
        match sink.write(&pipe.buf[pipe.pos..pipe.pos + chunk]) {
            Ok(0) => return PumpOutcome::Kill,
            Ok(n) => {
                pipe.pos += n;
                pipe.forwarded += n as u64;
                let counter = if to_server {
                    &stats.bytes_client_to_server
                } else {
                    &stats.bytes_server_to_client
                };
                counter.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return PumpOutcome::Kill,
        }
    }
    if pipe.pos > 0 && pipe.pos == pipe.buf.len() {
        pipe.buf.clear();
        pipe.pos = 0;
    } else if pipe.pos > (64 << 10) {
        pipe.buf.drain(..pipe.pos);
        pipe.pos = 0;
    }
    PumpOutcome::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(
                NetChaosPlan::sample(seed, 30),
                NetChaosPlan::sample(seed, 30)
            );
            assert_eq!(
                NetChaosPlan::for_connection(seed, 7, 30),
                NetChaosPlan::for_connection(seed, 7, 30)
            );
        }
        // Different seeds must not all collapse to the same plan.
        let distinct: std::collections::HashSet<String> = (0..64)
            .map(|s| format!("{:?}", NetChaosPlan::sample(s, 50)))
            .collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn zero_trip_percent_is_always_passthrough() {
        for seed in 0..64 {
            assert!(NetChaosPlan::sample(seed, 0).is_passthrough());
        }
    }

    #[test]
    fn garbage_bytes_never_include_json_whitespace() {
        for b in GARBAGE_BYTES {
            assert!(
                !matches!(b, b' ' | b'\t' | b'\n' | b'\r'),
                "{b:#x} is JSON whitespace: the strict parser would accept it"
            );
            assert!(b < 0x09, "{b:#x} is not a raw control byte");
        }
    }

    /// A passthrough proxy in front of a line-echo server is invisible.
    #[test]
    fn passthrough_proxy_echoes_bit_identically() {
        let echo = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = echo.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = echo.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                stream.write_all(line.as_bytes()).unwrap();
                line.clear();
            }
        });
        let proxy = ChaosProxy::spawn(
            upstream,
            ChaosProxyConfig {
                fixed_plan: Some(NetChaosPlan::passthrough()),
                ..ChaosProxyConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        for i in 0..32 {
            let msg = format!("{{\"seq\":{i},\"payload\":\"abcdefgh\"}}\n");
            client.write_all(msg.as_bytes()).unwrap();
            let mut got = String::new();
            reader.read_line(&mut got).unwrap();
            assert_eq!(got, msg, "round {i}");
        }
        drop(client);
        drop(reader);
        server.join().unwrap();
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.faulted_connections, 0);
        assert_eq!(stats.resets_injected, 0);
        assert!(stats.bytes_client_to_server > 0);
        proxy.stop();
    }

    /// Split writes shred frames but deliver every byte in order.
    #[test]
    fn split_writes_preserve_content() {
        let echo = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = echo.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = echo.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                stream.write_all(line.as_bytes()).unwrap();
                line.clear();
            }
        });
        let plan = NetChaosPlan {
            client_to_server: vec![NetFault::SplitWrites { max_chunk: 1 }],
            server_to_client: vec![NetFault::SplitWrites { max_chunk: 2 }],
        };
        let proxy = ChaosProxy::spawn(
            upstream,
            ChaosProxyConfig {
                fixed_plan: Some(plan),
                ..ChaosProxyConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let msg = "{\"k\":\"0123456789abcdef0123456789abcdef\"}\n";
        client.write_all(msg.as_bytes()).unwrap();
        let mut got = String::new();
        reader.read_line(&mut got).unwrap();
        assert_eq!(got, msg);
        drop(client);
        drop(reader);
        server.join().unwrap();
        proxy.stop();
    }

    /// An injected reset cuts the stream after exactly N bytes.
    #[test]
    fn reset_after_kills_the_connection_mid_stream() {
        let echo = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = echo.local_addr().unwrap();
        std::thread::spawn(move || {
            let Ok((stream, _)) = echo.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                if stream.write_all(line.as_bytes()).is_err() {
                    return;
                }
                line.clear();
            }
        });
        let plan = NetChaosPlan {
            client_to_server: Vec::new(),
            server_to_client: vec![NetFault::ResetAfter { bytes: 10 }],
        };
        let proxy = ChaosProxy::spawn(
            upstream,
            ChaosProxyConfig {
                fixed_plan: Some(plan),
                ..ChaosProxyConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"{\"x\":\"0123456789abcdef\"}\n").unwrap();
        // The response is cut at 10 bytes: we read some prefix, then EOF
        // (or a reset error) — never the full line.
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        assert!(got.len() <= 10, "got {} bytes", got.len());
        assert_eq!(proxy.stats().resets_injected, 1);
        proxy.stop();
    }
}
