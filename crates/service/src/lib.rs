//! `cred-service`: a long-running, multi-client evaluation server for
//! CRED design-space exploration.
//!
//! The library behind `credc serve`. Clients connect over TCP and speak
//! newline-delimited JSON; each `explore` request is one
//! [`ExploreRequest`](cred_explore::ExploreRequest) evaluated against a
//! process-wide shared [`SweepCache`](cred_explore::cache::SweepCache),
//! with identical in-flight requests coalesced onto a single computation
//! ([`coalesce`]). Admission control anchors every request's deadline at
//! arrival and answers overstayed requests with typed budget errors
//! instead of dropped connections ([`server`]). Counters and latency
//! histograms are exported through the `stats` request and the
//! `--metrics-dump` file ([`metrics`]).
//!
//! The network boundary is hardened and testable: connections carry
//! idle/progress deadlines on a timer wheel ([`timer`]) with typed close
//! reasons in the metrics, [`chaosnet`] is a seeded in-process
//! fault-injection TCP proxy (frame splitting, delays, resets, stalls,
//! garbage) mirroring `cred-resilience`'s deterministic `ChaosPlan`
//! seeding, and [`client`] is the resilient caller — connect/read
//! timeouts, capped backoff with jitter, idempotent retry keyed by
//! request id, and a circuit breaker — that `loadgen` and `credc` use.
//!
//! The `loadgen` binary in this crate drives a server with N concurrent
//! clients and records throughput and tail latency against a sequential
//! baseline (`BENCH_serve.json`); its `--chaos` mode drives the full
//! client→proxy→server stack and fails on any silent corruption.

pub mod chaosnet;
pub mod client;
pub mod coalesce;
pub mod json;
pub mod metrics;
pub mod poller;
pub mod server;
pub mod timer;

pub use chaosnet::{ChaosProxy, ChaosProxyConfig, NetChaosPlan, ProxyStatsSnapshot};
pub use client::{ClientConfig, ClientError, ClientStats, ResilientClient};
pub use coalesce::{Coalescer, Role};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{Server, ServiceConfig};
pub use timer::TimerWheel;
