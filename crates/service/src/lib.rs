//! `cred-service`: a long-running, multi-client evaluation server for
//! CRED design-space exploration.
//!
//! The library behind `credc serve`. Clients connect over TCP and speak
//! newline-delimited JSON; each `explore` request is one
//! [`ExploreRequest`](cred_explore::ExploreRequest) evaluated against a
//! process-wide shared [`SweepCache`](cred_explore::cache::SweepCache),
//! with identical in-flight requests coalesced onto a single computation
//! ([`coalesce`]). Admission control anchors every request's deadline at
//! arrival and answers overstayed requests with typed budget errors
//! instead of dropped connections ([`server`]). Counters and latency
//! histograms are exported through the `stats` request and the
//! `--metrics-dump` file ([`metrics`]).
//!
//! The `loadgen` binary in this crate drives a server with N concurrent
//! clients and records throughput and tail latency against a sequential
//! baseline (`BENCH_serve.json`).

pub mod coalesce;
pub mod json;
pub mod metrics;
pub mod poller;
pub mod server;

pub use coalesce::{Coalescer, Role};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{Server, ServiceConfig};
