//! Service observability: lock-free counters and a latency histogram.
//!
//! Every counter is a relaxed [`AtomicU64`] — the hot path pays one
//! uncontended atomic add per event. Latencies go into a log2-bucketed
//! microsecond histogram (64 buckets cover 1 µs to ~584 000 years), from
//! which percentiles are estimated as the upper bound of the bucket
//! containing the rank — a ≤2x overestimate, stable and monotone, which
//! is what a load test needs from p99.
//!
//! A [`MetricsSnapshot`] freezes all counters at once and renders the
//! `stats` response body (and the `--metrics-dump` file).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cred_explore::CacheStats;

const BUCKETS: usize = 64;

/// Log2-bucketed latency histogram over microseconds.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn bucket_of(micros: u64) -> usize {
        // Bucket b holds values with highest set bit b: [2^b, 2^(b+1)).
        // 0 µs lands in bucket 0 alongside 1 µs.
        (63 - micros.max(1).leading_zeros()) as usize
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// Percentile estimate over a frozen bucket array: the upper bound (in
/// µs) of the bucket holding the `p`-th observation.
pub fn percentile_micros(buckets: &[u64; BUCKETS], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the observation we want, 1-based, clamped into range.
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return if b + 1 >= 64 {
                u64::MAX
            } else {
                (1u64 << (b + 1)) - 1
            };
        }
    }
    u64::MAX
}

/// The service's counters. One instance per server, shared by all
/// workers.
#[derive(Default)]
pub struct Metrics {
    /// Request lines received (any type, well-formed or not).
    pub requests: AtomicU64,
    /// Responses with `"ok": true`.
    pub ok: AtomicU64,
    /// Responses with `"ok": false`.
    pub errors: AtomicU64,
    /// Explore computations actually executed (coalesce leaders).
    pub explore_computes: AtomicU64,
    /// Explore requests served by joining another request's flight.
    pub coalesced_joins: AtomicU64,
    /// Joins that could not share the leader's budget-shaped outcome and
    /// recomputed under their own limits (also counted in
    /// `explore_computes`).
    pub coalesce_recomputes: AtomicU64,
    /// Degraded points across all responses.
    pub degraded_points: AtomicU64,
    /// Failed points across all responses.
    pub failed_points: AtomicU64,
    /// Requests rejected or cut off with a budget-exhausted error.
    pub budget_exhaustions: AtomicU64,
    /// Explore requests shed at admission (typed `overloaded` response)
    /// because the in-flight bound was reached.
    pub shed_requests: AtomicU64,
    /// Connections accepted by the listener (and successfully registered
    /// with the poller). Every accepted connection ends in exactly one of
    /// the close-reason counters below, so after a clean shutdown
    /// `conns_accepted == closed_ok + idle_closed + slow_closed +
    /// reset_by_peer + drained`.
    pub conns_accepted: AtomicU64,
    /// Connections that ran to normal completion (client finished and the
    /// last response flushed).
    pub closed_ok: AtomicU64,
    /// Connections closed by the idle timeout: no pending work, no bytes,
    /// just silence past the deadline.
    pub idle_closed: AtomicU64,
    /// Connections closed by the progress deadline: a request line that
    /// never finished arriving (slowloris), a reader that stopped
    /// draining its responses past the backpressure pause, or a write
    /// buffer that hit the hard cap.
    pub slow_closed: AtomicU64,
    /// Connections that died on a transport error (ECONNRESET / EPIPE /
    /// read failure) — including half-open peers detected when a write
    /// finally failed after their EOF.
    pub reset_by_peer: AtomicU64,
    /// Connections closed by the shutdown drain after their in-flight
    /// responses were flushed (or the drain deadline expired).
    pub drained: AtomicU64,
    /// Latency of explore requests, arrival to response rendered.
    pub explore_latency: Histogram,
}

impl Metrics {
    /// Bump `counter` by one (relaxed; counters are statistically read).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze every counter, pairing it with the shared cache's stats and
    /// the coalescer's poison-recovery count (which lives on the
    /// coalescer itself, next to the lock it guards).
    pub fn snapshot(&self, cache: CacheStats, coalesce_poison_recoveries: u64) -> MetricsSnapshot {
        let latency = self.explore_latency.snapshot();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            explore_computes: self.explore_computes.load(Ordering::Relaxed),
            coalesced_joins: self.coalesced_joins.load(Ordering::Relaxed),
            coalesce_recomputes: self.coalesce_recomputes.load(Ordering::Relaxed),
            coalesce_poison_recoveries,
            degraded_points: self.degraded_points.load(Ordering::Relaxed),
            failed_points: self.failed_points.load(Ordering::Relaxed),
            budget_exhaustions: self.budget_exhaustions.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            closed_ok: self.closed_ok.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            slow_closed: self.slow_closed.load(Ordering::Relaxed),
            reset_by_peer: self.reset_by_peer.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            p50_micros: percentile_micros(&latency, 50.0),
            p99_micros: percentile_micros(&latency, 99.0),
            cache,
        }
    }
}

/// All counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::ok`].
    pub ok: u64,
    /// See [`Metrics::errors`].
    pub errors: u64,
    /// See [`Metrics::explore_computes`].
    pub explore_computes: u64,
    /// See [`Metrics::coalesced_joins`].
    pub coalesced_joins: u64,
    /// See [`Metrics::coalesce_recomputes`].
    pub coalesce_recomputes: u64,
    /// Poisoned coalescer locks recovered
    /// ([`crate::Coalescer::poison_recoveries`]).
    pub coalesce_poison_recoveries: u64,
    /// See [`Metrics::degraded_points`].
    pub degraded_points: u64,
    /// See [`Metrics::failed_points`].
    pub failed_points: u64,
    /// See [`Metrics::budget_exhaustions`].
    pub budget_exhaustions: u64,
    /// See [`Metrics::shed_requests`].
    pub shed_requests: u64,
    /// See [`Metrics::conns_accepted`].
    pub conns_accepted: u64,
    /// See [`Metrics::closed_ok`].
    pub closed_ok: u64,
    /// See [`Metrics::idle_closed`].
    pub idle_closed: u64,
    /// See [`Metrics::slow_closed`].
    pub slow_closed: u64,
    /// See [`Metrics::reset_by_peer`].
    pub reset_by_peer: u64,
    /// See [`Metrics::drained`].
    pub drained: u64,
    /// Estimated median explore latency (µs, bucket upper bound).
    pub p50_micros: u64,
    /// Estimated 99th-percentile explore latency (µs).
    pub p99_micros: u64,
    /// Shared sweep-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Render as a compact JSON object (the body of a `stats` response).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"errors\":{},\"explore_computes\":{},\
             \"coalesced_joins\":{},\"coalesce_recomputes\":{},\
             \"coalesce_poison_recoveries\":{},\"degraded_points\":{},\
             \"failed_points\":{},\
             \"budget_exhaustions\":{},\"shed_requests\":{},\
             \"conns\":{{\"accepted\":{},\"closed_ok\":{},\"idle_closed\":{},\
             \"slow_closed\":{},\"reset_by_peer\":{},\"drained\":{}}},\
             \"explore_latency\":{{\"p50_us\":{},\"p99_us\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poison_recoveries\":{}}}}}",
            self.requests,
            self.ok,
            self.errors,
            self.explore_computes,
            self.coalesced_joins,
            self.coalesce_recomputes,
            self.coalesce_poison_recoveries,
            self.degraded_points,
            self.failed_points,
            self.budget_exhaustions,
            self.shed_requests,
            self.conns_accepted,
            self.closed_ok,
            self.idle_closed,
            self.slow_closed,
            self.reset_by_peer,
            self.drained,
            self.p50_micros,
            self.p99_micros,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.poison_recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_by_microsecond() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let h = Histogram::default();
        // 99 fast observations (~100 µs) and one slow outlier (~1 s).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(1));
        let snap = h.snapshot();
        let p50 = percentile_micros(&snap, 50.0);
        let p99 = percentile_micros(&snap, 99.0);
        let p100 = percentile_micros(&snap, 100.0);
        assert!((100..=255).contains(&p50), "p50 = {p50}");
        assert!((100..=255).contains(&p99), "p99 = {p99}, rank 99 of 100");
        assert!(p100 >= 1_000_000, "p100 must see the outlier, got {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(percentile_micros(&h.snapshot(), 99.0), 0);
    }

    #[test]
    fn snapshot_renders_parseable_json() {
        let m = Metrics::default();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.ok);
        m.explore_latency.record(Duration::from_micros(250));
        Metrics::bump(&m.shed_requests);
        let snap = m.snapshot(CacheStats::default(), 3);
        let j = snap.to_json();
        let v = crate::json::parse(&j).expect("stats JSON parses");
        assert_eq!(v.get("requests").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("ok").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("shed_requests").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            v.get("coalesce_poison_recoveries").and_then(|x| x.as_u64()),
            Some(3)
        );
        assert!(v.get("explore_latency").is_some());
        assert!(v.get("cache").is_some());
    }

    #[test]
    fn close_reasons_render_under_the_conns_object() {
        let m = Metrics::default();
        Metrics::bump(&m.conns_accepted);
        Metrics::bump(&m.conns_accepted);
        Metrics::bump(&m.closed_ok);
        Metrics::bump(&m.idle_closed);
        Metrics::bump(&m.slow_closed);
        Metrics::bump(&m.reset_by_peer);
        Metrics::bump(&m.drained);
        let j = m.snapshot(CacheStats::default(), 0).to_json();
        let v = crate::json::parse(&j).expect("stats JSON parses");
        let conns = v.get("conns").expect("conns object");
        for key in [
            "closed_ok",
            "idle_closed",
            "slow_closed",
            "reset_by_peer",
            "drained",
        ] {
            assert_eq!(conns.get(key).and_then(|x| x.as_u64()), Some(1), "{key}");
        }
        assert_eq!(conns.get("accepted").and_then(|x| x.as_u64()), Some(2));
    }
}
