//! A minimal JSON reader/writer for the service wire protocol.
//!
//! The workspace builds hermetically — no serde — so the NDJSON protocol
//! is parsed by this hand-rolled recursive-descent reader. It accepts
//! strict JSON (RFC 8259) with a depth cap so a hostile request line
//! cannot overflow the worker's stack.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Requests are flat
/// objects; anything deeper than this is an attack or a bug.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys keep their input order; duplicate
/// keys are all retained and [`Json::get`] returns the last one, which
/// matches what most writers and readers converge on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in input order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (last duplicate wins); `None` for
    /// missing keys and for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render this value back to compact JSON. Used for echoing request
    /// ids verbatim into responses.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                // f64 Display round-trips. `parse` never yields a
                // non-finite Float, but a hand-constructed one is not
                // representable in JSON, so render it as null.
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Encode `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse one complete JSON value from `input`. Trailing non-whitespace is
/// an error — a protocol line carries exactly one value.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("sliced on ascii boundaries");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            // A literal that overflows f64 (1e999) parses to infinity;
            // non-finite values are not JSON and would degrade to `null`
            // on the way back out, so reject them here (RFC 8259).
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            Ok(_) => Err(format!("number {text:?} overflows at byte {start}")),
            Err(_) => Err(format!("bad number {text:?} at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("bad low surrogate".to_string());
                                    }
                                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| "bad surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "lone low surrogate".to_string())?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                0x00..=0x1f => return Err("raw control byte in string".to_string()),
                _ => {
                    // Consume one UTF-8 scalar. The input came from &str,
                    // so boundaries are guaranteed valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_shaped_object() {
        let v = parse(
            r#"{"type":"explore","kernel":"figure3","max_f":3,"n":31,"strict":false,"id":7}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("explore"));
        assert_eq!(v.get("max_f").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("strict").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id"), Some(&Json::Int(7)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let v = parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA\u{1f600}"));
        let re = parse(&v.to_compact()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::Int(-3).as_u64(), None, "negatives are not u64");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "1e999",
            "-1e999",
            "{\"id\":1e999}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(2)));
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
    }
}
