//! Request coalescing (singleflight): identical in-flight computations
//! share one execution.
//!
//! When several clients ask for the same exploration concurrently, only
//! the first (the *leader*) computes; the rest (*joiners*) block on the
//! flight and receive a clone of the leader's result. The flight is
//! removed on completion, so coalescing only deduplicates *overlapping*
//! work — cross-request memoization is the [`SweepCache`]'s job, one
//! layer down.
//!
//! The flight table is **sharded by key hash**: each shard is its own
//! `Mutex<HashMap>`, so a thousand concurrent requests for *different*
//! keys no longer serialize on one map lock just to discover they have
//! nothing to coalesce with. Only key-equal requests ever meet on a lock.
//!
//! Panic safety: if the leader's closure panics, a drop guard marks the
//! flight abandoned and wakes the joiners, which then retry — the first
//! to arrive becomes the new leader. Joiners never inherit a poisoned
//! result or hang on a dead flight. A panic that poisons a shard lock
//! itself is recovered (the lock is taken anyway) and counted in
//! [`Coalescer::poison_recoveries`], mirroring the cache's accounting,
//! instead of being swallowed silently.
//!
//! [`SweepCache`]: cred_explore::cache::SweepCache

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent flight-table shards (power of two).
const FLIGHT_SHARDS: usize = 16;

enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; every joiner takes a clone.
    Done(V),
    /// The leader panicked before finishing. Joiners retry.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// How [`Coalescer::run`] obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This call ran the computation.
    Led,
    /// This call joined another caller's in-flight computation.
    Joined,
}

/// One shard of the flight table: the keys currently being computed.
type FlightTable<K, V> = HashMap<K, Arc<Flight<V>>>;

/// A sharded singleflight table: at most one in-flight computation per
/// key, at most one lock touched per call.
pub struct Coalescer<K, V> {
    shards: Box<[Mutex<FlightTable<K, V>>]>,
    hasher: RandomState,
    poison_recoveries: AtomicU64,
}

impl<K, V> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer {
            shards: (0..FLIGHT_SHARDS).map(|_| Mutex::default()).collect(),
            hasher: RandomState::new(),
            poison_recoveries: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    /// A fresh table with no flights.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard owning `key`.
    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<Flight<V>>>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Lock `m`, recovering from poisoning. A panic under a flight-table
    /// lock (the map operations are tiny, but chaos plans and OOM aborts
    /// exist) must not brick every later request sharing the shard; the
    /// recovery is counted, never silent.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|p| {
            m.clear_poison();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            p.into_inner()
        })
    }

    /// Compute-or-join: if no flight for `key` is pending, run `compute`
    /// as the leader and hand its value to every concurrent caller with
    /// the same key; otherwise block until the leader finishes and return
    /// a clone of its value.
    ///
    /// If a leader panics, its joiners retry (one becomes the new
    /// leader), and the panic propagates on the leader's own thread.
    pub fn run<F: FnOnce() -> V>(&self, key: K, compute: F) -> (V, Role) {
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut flights = self.lock(self.shard(&key));
                if let Some(existing) = flights.get(&key) {
                    Arc::clone(existing)
                } else {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        done: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&flight));
                    drop(flights);
                    // Leader path. The guard publishes Abandoned if
                    // `compute` unwinds, so joiners never hang.
                    let guard = AbandonGuard {
                        coalescer: self,
                        key: &key,
                        flight: &flight,
                        completed: false,
                    };
                    let value = (compute.take().expect("leader runs once"))();
                    guard.complete(value.clone());
                    return (value, Role::Led);
                }
            };
            // Joiner path: wait out the flight.
            let mut state = self.lock(&flight.state);
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.done.wait(state).unwrap_or_else(|p| p.into_inner());
                    }
                    FlightState::Done(v) => return (v.clone(), Role::Joined),
                    FlightState::Abandoned => break,
                }
            }
            // The leader died; loop around and race to become the new
            // leader (our `compute` is still unconsumed).
        }
    }

    /// Number of flights currently pending, across all shards (test
    /// observability).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Times a poisoned shard (or flight-state) lock was recovered.
    /// Surfaced as `coalesce_poison_recoveries` in the service metrics.
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Test hook: poison the shard lock owning `key` by panicking a
    /// throwaway thread while it holds the lock. Not part of the stable
    /// API.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, key: &K)
    where
        K: Send + Sync,
        V: Send + Sync,
    {
        let shard = self.shard(key);
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = shard.lock().expect("not yet poisoned");
                panic!("deliberate poison");
            });
            assert!(handle.join().is_err(), "the poisoner must panic");
        });
    }
}

/// Marks the flight abandoned (and wakes joiners) unless the leader
/// completed it first. Runs on unwind, which is the whole point.
struct AbandonGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    coalescer: &'a Coalescer<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    completed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> AbandonGuard<'_, K, V> {
    fn complete(mut self, value: V) {
        self.publish(FlightState::Done(value));
        self.completed = true;
    }

    fn publish(&self, state: FlightState<V>) {
        // Remove the flight first so late arrivals start fresh instead of
        // joining a finished (or dead) flight.
        let c = self.coalescer;
        c.lock(c.shard(self.key)).remove(self.key);
        *c.lock(&self.flight.state) = state;
        self.flight.done.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            self.publish(FlightState::Abandoned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn solo_caller_leads() {
        let c = Coalescer::new();
        let (v, role) = c.run(1, || 42);
        assert_eq!((v, role), (42, Role::Led));
        assert_eq!(c.in_flight(), 0, "flight removed on completion");
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, computes, start) = (c.clone(), computes.clone(), start.clone());
                std::thread::spawn(move || {
                    start.wait();
                    c.run("k", move || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to join it.
                        std::thread::sleep(Duration::from_millis(100));
                        7
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 7));
        let leaders = results.iter().filter(|(_, r)| *r == Role::Led).count();
        assert_eq!(leaders, 1, "exactly one leader");
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "one compute for 8 calls"
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (c, computes) = (c.clone(), computes.clone());
                std::thread::spawn(move || {
                    c.run(i, move || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn many_distinct_keys_spread_over_shards() {
        // 256 keys must touch more than one shard (with 16 shards the
        // chance of a uniform hash packing them into one is ~16^-255),
        // and every flight must still complete and clean up after itself.
        let c = Coalescer::new();
        for i in 0..256u64 {
            let (v, role) = c.run(i, || i * 3);
            assert_eq!((v, role), (i * 3, Role::Led));
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn sequential_calls_recompute() {
        // Coalescing is for overlap only; completed flights vanish.
        let c = Coalescer::new();
        let mut count = 0;
        for _ in 0..3 {
            let (_, role) = c.run(0, || {
                count += 1;
                count
            });
            assert_eq!(role, Role::Led);
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn panicking_leader_hands_off_to_a_joiner() {
        let c = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let doomed = {
            let (c, barrier) = (c.clone(), barrier.clone());
            std::thread::spawn(move || {
                c.run("k", || {
                    barrier.wait();
                    // Give the joiner time to register on the flight.
                    std::thread::sleep(Duration::from_millis(100));
                    panic!("leader dies");
                    #[allow(unreachable_code)]
                    0
                })
            })
        };
        let survivor = {
            let (c, barrier) = (c.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                // Join while the leader is sleeping toward its panic.
                std::thread::sleep(Duration::from_millis(20));
                c.run("k", || 99)
            })
        };
        assert!(doomed.join().is_err(), "leader's panic propagates");
        let (v, _) = survivor.join().unwrap();
        assert_eq!(v, 99, "joiner retried as the new leader");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn poisoned_shard_lock_is_recovered_and_counted() {
        let c: Coalescer<u32, u32> = Coalescer::new();
        assert_eq!(c.poison_recoveries(), 0);
        c.poison_shard_for_test(&7);
        // The next call through the poisoned shard recovers the lock,
        // counts it, and works normally — no panic, no hang, no silent
        // swallow.
        let (v, role) = c.run(7, || 70);
        assert_eq!((v, role), (70, Role::Led));
        assert!(
            c.poison_recoveries() >= 1,
            "recovery must be recorded, got {}",
            c.poison_recoveries()
        );
        // The shard keeps serving afterwards.
        let (v, _) = c.run(7, || 71);
        assert_eq!(v, 71);
        assert_eq!(c.in_flight(), 0);
    }
}
