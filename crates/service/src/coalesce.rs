//! Request coalescing (singleflight): identical in-flight computations
//! share one execution.
//!
//! When several clients ask for the same exploration concurrently, only
//! the first (the *leader*) computes; the rest (*joiners*) block on the
//! flight and receive a clone of the leader's result. The flight is
//! removed on completion, so coalescing only deduplicates *overlapping*
//! work — cross-request memoization is the [`SweepCache`]'s job, one
//! layer down.
//!
//! Panic safety: if the leader's closure panics, a drop guard marks the
//! flight abandoned and wakes the joiners, which then retry — the first
//! to arrive becomes the new leader. Joiners never inherit a poisoned
//! result or hang on a dead flight.
//!
//! [`SweepCache`]: cred_explore::cache::SweepCache

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; every joiner takes a clone.
    Done(V),
    /// The leader panicked before finishing. Joiners retry.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// How [`Coalescer::run`] obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This call ran the computation.
    Led,
    /// This call joined another caller's in-flight computation.
    Joined,
}

/// A singleflight table: at most one in-flight computation per key.
pub struct Coalescer<K, V> {
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K, V> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    /// A fresh table with no flights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute-or-join: if no flight for `key` is pending, run `compute`
    /// as the leader and hand its value to every concurrent caller with
    /// the same key; otherwise block until the leader finishes and return
    /// a clone of its value.
    ///
    /// If a leader panics, its joiners retry (one becomes the new
    /// leader), and the panic propagates on the leader's own thread.
    pub fn run<F: FnOnce() -> V>(&self, key: K, compute: F) -> (V, Role) {
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut flights = lock_ignoring_poison(&self.flights);
                if let Some(existing) = flights.get(&key) {
                    Arc::clone(existing)
                } else {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        done: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&flight));
                    drop(flights);
                    // Leader path. The guard publishes Abandoned if
                    // `compute` unwinds, so joiners never hang.
                    let guard = AbandonGuard {
                        coalescer: self,
                        key: &key,
                        flight: &flight,
                        completed: false,
                    };
                    let value = (compute.take().expect("leader runs once"))();
                    guard.complete(value.clone());
                    return (value, Role::Led);
                }
            };
            // Joiner path: wait out the flight.
            let mut state = lock_ignoring_poison(&flight.state);
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.done.wait(state).unwrap_or_else(|p| p.into_inner());
                    }
                    FlightState::Done(v) => return (v.clone(), Role::Joined),
                    FlightState::Abandoned => break,
                }
            }
            // The leader died; loop around and race to become the new
            // leader (our `compute` is still unconsumed).
        }
    }

    /// Number of flights currently pending (test observability).
    pub fn in_flight(&self) -> usize {
        lock_ignoring_poison(&self.flights).len()
    }
}

/// Marks the flight abandoned (and wakes joiners) unless the leader
/// completed it first. Runs on unwind, which is the whole point.
struct AbandonGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    coalescer: &'a Coalescer<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    completed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> AbandonGuard<'_, K, V> {
    fn complete(mut self, value: V) {
        self.publish(FlightState::Done(value));
        self.completed = true;
    }

    fn publish(&self, state: FlightState<V>) {
        // Remove the flight first so late arrivals start fresh instead of
        // joining a finished (or dead) flight.
        lock_ignoring_poison(&self.coalescer.flights).remove(self.key);
        *lock_ignoring_poison(&self.flight.state) = state;
        self.flight.done.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            self.publish(FlightState::Abandoned);
        }
    }
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn solo_caller_leads() {
        let c = Coalescer::new();
        let (v, role) = c.run(1, || 42);
        assert_eq!((v, role), (42, Role::Led));
        assert_eq!(c.in_flight(), 0, "flight removed on completion");
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, computes, start) = (c.clone(), computes.clone(), start.clone());
                std::thread::spawn(move || {
                    start.wait();
                    c.run("k", move || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to join it.
                        std::thread::sleep(Duration::from_millis(100));
                        7
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 7));
        let leaders = results.iter().filter(|(_, r)| *r == Role::Led).count();
        assert_eq!(leaders, 1, "exactly one leader");
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "one compute for 8 calls"
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (c, computes) = (c.clone(), computes.clone());
                std::thread::spawn(move || {
                    c.run(i, move || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sequential_calls_recompute() {
        // Coalescing is for overlap only; completed flights vanish.
        let c = Coalescer::new();
        let mut count = 0;
        for _ in 0..3 {
            let (_, role) = c.run(0, || {
                count += 1;
                count
            });
            assert_eq!(role, Role::Led);
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn panicking_leader_hands_off_to_a_joiner() {
        let c = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let doomed = {
            let (c, barrier) = (c.clone(), barrier.clone());
            std::thread::spawn(move || {
                c.run("k", || {
                    barrier.wait();
                    // Give the joiner time to register on the flight.
                    std::thread::sleep(Duration::from_millis(100));
                    panic!("leader dies");
                    #[allow(unreachable_code)]
                    0
                })
            })
        };
        let survivor = {
            let (c, barrier) = (c.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                // Join while the leader is sleeping toward its panic.
                std::thread::sleep(Duration::from_millis(20));
                c.run("k", || 99)
            })
        };
        assert!(doomed.join().is_err(), "leader's panic propagates");
        let (v, _) = survivor.join().unwrap();
        assert_eq!(v, 99, "joiner retried as the new leader");
        assert_eq!(c.in_flight(), 0);
    }
}
