//! A hashed timer wheel for connection-lifecycle deadlines.
//!
//! The event loop never sleeps blindly: [`TimerWheel::next_timeout`]
//! yields the gap to the earliest pending deadline, which the loop hands
//! to [`crate::poller::Poller::wait`] as its timeout — timers and socket
//! readiness share one blocking point, so an idle server still wakes
//! exactly when the next idle/progress deadline falls due.
//!
//! Entries are *hints*, not truth: the wheel stores `(token, deadline)`
//! pairs and [`expire`](TimerWheel::expire) hands back every token whose
//! hinted deadline has passed. The owner rechecks the connection's real
//! deadline (which may have moved later with activity) and re-arms if it
//! has. This lazy-cancellation scheme means rescheduling a timer is an
//! O(1) insert and cancelling one is free — the stale hint fires once,
//! gets rechecked, and disappears. A connection therefore never closes on
//! a stale hint, only on a recheck against its live state.
//!
//! The wheel hashes deadlines into coarse slots (64 slots of 64 ms
//! ≈ 4 s per revolution); deadlines further out than one revolution sit
//! in an overflow list that is swept into slots as the cursor advances.
//! Timeouts this wheel reports are rounded *up* to the slot edge, so a
//! deadline is never reported early, only up to one slot late — fine for
//! lifecycle timeouts measured in hundreds of milliseconds.

use std::time::{Duration, Instant};

/// Slot width. Lifecycle deadlines are coarse (100 ms and up), so 64 ms
/// of firing slack is invisible while keeping the wheel small.
const SLOT_MS: u64 = 64;

/// Slots per revolution (4.1 s); anything later overflows.
const SLOTS: usize = 64;

/// One pending deadline hint.
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    deadline: Instant,
}

/// The wheel. Owned by one event loop; not thread-safe by design.
#[derive(Debug)]
pub struct TimerWheel {
    /// Wheel origin: tick 0 starts here.
    base: Instant,
    /// First tick not yet swept by [`expire`](Self::expire).
    cursor: u64,
    slots: Vec<Vec<Entry>>,
    /// Entries more than one revolution out.
    overflow: Vec<Entry>,
    /// Pending entry count (slots + overflow).
    len: usize,
}

impl TimerWheel {
    pub fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            base: now,
            cursor: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let ms = t.saturating_duration_since(self.base).as_millis() as u64;
        ms / SLOT_MS
    }

    /// Number of pending entries (stale hints included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm a deadline hint for `token`. Duplicates are fine — every fired
    /// hint is rechecked by the owner.
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let entry = Entry { token, deadline };
        if tick >= self.cursor + SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            self.slots[(tick % SLOTS as u64) as usize].push(entry);
        }
        self.len += 1;
    }

    /// How long `wait` may block before the earliest hint falls due:
    /// `None` when no timers are pending, `Some(ZERO)` when one is
    /// already overdue. Rounded up to a slot edge — never early.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let now_tick = self.tick_of(now);
        // Scan one revolution of slots from the cursor.
        let from = self.cursor;
        for tick in from..from + SLOTS as u64 {
            if self.slots[(tick % SLOTS as u64) as usize].is_empty() {
                continue;
            }
            if tick <= now_tick {
                return Some(Duration::ZERO);
            }
            // Sleep to the end of that slot so the entries inside it are
            // guaranteed due when we wake.
            let edge_ms = (tick + 1) * SLOT_MS;
            let now_ms = now.saturating_duration_since(self.base).as_millis() as u64;
            return Some(Duration::from_millis(edge_ms - now_ms));
        }
        // Only overflow entries remain: wake a revolution out; the sweep
        // in `expire` will cascade them into slots.
        Some(Duration::from_millis(SLOTS as u64 * SLOT_MS / 2))
    }

    /// Advance to `now`, collecting every token whose hinted deadline has
    /// passed. The caller must recheck each token's real deadline.
    pub fn expire(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        if self.len == 0 {
            self.cursor = self.tick_of(now);
            return due;
        }
        let now_tick = self.tick_of(now);
        while self.cursor <= now_tick {
            let slot = (self.cursor % SLOTS as u64) as usize;
            // Entries in this slot are due unless they belong to a later
            // revolution (wrapped): keep those.
            let mut keep = Vec::new();
            for e in self.slots[slot].drain(..) {
                if e.deadline <= now {
                    due.push(e.token);
                    self.len -= 1;
                } else {
                    keep.push(e);
                }
            }
            self.slots[slot] = keep;
            self.cursor += 1;
            // Sweep overflow entries that now fit the next revolution.
            if self.cursor.is_multiple_of(SLOTS as u64) {
                let horizon = self.cursor + SLOTS as u64;
                let pending = std::mem::take(&mut self.overflow);
                for e in pending {
                    let tick = self.tick_of(e.deadline).max(self.cursor);
                    if tick < horizon {
                        self.slots[(tick % SLOTS as u64) as usize].push(e);
                    } else {
                        self.overflow.push(e);
                    }
                }
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_entries_fire_and_future_ones_wait() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.insert(1, t0 + Duration::from_millis(10));
        w.insert(2, t0 + Duration::from_millis(900));
        assert_eq!(w.len(), 2);
        // 10 ms in: only token 1 is due.
        let fired = w.expire(t0 + Duration::from_millis(200));
        assert_eq!(fired, vec![1]);
        assert_eq!(w.len(), 1);
        // Token 2 still waits, and the reported timeout reaches past it
        // but never beyond a slot of slack.
        let gap = w.next_timeout(t0 + Duration::from_millis(200)).unwrap();
        assert!(gap >= Duration::from_millis(700 - SLOT_MS), "{gap:?}");
        assert!(gap <= Duration::from_millis(700 + 2 * SLOT_MS), "{gap:?}");
        let fired = w.expire(t0 + Duration::from_millis(1500));
        assert_eq!(fired, vec![2]);
        assert!(w.is_empty());
        assert_eq!(w.next_timeout(t0 + Duration::from_millis(1500)), None);
    }

    #[test]
    fn overdue_hints_report_a_zero_timeout() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.insert(7, t0 + Duration::from_millis(1));
        let gap = w.next_timeout(t0 + Duration::from_millis(500)).unwrap();
        assert_eq!(gap, Duration::ZERO);
    }

    #[test]
    fn entries_beyond_one_revolution_cascade_from_overflow() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        let far = Duration::from_millis(3 * SLOTS as u64 * SLOT_MS);
        w.insert(9, t0 + far);
        // Well before the deadline nothing fires, however often we sweep.
        let mut probe = t0;
        for _ in 0..10 {
            probe += far / 12;
            assert!(w.expire(probe).is_empty(), "fired early at {probe:?}");
            assert!(w.next_timeout(probe).is_some());
        }
        let fired = w.expire(t0 + far + Duration::from_millis(2 * SLOT_MS));
        assert_eq!(fired, vec![9]);
        assert!(w.is_empty());
    }

    #[test]
    fn duplicate_hints_for_one_token_all_fire() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        w.insert(3, t0 + Duration::from_millis(10));
        w.insert(3, t0 + Duration::from_millis(20));
        let fired = w.expire(t0 + Duration::from_millis(300));
        assert_eq!(fired, vec![3, 3]);
    }

    #[test]
    fn same_slot_entries_with_mixed_deadlines_split_correctly() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0);
        // Two entries hash to the same slot index, one revolution apart.
        let near = Duration::from_millis(SLOT_MS * 2);
        let wrapped = near + Duration::from_millis(SLOTS as u64 * SLOT_MS);
        w.insert(1, t0 + near);
        w.insert(2, t0 + wrapped);
        let fired = w.expire(t0 + near + Duration::from_millis(SLOT_MS));
        assert_eq!(fired, vec![1], "the wrapped entry must not fire early");
        let fired = w.expire(t0 + wrapped + Duration::from_millis(SLOT_MS));
        assert_eq!(fired, vec![2]);
    }
}
