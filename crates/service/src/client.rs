//! A resilient caller for the evaluation service.
//!
//! The server speaks NDJSON over TCP and its `explore`/`stats` requests
//! are idempotent: the same request line always produces the same
//! response (PR 2's canonical-key cache makes repeats cheap). That makes
//! aggressive retrying safe, and this module packages the full policy so
//! `loadgen` and `credc` callers share one hardened path instead of each
//! hand-rolling `TcpStream` loops:
//!
//! * **connect and read timeouts** — a stalled server or a chaosnet
//!   stall fault turns into a typed attempt failure, never a hang;
//! * **capped exponential backoff with deterministic jitter** — seeded
//!   splitmix64, so a failing run reproduces byte-for-byte;
//! * **idempotent retry keyed by request id** — every attempt resends
//!   the *same* line on a *fresh* connection and the response must echo
//!   the request's `id`, so a retry can never be satisfied by a stale
//!   response from a half-dead stream;
//! * **a circuit breaker** — after `breaker_threshold` consecutive
//!   transport failures the client stops hammering the server for
//!   `breaker_cooldown`, then lets a single half-open probe through.
//!
//! The client validates every response with the strict [`crate::json`]
//! parser before handing it to the caller. Combined with chaosnet's
//! control-byte garbage injection this closes the corruption loop: a
//! corrupted frame fails parsing, fails the attempt, and is retried —
//! it is never silently delivered.
//!
//! Application-level errors other than `overloaded` (unknown kernel,
//! budget exceeded, …) are deterministic, so they are returned to the
//! caller as successful deliveries rather than retried.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::{self, Json};

/// Retry and timeout policy for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-attempt response read timeout.
    pub read_timeout: Duration,
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Consecutive transport failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks attempts before the half-open
    /// probe.
    pub breaker_cooldown: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            max_attempts: 24,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Why a request could not be delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The request line itself is not valid JSON — retrying cannot help
    /// and nothing was sent.
    BadRequest(String),
    /// Every attempt failed; `last` describes the final failure.
    Exhausted { attempts: u32, last: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadRequest(e) => write!(f, "bad request line: {e}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters a client accumulates across requests (read after a run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Attempts made (successful ones included).
    pub attempts: u64,
    /// Attempts that failed and were retried.
    pub retries: u64,
    /// Fresh connections established.
    pub reconnects: u64,
    /// Responses rejected by the strict parser or an id mismatch.
    pub corrupt_responses: u64,
    /// Typed `overloaded` sheds that were retried.
    pub overloaded_retries: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
}

/// Circuit-breaker state: count consecutive transport failures, open for
/// a cooldown once they cross the threshold, then let one probe through.
#[derive(Debug, Default)]
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// A retrying NDJSON client for one server address. Not thread-safe —
/// give each client thread its own instance (they are cheap: one socket
/// and a few counters).
pub struct ResilientClient {
    addr: String,
    config: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    breaker: Breaker,
    jitter_state: u64,
    stats: ClientStats,
}

impl ResilientClient {
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> ResilientClient {
        let jitter_state = config.jitter_seed;
        ResilientClient {
            addr: addr.into(),
            config,
            conn: None,
            breaker: Breaker::default(),
            jitter_state,
            stats: ClientStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Drop the current connection; the next request reconnects. Chaos
    /// runs use this for connection-per-request traffic.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Deliver `line` (one NDJSON request; the trailing `\n` is added if
    /// missing) and return the raw response line, trimmed.
    ///
    /// The request must be valid JSON. If it carries an `id`, every
    /// response is required to echo it — attempts answered with a
    /// different id (a stale response on a reused stream) count as
    /// corrupt and are retried on a fresh connection.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let parsed = json::parse(line.trim_end_matches('\n')).map_err(ClientError::BadRequest)?;
        let id = parsed.get("id").cloned();
        let mut wire = line.trim_end_matches('\n').to_string();
        wire.push('\n');

        let mut last_failure = String::new();
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let jitter = self.next_jitter();
                std::thread::sleep(backoff_delay(
                    self.config.backoff_base,
                    self.config.backoff_cap,
                    attempt - 1,
                    jitter,
                ));
            }
            // An open breaker blocks the attempt until its cooldown
            // passes; the attempt that follows is the half-open probe.
            if let Some(until) = self.breaker.open_until {
                let now = Instant::now();
                if now < until {
                    std::thread::sleep(until - now);
                }
            }
            self.stats.attempts += 1;
            match self.attempt(&wire, id.as_ref()) {
                Ok(resp) => {
                    self.breaker.consecutive_failures = 0;
                    self.breaker.open_until = None;
                    return Ok(resp);
                }
                Err(AttemptError::Overloaded) => {
                    // The server is shedding by design: the transport is
                    // healthy, so don't count it against the breaker or
                    // tear down the connection — just back off.
                    self.stats.overloaded_retries += 1;
                    last_failure = "server overloaded".to_string();
                }
                Err(AttemptError::Transport(e)) => {
                    self.conn = None;
                    last_failure = e;
                    self.breaker.consecutive_failures += 1;
                    if self.breaker.consecutive_failures >= self.config.breaker_threshold {
                        self.breaker.open_until =
                            Some(Instant::now() + self.config.breaker_cooldown);
                        self.breaker.consecutive_failures = 0;
                        self.stats.breaker_opens += 1;
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.config.max_attempts,
            last: last_failure,
        })
    }

    /// One attempt: ensure a connection, send, read one line, validate.
    fn attempt(&mut self, wire: &str, id: Option<&Json>) -> Result<String, AttemptError> {
        if self.conn.is_none() {
            let stream = self.connect().map_err(AttemptError::Transport)?;
            self.stats.reconnects += 1;
            self.conn = Some(BufReader::new(stream));
        }
        let reader = self.conn.as_mut().expect("connection just ensured");
        reader
            .get_mut()
            .write_all(wire.as_bytes())
            .map_err(|e| AttemptError::Transport(format!("write: {e}")))?;
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(0) => return Err(AttemptError::Transport("connection closed".to_string())),
            Ok(_) => {}
            Err(e) => return Err(AttemptError::Transport(format!("read: {e}"))),
        }
        if !resp.ends_with('\n') {
            return Err(AttemptError::Transport(
                "truncated response (no newline before EOF)".to_string(),
            ));
        }
        let body = resp.trim_end_matches(['\n', '\r']);
        let parsed = match json::parse(body) {
            Ok(v) => v,
            Err(e) => {
                self.stats.corrupt_responses += 1;
                return Err(AttemptError::Transport(format!("corrupt response: {e}")));
            }
        };
        if let Some(want) = id {
            if parsed.get("id") != Some(want) {
                self.stats.corrupt_responses += 1;
                return Err(AttemptError::Transport(format!(
                    "response id mismatch (want {want})"
                )));
            }
        }
        if parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            == Some("overloaded")
        {
            return Err(AttemptError::Overloaded);
        }
        Ok(body.to_string())
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", self.addr))?
            .collect();
        let mut last = format!("no addresses for {}", self.addr);
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.config.read_timeout))
                        .map_err(|e| format!("set read timeout: {e}"))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = format!("connect {addr}: {e}"),
            }
        }
        Err(last)
    }

    fn next_jitter(&mut self) -> u64 {
        // splitmix64 — deterministic and dependency-free.
        self.jitter_state = self.jitter_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// How one attempt failed.
enum AttemptError {
    /// Connect/write/read/validation failure: reconnect and retry;
    /// counts toward the breaker.
    Transport(String),
    /// A typed `overloaded` shed: healthy transport, retry after
    /// backoff without reconnecting.
    Overloaded,
}

/// The delay before retry number `retry` (0-based): `base * 2^retry`
/// capped at `cap`, then jittered into `[d/2, d]` so synchronized
/// clients don't retry in lockstep. Pure — `rand` supplies the entropy.
fn backoff_delay(base: Duration, cap: Duration, retry: u32, rand: u64) -> Duration {
    let exp = base.saturating_mul(1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX));
    let capped = exp.min(cap);
    let nanos = capped.as_nanos().min(u64::MAX as u128) as u64;
    let half = nanos / 2;
    Duration::from_nanos(half + rand % (nanos - half + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn fast_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            max_attempts: 6,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(20),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_doubles_then_caps_and_jitters_within_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        for retry in 0..32 {
            let nominal = base
                .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
                .min(cap);
            for rand in [0u64, 1, u64::MAX, 0xDEADBEEF] {
                let d = backoff_delay(base, cap, retry, rand);
                assert!(d <= nominal, "retry {retry}: {d:?} > {nominal:?}");
                assert!(
                    d >= nominal / 2,
                    "retry {retry}: {d:?} < half of {nominal:?}"
                );
            }
        }
        // Deterministic in the entropy argument.
        assert_eq!(
            backoff_delay(base, cap, 3, 42),
            backoff_delay(base, cap, 3, 42)
        );
    }

    #[test]
    fn invalid_request_lines_fail_without_touching_the_network() {
        // The address is never resolved: an unparseable line fails fast.
        let mut client = ResilientClient::new("999.999.999.999:1", fast_config());
        let err = client.request("{not json").unwrap_err();
        assert!(matches!(err, ClientError::BadRequest(_)), "{err:?}");
        assert_eq!(client.stats().attempts, 0);
    }

    #[test]
    fn corrupt_then_clean_response_is_retried_to_success() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: garbage (the strict parser must reject
            // it). Second connection: a clean echo.
            let (mut a, _) = listener.accept().unwrap();
            let mut drop_buf = [0u8; 256];
            let _ = std::io::Read::read(&mut a, &mut drop_buf);
            a.write_all(b"\x01\x02 not json\n").unwrap();
            let (mut b, _) = listener.accept().unwrap();
            let _ = std::io::Read::read(&mut b, &mut drop_buf);
            b.write_all(b"{\"id\":\"r1\",\"ok\":true}\n").unwrap();
        });
        let mut client = ResilientClient::new(addr.to_string(), fast_config());
        let resp = client
            .request("{\"type\":\"stats\",\"id\":\"r1\"}")
            .unwrap();
        assert_eq!(resp, "{\"id\":\"r1\",\"ok\":true}");
        let stats = client.stats();
        assert!(stats.corrupt_responses >= 1, "{stats:?}");
        assert!(stats.retries >= 1, "{stats:?}");
        assert!(stats.reconnects >= 2, "{stats:?}");
        server.join().unwrap();
    }

    #[test]
    fn mismatched_response_id_counts_as_corrupt() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut a, _) = listener.accept().unwrap();
            let mut drop_buf = [0u8; 256];
            let _ = std::io::Read::read(&mut a, &mut drop_buf);
            a.write_all(b"{\"id\":\"stale\",\"ok\":true}\n").unwrap();
            let (mut b, _) = listener.accept().unwrap();
            let _ = std::io::Read::read(&mut b, &mut drop_buf);
            b.write_all(b"{\"id\":\"r2\",\"ok\":true}\n").unwrap();
        });
        let mut client = ResilientClient::new(addr.to_string(), fast_config());
        let resp = client
            .request("{\"type\":\"stats\",\"id\":\"r2\"}")
            .unwrap();
        assert!(resp.contains("\"id\":\"r2\""));
        assert!(client.stats().corrupt_responses >= 1);
        server.join().unwrap();
    }

    #[test]
    fn overloaded_responses_are_retried_on_the_same_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            // Shed twice, then answer.
            for i in 0..3 {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let resp = if i < 2 {
                    "{\"id\":\"r3\",\"ok\":false,\"error\":{\"code\":\"overloaded\"}}\n"
                } else {
                    "{\"id\":\"r3\",\"ok\":true}\n"
                };
                stream.write_all(resp.as_bytes()).unwrap();
            }
        });
        let mut client = ResilientClient::new(addr.to_string(), fast_config());
        let resp = client
            .request("{\"type\":\"stats\",\"id\":\"r3\"}")
            .unwrap();
        assert!(resp.contains("\"ok\":true"));
        let stats = client.stats();
        assert_eq!(stats.overloaded_retries, 2, "{stats:?}");
        assert_eq!(stats.reconnects, 1, "sheds must not reconnect: {stats:?}");
        server.join().unwrap();
    }

    #[test]
    fn read_timeout_turns_a_stalled_server_into_retries() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept and never respond; hold the sockets so the client
            // sees a stall, not a close.
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
                if held.len() >= 2 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(300));
        });
        let mut config = fast_config();
        config.read_timeout = Duration::from_millis(30);
        config.max_attempts = 2;
        let mut client = ResilientClient::new(addr.to_string(), config);
        let start = Instant::now();
        let err = client
            .request("{\"type\":\"stats\",\"id\":\"r4\"}")
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Exhausted { attempts: 2, .. }),
            "{err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(3));
        server.join().unwrap();
    }

    #[test]
    fn repeated_transport_failures_open_the_breaker() {
        // A port with nothing listening: connects fail immediately.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut config = fast_config();
        config.max_attempts = 8;
        config.breaker_threshold = 3;
        config.breaker_cooldown = Duration::from_millis(10);
        let mut client = ResilientClient::new(dead_addr, config);
        let err = client
            .request("{\"type\":\"stats\",\"id\":\"r5\"}")
            .unwrap_err();
        assert!(matches!(err, ClientError::Exhausted { .. }), "{err:?}");
        let stats = client.stats();
        assert!(stats.breaker_opens >= 2, "{stats:?}");
        assert_eq!(stats.attempts, 8, "{stats:?}");
    }
}
