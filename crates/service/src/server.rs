//! The evaluation server: NDJSON over TCP on a nonblocking readiness
//! event loop, a compute-only worker pool, one shared cache, and
//! per-request admission control.
//!
//! # Protocol
//!
//! One JSON object per line, both directions. Requests carry a `"type"`
//! (`ping`, `stats`, `explore`, `shutdown`) and an optional `"id"`, which
//! is echoed verbatim into the response. Every response carries
//! `"ok"` and `"schema_version"`; failures carry
//! `"error": {"code", "message"}` with the stable codes of
//! [`CredError::code`].
//!
//! # Concurrency model
//!
//! One event-loop thread owns the listener and every connection,
//! multiplexed through a level-triggered [`Poller`] (epoll on Linux,
//! `poll(2)` elsewhere) — a connection costs a buffer pair, not a
//! thread, so thousands of concurrent clients are cheap. Each connection
//! is a small state machine: bytes are read nonblockingly into a line
//! buffer, complete lines are parsed on the loop, and cheap requests
//! (`ping`, `stats`, `shutdown`, protocol errors) are answered inline.
//! `explore` requests — the only ones that compute — are handed to a
//! fixed worker pool over a channel; workers never touch sockets, and
//! the loop never computes, so neither can stall the other. A finished
//! worker pushes its rendered response onto a completion queue and wakes
//! the loop through the poller's eventfd/self-pipe [`Waker`].
//!
//! Responses are sequenced per connection: every request takes a ticket
//! when its line is parsed and responses are flushed strictly in ticket
//! order, so pipelined clients observe exactly the ordering a blocking
//! server would have produced. Writes are nonblocking with explicit
//! backpressure: a connection whose unflushed output exceeds a
//! high-water mark stops being read until the client drains it.
//!
//! Identical concurrent explore requests — same kernel fingerprint,
//! `max_f`, `n`, and mode — coalesce onto one computation
//! ([`crate::coalesce`]); everything the leader computes lands in the
//! process-wide [`SweepCache`] shared by every request thereafter. A
//! leader outcome that was shaped by the leader's own budget (a
//! budget-exhausted error, or exhaustion-caused degradations) is never
//! handed to a joiner, whose limits may differ: the joiner recomputes
//! under its own limits against the shared cache instead (counted as
//! `coalesce_recomputes`).
//!
//! # Admission control
//!
//! A request's deadline is anchored at *arrival* (the moment its line was
//! read), not at solver start: a request that has already overstayed when
//! a worker picks it up — or that finishes its coalesced computation too
//! late — is answered with a typed `budget-exhausted` error rather than a
//! dropped connection or a stale success. On top of the deadline, the
//! loop bounds the number of explore requests in flight
//! ([`ServiceConfig::max_in_flight`]): once the bound is reached, further
//! explores are *shed* immediately with a typed `overloaded` error
//! (counted as `shed_requests`) instead of queueing without bound —
//! under overload the server degrades into fast rejections, not growing
//! latency.
//!
//! # Connection lifecycle
//!
//! Every connection carries deadlines enforced by a [`TimerWheel`] whose
//! next due time becomes the poller's wait timeout — timers and socket
//! readiness share one blocking point, so an idle server still never
//! spins and still wakes exactly when a deadline falls due. Two clocks
//! run per connection:
//!
//! * an **idle timeout** ([`ServiceConfig::idle_timeout`]) for
//!   connections with nothing pending — no partial line, no outstanding
//!   compute, no unflushed output — that simply go silent;
//! * a **progress deadline** ([`ServiceConfig::progress_timeout`])
//!   anchored at the start of any I/O obligation: a request line that
//!   began arriving must finish within it (slowloris defense), and a
//!   backpressure pause (or a half-open peer's pending output after its
//!   EOF) must drain within it (stalled-reader defense).
//!
//! Every close is typed with a reason and counted:
//! `closed_ok` (clean completion), `idle_closed`, `slow_closed`
//! (progress deadline or the write hard cap), `reset_by_peer`
//! (transport error, including half-open peers whose writes finally
//! failed), and `drained` (closed by the shutdown drain). After a clean
//! shutdown the reasons sum to `conns_accepted`.
//!
//! # Shutdown
//!
//! A `shutdown` request starts a graceful drain: the listener is
//! deregistered (stop accepting), reading stops, but in-flight explores
//! keep computing and their responses are flushed before their
//! connections close with reason `drained`. Only when the drain deadline
//! ([`ServiceConfig::drain_timeout`]) expires does the master cancel
//! token stop the remaining solves cooperatively and force the last
//! connections closed. The loop itself is woken explicitly (it never
//! sits in a sleep-and-poll cycle), so shutdown with idle connections
//! open completes in milliseconds.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cred_codegen::DecMode;
use cred_dfg::Dfg;
use cred_exact::MachineModel;
use cred_explore::cache::SweepCache;
use cred_explore::suite::{load_kernels, SCHEMA_VERSION};
use cred_explore::{
    exact_json, exact_json_v2, point_json, wire_v2_points, CacheStats, CredError, ExploreRequest,
    ExploreResponse,
};
use cred_resilience::{CancelToken, DegradeCause, Exhausted};

use crate::coalesce::{Coalescer, Role};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::timer::TimerWheel;

/// Hard cap on one request line. Sources are small; anything beyond this
/// is rejected as a protocol error and the connection closed.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Largest accepted `max_f` (the sweep is exponential in `f`; 16 is far
/// beyond the paper's design space).
const MAX_MAX_F: usize = 16;

/// Largest accepted trip count.
const MAX_N: u64 = 1 << 40;

/// Largest accepted `debug_delay_ms` (a test hook must not wedge a
/// worker for long).
const MAX_DEBUG_DELAY_MS: u64 = 5_000;

/// Largest accepted `debug_pad_bytes` (a test hook for inflating one
/// response past the write watermarks; must stay well under the hard
/// cap).
const MAX_DEBUG_PAD_BYTES: u64 = 16 << 20;

/// Registration token of the listen socket (`u64::MAX` is the poller's
/// own wake token; connection tokens count up from zero).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Default unflushed-output level above which a connection stops being
/// read (write backpressure engages).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Default unflushed-output level below which a paused connection
/// resumes reading.
const WRITE_LOW_WATER: usize = 64 << 10;

/// Default absolute cap on unflushed output: a client that stops reading
/// entirely is disconnected rather than buffered forever (and before
/// that, the progress deadline usually closes it).
const WRITE_HARD_CAP: usize = 1 << 26;

/// Bytes read per connection per readiness event before yielding to
/// other connections (level-triggered readiness re-fires if more data
/// waits).
const READ_FAIR_SHARE: usize = 64 << 10;

/// Server configuration, normally built from `credc serve` flags.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (the compute pool; connections are not tied to
    /// workers).
    pub workers: usize,
    /// Capacity of the process-wide [`SweepCache`].
    pub cache_capacity: usize,
    /// Default per-request deadline applied when a request names none.
    /// `None` means unlimited.
    pub default_deadline: Option<Duration>,
    /// Directory of `.loop` kernels served by name. `None` disables
    /// named-kernel requests (sources still work).
    pub kernels_dir: Option<PathBuf>,
    /// Where to write a final metrics snapshot on shutdown.
    pub metrics_dump: Option<PathBuf>,
    /// Most explore requests admitted concurrently; beyond this the
    /// server sheds with a typed `overloaded` error.
    pub max_in_flight: usize,
    /// Use the portable `poll(2)` backend even where epoll is available
    /// (exercised by tests; harmless in production, just O(connections)
    /// per wakeup).
    pub force_poll_backend: bool,
    /// Close a connection with nothing pending after this much silence
    /// (`idle_closed`). `None` disables the idle timeout.
    pub idle_timeout: Option<Duration>,
    /// Deadline on any I/O obligation: a request line must finish
    /// arriving, and a backpressure pause (or half-open peer's pending
    /// output) must drain, within this window (`slow_closed`). `None`
    /// disables the progress deadline.
    pub progress_timeout: Option<Duration>,
    /// How long the shutdown drain waits for in-flight responses before
    /// cancelling the remaining solves and force-closing.
    pub drain_timeout: Duration,
    /// Unflushed-output level above which a connection stops being read.
    pub write_high_water: usize,
    /// Unflushed-output level below which a paused connection resumes
    /// reading.
    pub write_low_water: usize,
    /// Absolute cap on unflushed output.
    pub write_hard_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            cache_capacity: 1024,
            default_deadline: None,
            kernels_dir: None,
            metrics_dump: None,
            max_in_flight: 512,
            force_poll_backend: false,
            idle_timeout: Some(Duration::from_secs(60)),
            progress_timeout: Some(Duration::from_secs(10)),
            drain_timeout: Duration::from_secs(2),
            write_high_water: WRITE_HIGH_WATER,
            write_low_water: WRITE_LOW_WATER,
            write_hard_cap: WRITE_HARD_CAP,
        }
    }
}

/// The deduplication key of an explore request
/// ([`ExploreRequest::coalesce_key`]).
type ExploreKey = (u64, usize, u64, u8, u64, u64, u64);

/// The shared outcome of one coalesced explore computation: the leader
/// computes it once, every joiner clones the `Arc`.
type SharedOutcome = Arc<Result<ExploreResponse, CredError>>;

/// Everything the workers and the event loop share.
struct Shared {
    cache: SweepCache,
    kernels: HashMap<String, Dfg>,
    metrics: Metrics,
    coalescer: Coalescer<ExploreKey, SharedOutcome>,
    /// Cancelled on shutdown so in-flight solves stop cooperatively.
    master_cancel: CancelToken,
    default_deadline: Option<Duration>,
}

impl Shared {
    fn stats_snapshot(&self) -> crate::MetricsSnapshot {
        self.metrics.snapshot(
            CacheStats::of(&self.cache),
            self.coalescer.poison_recoveries(),
        )
    }
}

/// One explore request in flight to the worker pool.
struct Job {
    token: u64,
    seq: u64,
    req: Json,
    id: Option<String>,
    arrival: Instant,
}

/// A worker's finished response, routed back to its connection.
struct Completion {
    token: u64,
    seq: u64,
    line: String,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServiceConfig,
}

impl Server {
    /// Bind the listen socket and load the named-kernel table. The
    /// server does not accept connections until [`run`](Self::run).
    pub fn bind(config: ServiceConfig) -> Result<Server, CredError> {
        if config.workers < 1 {
            return Err(CredError::Protocol("workers must be at least 1".into()));
        }
        if config.cache_capacity < 1 {
            return Err(CredError::Protocol(
                "cache capacity must be at least 1".into(),
            ));
        }
        if config.max_in_flight < 1 {
            return Err(CredError::Protocol(
                "max in-flight bound must be at least 1".into(),
            ));
        }
        if config.write_low_water >= config.write_high_water
            || config.write_high_water > config.write_hard_cap
        {
            return Err(CredError::Protocol(
                "write watermarks must satisfy low < high <= hard cap".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CredError::Io(format!("bind {}: {e}", config.addr)))?;
        let kernels = match &config.kernels_dir {
            Some(dir) => load_kernels(dir)
                .map_err(|e| CredError::Io(format!("loading kernels: {e}")))?
                .into_iter()
                .collect(),
            None => HashMap::new(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache: SweepCache::with_capacity(config.cache_capacity),
                kernels,
                metrics: Metrics::default(),
                coalescer: Coalescer::new(),
                master_cancel: CancelToken::new(),
                default_deadline: config.default_deadline,
            }),
            config,
        })
    }

    /// The bound address (useful when the config asked for port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve until a `shutdown` request arrives. Returns after
    /// the graceful drain has flushed (or the drain deadline has cut off)
    /// in-flight work, every worker has joined, and the optional metrics
    /// dump has been written.
    pub fn run(self) -> Result<(), CredError> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new(self.config.force_poll_backend)
            .map_err(|e| CredError::Io(format!("poller: {e}")))?;
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(self.config.workers);
        for i in 0..self.config.workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            let completions = Arc::clone(&completions);
            let waker = poller.waker();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cred-service-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared, completions, waker))
                    .map_err(|e| CredError::Io(format!("spawning worker: {e}")))?,
            );
        }
        let mut event_loop = EventLoop {
            poller,
            listener: self.listener,
            conns: HashMap::new(),
            next_token: 0,
            tx,
            completions,
            shared: Arc::clone(&self.shared),
            in_flight: 0,
            max_in_flight: self.config.max_in_flight,
            timers: TimerWheel::new(Instant::now()),
            idle_timeout: self.config.idle_timeout,
            progress_timeout: self.config.progress_timeout,
            drain_timeout: self.config.drain_timeout,
            wm_high: self.config.write_high_water,
            wm_low: self.config.write_low_water,
            wm_hard: self.config.write_hard_cap,
            draining: false,
            drain_deadline: None,
        };
        event_loop
            .poller
            .register(
                event_loop.listener.as_raw_fd(),
                LISTENER_TOKEN,
                Interest::READ,
            )
            .map_err(|e| CredError::Io(format!("registering listener: {e}")))?;
        let result = event_loop.run();
        // Teardown: the loop has already drained gracefully; cancel is
        // idempotent (the drain-deadline path may have fired it), then
        // close the channel and join the pool.
        self.shared.master_cancel.cancel();
        drop(event_loop);
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.config.metrics_dump {
            let snap = self.shared.stats_snapshot();
            std::fs::write(path, snap.to_json() + "\n")
                .map_err(|e| CredError::Io(format!("writing {}: {e}", path.display())))?;
        }
        result
    }
}

/// Why a connection was closed. Every accepted connection ends with
/// exactly one reason, counted in [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Clean completion: the client finished and the last response
    /// flushed.
    Ok,
    /// Idle timeout: nothing pending, silence past the deadline.
    Idle,
    /// Progress deadline: a request line that never finished arriving, a
    /// backpressure pause that never drained, or the write hard cap.
    Slow,
    /// Transport error (reset/EPIPE/read failure), including half-open
    /// peers whose pending writes finally failed after their EOF.
    Reset,
    /// Closed by the shutdown drain.
    Drained,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Bytes read but not yet split into lines.
    rbuf: Vec<u8>,
    /// Rendered responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written.
    wpos: usize,
    /// Ticket handed to the next parsed request.
    next_seq: u64,
    /// Ticket whose response must be flushed next.
    next_flush: u64,
    /// Finished responses waiting for their flush turn.
    done: BTreeMap<u64, String>,
    /// Requests of this connection currently in the worker pool.
    outstanding: usize,
    /// Peer sent EOF (or the connection turned protocol-fatal): stop
    /// reading, finish outstanding work, flush, close.
    read_closed: bool,
    /// Reading paused by write backpressure.
    paused: bool,
    /// Fatal error: drop the connection at the next update.
    dead: bool,
    /// Why `dead` was set (transport errors vs the hard cap); `None`
    /// until then.
    death_reason: Option<CloseReason>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Last instant the connection was observed non-quiescent (the idle
    /// clock's anchor).
    last_activity: Instant,
    /// When the current partial request line started arriving (the
    /// slowloris clock's anchor); cleared on every completed line.
    partial_since: Option<Instant>,
    /// When the current write-side obligation began: a backpressure
    /// pause, or pending output after the peer's EOF (half-open).
    stalled_since: Option<Instant>,
    /// Earliest deadline hint currently armed in the timer wheel.
    armed_for: Option<Instant>,
    /// Marked by the shutdown drain: this connection closes with reason
    /// `Drained`, not `Ok`.
    drain_marked: bool,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The progress deadline, if an I/O obligation is pending.
    fn progress_deadline(&self, progress: Option<Duration>) -> Option<Instant> {
        let window = progress?;
        [self.partial_since, self.stalled_since]
            .iter()
            .flatten()
            .min()
            .map(|since| *since + window)
    }

    /// The idle deadline, if the connection is quiescent.
    fn idle_deadline(&self, idle: Option<Duration>) -> Option<Instant> {
        let window = idle?;
        let quiescent = self.rbuf.is_empty()
            && self.outstanding == 0
            && self.done.is_empty()
            && self.unflushed() == 0;
        quiescent.then(|| self.last_activity + window)
    }

    /// Earliest pending lifecycle deadline, if any.
    fn next_deadline(&self, idle: Option<Duration>, progress: Option<Duration>) -> Option<Instant> {
        match (self.progress_deadline(progress), self.idle_deadline(idle)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

/// The readiness loop: owns the listener, every connection, and the
/// dispatch side of the worker pool.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    tx: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    shared: Arc<Shared>,
    /// Explore requests dispatched to workers and not yet completed.
    in_flight: usize,
    max_in_flight: usize,
    /// Lifecycle deadline hints; the next due time bounds the poller
    /// wait.
    timers: TimerWheel,
    idle_timeout: Option<Duration>,
    progress_timeout: Option<Duration>,
    drain_timeout: Duration,
    /// Write watermarks (high engages backpressure, low releases it,
    /// hard disconnects).
    wm_high: usize,
    wm_low: usize,
    wm_hard: usize,
    /// A `shutdown` request was seen: the listener is closed and the
    /// loop is finishing in-flight responses.
    draining: bool,
    /// When the drain gives up waiting and force-closes.
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) -> Result<(), CredError> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.draining && self.conns.is_empty() && self.in_flight == 0 {
                return Ok(());
            }
            // The wait is bounded only by the earliest lifecycle timer
            // (and the drain deadline): with no deadlines pending every
            // wakeup is an explicit event — socket readiness, a worker
            // completion — and the loop never spins.
            let now = Instant::now();
            let mut timeout = self.timers.next_timeout(now);
            if let Some(dd) = self.drain_deadline {
                let until = dd.saturating_duration_since(now);
                timeout = Some(timeout.map_or(until, |t| t.min(until)));
            }
            let woken = self
                .poller
                .wait(&mut events, timeout)
                .map_err(|e| CredError::Io(format!("poll wait: {e}")))?;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                if ev.token == LISTENER_TOKEN {
                    if !self.draining {
                        self.accept_all();
                    }
                } else {
                    self.handle_conn_event(ev);
                }
            }
            events = batch;
            if woken {
                self.drain_completions();
            }
            self.expire_timers();
            if let Some(dd) = self.drain_deadline {
                if Instant::now() >= dd {
                    self.force_drain();
                    return Ok(());
                }
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = Interest::READ;
                    if self.poller.register(fd, token, interest).is_err() {
                        continue;
                    }
                    Metrics::bump(&self.shared.metrics.conns_accepted);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            next_seq: 0,
                            next_flush: 0,
                            done: BTreeMap::new(),
                            outstanding: 0,
                            read_closed: false,
                            paused: false,
                            dead: false,
                            death_reason: None,
                            interest,
                            last_activity: Instant::now(),
                            partial_since: None,
                            stalled_since: None,
                            armed_for: None,
                            drain_marked: false,
                        },
                    );
                    // A fresh connection starts its idle clock at once.
                    self.arm_timer(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the
                // peer already reset): try again on the next event.
                Err(_) => return,
            }
        }
    }

    fn handle_conn_event(&mut self, ev: &Event) {
        if !self.conns.contains_key(&ev.token) {
            return;
        }
        if ev.readable || ev.hangup {
            self.read_conn(ev.token);
        }
        self.update_conn(ev.token);
    }

    /// Pull bytes (up to a fairness share) and process every complete
    /// line they complete.
    fn read_conn(&mut self, token: u64) {
        let mut chunk = [0u8; 16 << 10];
        let mut taken = 0usize;
        loop {
            let arrival = Instant::now();
            let n = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.read_closed || conn.paused || conn.dead || taken >= READ_FAIR_SHARE {
                    return;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        // A trailing partial line (no newline) is
                        // discarded, as a blocking reader would have.
                        conn.rbuf.clear();
                        conn.partial_since = None;
                        return;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = arrival;
                        n
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        conn.death_reason = Some(CloseReason::Reset);
                        return;
                    }
                }
            };
            taken += n;
            // One arrival stamp per read, shared by every line drained
            // from it: a pipelined line must not have its deadline clock
            // start only after its predecessors were handled.
            self.process_lines(token, arrival);
        }
    }

    /// Split the read buffer into complete lines and handle each. Also
    /// keeps the slowloris anchor: a partial line left behind starts (or
    /// keeps) the progress clock; every completed line resets it.
    fn process_lines(&mut self, token: u64, arrival: Instant) {
        loop {
            let line: Vec<u8> = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match conn.rbuf.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        // A line completed: the next partial (if any)
                        // gets a fresh progress anchor below.
                        conn.partial_since = None;
                        let line = conn.rbuf.drain(..=nl).collect();
                        line
                    }
                    None => {
                        if conn.rbuf.len() > MAX_LINE_BYTES {
                            // Protocol-fatal: answer with a typed error,
                            // then close once everything already queued
                            // has flushed.
                            let e = CredError::Protocol(format!(
                                "request line exceeds {MAX_LINE_BYTES} bytes"
                            ));
                            Metrics::bump(&self.shared.metrics.requests);
                            Metrics::bump(&self.shared.metrics.errors);
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.done.insert(seq, error_response(&None, &e));
                            conn.read_closed = true;
                            conn.rbuf = Vec::new();
                            conn.partial_since = None;
                        } else if !conn.rbuf.is_empty() && conn.partial_since.is_none() {
                            conn.partial_since = Some(arrival);
                        }
                        return;
                    }
                }
            };
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                self.handle_line(token, trimmed, arrival);
                if self.draining {
                    return;
                }
            }
        }
    }

    /// Handle one request line: cheap requests inline, explores to the
    /// pool (or shed). The response — when already known — is enqueued
    /// at this request's ticket so pipelined responses stay in order.
    fn handle_line(&mut self, token: u64, line: &str, arrival: Instant) {
        let shared = Arc::clone(&self.shared);
        Metrics::bump(&shared.metrics.requests);
        let seq = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            seq
        };
        let req = match json::parse(line) {
            Ok(v @ Json::Obj(_)) => v,
            Ok(_) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol("request must be a JSON object".into());
                self.finish(token, seq, error_response(&None, &e));
                return;
            }
            Err(msg) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol(format!("bad JSON: {msg}"));
                self.finish(token, seq, error_response(&None, &e));
                return;
            }
        };
        let id = req.get("id").map(Json::to_compact);
        match req.get("type").and_then(Json::as_str) {
            Some("ping") => {
                Metrics::bump(&shared.metrics.ok);
                self.finish(
                    token,
                    seq,
                    format!("{},\"type\":\"pong\"}}", head(true, &id)),
                );
            }
            Some("stats") => {
                Metrics::bump(&shared.metrics.ok);
                let snap = shared.stats_snapshot();
                self.finish(
                    token,
                    seq,
                    format!(
                        "{},\"type\":\"stats\",\"stats\":{}}}",
                        head(true, &id),
                        snap.to_json()
                    ),
                );
            }
            Some("shutdown") => {
                Metrics::bump(&shared.metrics.ok);
                self.finish(
                    token,
                    seq,
                    format!("{},\"type\":\"shutdown\"}}", head(true, &id)),
                );
                self.begin_drain();
            }
            Some("explore") => {
                if self.in_flight >= self.max_in_flight {
                    // Shed instead of queueing: the deadline clock is
                    // already running, and admitting more work than the
                    // pool can start only converts future capacity into
                    // queue latency.
                    Metrics::bump(&shared.metrics.errors);
                    Metrics::bump(&shared.metrics.shed_requests);
                    let e = CredError::Overloaded {
                        limit: self.max_in_flight,
                    };
                    self.finish(token, seq, error_response(&id, &e));
                    return;
                }
                self.in_flight += 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.outstanding += 1;
                }
                // Send can only fail once the pool is gone, which only
                // happens during teardown; the connection is going away
                // with it.
                let _ = self.tx.send(Job {
                    token,
                    seq,
                    req,
                    id,
                    arrival,
                });
            }
            Some(other) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol(format!("unknown request type {other:?}"));
                self.finish(token, seq, error_response(&id, &e));
            }
            None => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol("missing request type".into());
                self.finish(token, seq, error_response(&id, &e));
            }
        }
    }

    /// Record a finished response at its ticket.
    fn finish(&mut self, token: u64, seq: u64, line: String) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.done.insert(seq, line);
        }
    }

    /// Route every queued worker completion to its connection and flush.
    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut q = self
                .completions
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *q)
        };
        let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
        for c in batch {
            self.in_flight -= 1;
            if let Some(conn) = self.conns.get_mut(&c.token) {
                conn.outstanding -= 1;
                conn.done.insert(c.seq, c.line);
                touched.push(c.token);
            }
        }
        touched.dedup();
        for token in touched {
            self.update_conn(token);
        }
    }

    /// Advance one connection's output state machine: move in-order
    /// responses to the write buffer, write greedily, adjust
    /// backpressure, lifecycle anchors, and poller interest, close when
    /// finished or dead.
    fn update_conn(&mut self, token: u64) {
        let verdict = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            flush_ready(conn);
            if !conn.dead && try_write(conn).is_err() {
                conn.dead = true;
                conn.death_reason = Some(CloseReason::Reset);
            }
            let unflushed = conn.unflushed();
            if unflushed > self.wm_hard {
                // The reader fell so far behind that even the progress
                // deadline hasn't caught it yet: same taxonomy, slow.
                conn.dead = true;
                conn.death_reason.get_or_insert(CloseReason::Slow);
            }
            conn.paused = if conn.paused {
                unflushed >= self.wm_low
            } else {
                unflushed >= self.wm_high
            };
            // Lifecycle anchors. The idle clock refreshes while anything
            // is pending; the write-side progress clock anchors when a
            // backpressure pause (or a half-open peer's pending output)
            // begins and clears only when the obligation does.
            let now = Instant::now();
            if !conn.rbuf.is_empty()
                || conn.outstanding > 0
                || unflushed > 0
                || !conn.done.is_empty()
            {
                conn.last_activity = now;
            }
            if conn.paused || (conn.read_closed && unflushed > 0) {
                conn.stalled_since.get_or_insert(now);
            } else {
                conn.stalled_since = None;
            }
            let finished =
                conn.read_closed && conn.outstanding == 0 && conn.done.is_empty() && unflushed == 0;
            if conn.dead {
                Some(conn.death_reason.unwrap_or(CloseReason::Reset))
            } else if finished {
                Some(if conn.drain_marked {
                    CloseReason::Drained
                } else {
                    CloseReason::Ok
                })
            } else {
                let want = Interest {
                    readable: !conn.read_closed && !conn.paused,
                    writable: unflushed > 0,
                };
                if want != conn.interest {
                    conn.interest = want;
                    if self.poller.reregister(conn.fd, token, want).is_err() {
                        Some(CloseReason::Reset)
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
        };
        match verdict {
            Some(reason) => self.remove_conn(token, reason),
            None => self.arm_timer(token),
        }
    }

    fn remove_conn(&mut self, token: u64, reason: CloseReason) {
        if let Some(conn) = self.conns.remove(&token) {
            // Deregister before the fd closes: the poll(2) backend keeps
            // a userspace table that would otherwise poll a dead fd.
            let _ = self.poller.deregister(conn.fd);
            let m = &self.shared.metrics;
            Metrics::bump(match reason {
                CloseReason::Ok => &m.closed_ok,
                CloseReason::Idle => &m.idle_closed,
                CloseReason::Slow => &m.slow_closed,
                CloseReason::Reset => &m.reset_by_peer,
                CloseReason::Drained => &m.drained,
            });
        }
    }

    /// Arm (or tighten) the timer-wheel hint for this connection's
    /// earliest lifecycle deadline. Hints are lazy: a deadline that moves
    /// later is not cancelled, just rechecked when the stale hint fires.
    fn arm_timer(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let Some(deadline) = conn.next_deadline(self.idle_timeout, self.progress_timeout) else {
            return;
        };
        if conn.armed_for.is_none_or(|armed| deadline < armed) {
            conn.armed_for = Some(deadline);
            self.timers.insert(token, deadline);
        }
    }

    /// Fire every due timer hint, closing connections whose real
    /// deadline has passed and re-arming the rest.
    fn expire_timers(&mut self) {
        if self.timers.is_empty() {
            return;
        }
        let now = Instant::now();
        for token in self.timers.expire(now) {
            let verdict = match self.conns.get_mut(&token) {
                None => continue,
                Some(conn) => {
                    conn.armed_for = None;
                    match conn.next_deadline(self.idle_timeout, self.progress_timeout) {
                        Some(d) if d <= now => {
                            // Which clock ran out decides the reason;
                            // pending output is dropped — the peer is
                            // gone or hostile.
                            let slow = conn
                                .progress_deadline(self.progress_timeout)
                                .is_some_and(|d| d <= now);
                            Err(if slow {
                                CloseReason::Slow
                            } else {
                                CloseReason::Idle
                            })
                        }
                        later => Ok(later),
                    }
                }
            };
            match verdict {
                Err(reason) => self.remove_conn(token, reason),
                Ok(Some(deadline)) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.armed_for = Some(deadline);
                    }
                    self.timers.insert(token, deadline);
                }
                Ok(None) => {}
            }
        }
    }

    /// Enter the graceful drain: stop accepting, stop reading, finish
    /// and flush what is in flight. Connections still open close with
    /// reason `drained` once their work completes (or when the drain
    /// deadline force-closes them).
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.drain_timeout);
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                if !conn.read_closed {
                    conn.drain_marked = true;
                    conn.read_closed = true;
                    conn.rbuf.clear();
                    conn.partial_since = None;
                }
            }
            self.update_conn(token);
        }
    }

    /// The drain deadline passed with work still pending: cancel the
    /// remaining solves cooperatively, give their completions a brief
    /// window to land, flush best-effort, and close everything.
    fn force_drain(&mut self) {
        self.shared.master_cancel.cancel();
        let cutoff = Instant::now() + Duration::from_millis(300);
        let mut events: Vec<Event> = Vec::new();
        while self.in_flight > 0 && Instant::now() < cutoff {
            match self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)))
            {
                Ok(true) => self.drain_completions(),
                Ok(false) => {}
                Err(_) => break,
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                flush_ready(conn);
                let _ = try_write(conn);
            }
            self.remove_conn(token, CloseReason::Drained);
        }
    }
}

/// Move every response whose turn has come into the write buffer.
fn flush_ready(conn: &mut Conn) {
    while let Some(line) = conn.done.remove(&conn.next_flush) {
        conn.wbuf.extend_from_slice(line.as_bytes());
        conn.wbuf.push(b'\n');
        conn.next_flush += 1;
    }
}

/// Write as much buffered output as the socket accepts right now.
fn try_write(conn: &mut Conn) -> std::io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (64 << 10) {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    Ok(())
}

/// A compute worker: take explore jobs, evaluate, push the rendered
/// response line, wake the loop. Never touches a socket.
fn worker_loop(
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    shared: Arc<Shared>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
) {
    loop {
        // Take the next job; the channel closing means shutdown.
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        // A panicking solve must still produce a completion: the loop's
        // in-flight accounting (and the client) both wait for it.
        let line = catch_unwind(AssertUnwindSafe(|| {
            explore_line(&job.req, &job.id, job.arrival, &shared)
        }))
        .unwrap_or_else(|_| {
            Metrics::bump(&shared.metrics.errors);
            error_response(&job.id, &CredError::Solve("internal error".into()))
        });
        completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Completion {
                token: job.token,
                seq: job.seq,
                line,
            });
        waker.wake();
    }
}

/// Evaluate one explore request and render its response line, keeping
/// the ok/error counters.
fn explore_line(req: &Json, id: &Option<String>, arrival: Instant, shared: &Shared) -> String {
    match handle_explore(req, id, arrival, shared) {
        Ok(resp) => {
            Metrics::bump(&shared.metrics.ok);
            resp
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            if matches!(e, CredError::BudgetExhausted(_)) {
                Metrics::bump(&shared.metrics.budget_exhaustions);
            }
            error_response(id, &e)
        }
    }
}

/// Decode, admit, coalesce, evaluate, render one explore request.
fn handle_explore(
    req: &Json,
    id: &Option<String>,
    arrival: Instant,
    shared: &Shared,
) -> Result<String, CredError> {
    let params = ExploreParams::decode(req, shared)?;
    let deadline = params.deadline.or(shared.default_deadline);

    // Admission: a request that overstayed its deadline in the queue is
    // rejected before any solver runs.
    check_deadline(arrival, deadline)?;

    let request = ExploreRequest::new(params.graph)
        .max_f(params.max_f)
        .trip_count(params.n)
        .mode(params.mode)
        .cancel(shared.master_cancel.clone());
    let request = match params.machine {
        Some(m) => request.machine(m),
        None => request,
    };
    let request = match params.max_registers {
        Some(cap) => request.max_registers(cap),
        None => request,
    };
    let request = match deadline {
        Some(d) => request.deadline(d),
        None => request,
    };
    let request = match params.work_limit {
        Some(w) => request.work_limit(w),
        None => request,
    };
    let key = request.coalesce_key();
    let delay = params.debug_delay_ms.map(Duration::from_millis);
    let (result, role) = shared.coalescer.run(key, || {
        if let Some(d) = delay {
            // Test hook: hold the flight open so concurrent identical
            // requests demonstrably join it.
            std::thread::sleep(d);
        }
        Arc::new(request.run_with(&shared.cache))
    });
    // A joiner must not inherit an outcome shaped by the *leader's*
    // resource limits: the key excludes deadline/work_limit, so a leader
    // whose budget truncated the sweep (or exhausted outright) would hand
    // a spuriously degraded result — or a spurious budget error — to a
    // joiner with a roomier budget. Such outcomes are recomputed under
    // this request's own limits; the leader's surviving work is in the
    // shared cache, so the recompute pays only for what was cut.
    let (result, coalesced) = if role == Role::Joined && budget_tainted(&result) {
        Metrics::bump(&shared.metrics.explore_computes);
        Metrics::bump(&shared.metrics.coalesce_recomputes);
        (Arc::new(request.run_with(&shared.cache)), false)
    } else {
        match role {
            Role::Led => Metrics::bump(&shared.metrics.explore_computes),
            Role::Joined => Metrics::bump(&shared.metrics.coalesced_joins),
        }
        (result, role == Role::Joined)
    };

    // The deadline is anchored at arrival: a computation that finished
    // too late — queued, coalesced onto a slow flight, or just slow — is
    // an exhaustion, not a success.
    check_deadline(arrival, deadline)?;

    let resp = match result.as_ref() {
        Ok(resp) => resp,
        Err(e) => return Err(e.clone()),
    };
    // Accumulate per-point fallout before the strict check, so strict
    // requests that observe degradation still show up in the counters
    // meant to track it.
    let degraded = resp.degradations().len();
    shared
        .metrics
        .degraded_points
        .fetch_add(degraded as u64, Ordering::Relaxed);
    shared
        .metrics
        .failed_points
        .fetch_add(resp.failures().len() as u64, Ordering::Relaxed);
    if params.strict && degraded > 0 {
        return Err(CredError::DegradedUnderStrict { degraded });
    }
    shared.metrics.explore_latency.record(arrival.elapsed());
    Ok(render_explore(
        id,
        resp,
        coalesced,
        params.schema_version,
        params.debug_pad_bytes.unwrap_or(0) as usize,
        shared,
    ))
}

/// Whether a shared explore outcome depends on the resource limits of the
/// request that computed it — a budget-exhausted error, or a success
/// containing exhaustion-caused degradations. Equal coalesce keys only
/// guarantee bit-identical responses under budgets that never bind, so
/// these outcomes must not be served to a coalesce joiner.
fn budget_tainted(outcome: &Result<ExploreResponse, CredError>) -> bool {
    match outcome {
        Err(e) => matches!(e, CredError::BudgetExhausted(_)),
        Ok(resp) => resp
            .degradations()
            .iter()
            .any(|ev| matches!(ev.cause, DegradeCause::Exhausted(_))),
    }
}

fn check_deadline(arrival: Instant, deadline: Option<Duration>) -> Result<(), CredError> {
    match deadline {
        Some(limit) if arrival.elapsed() >= limit => {
            Err(CredError::BudgetExhausted(Exhausted::Deadline { limit }))
        }
        _ => Ok(()),
    }
}

/// The decoded parameters of an explore request.
struct ExploreParams {
    graph: Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    machine: Option<MachineModel>,
    max_registers: Option<usize>,
    /// Wire schema the client asked to be answered in: the current
    /// [`SCHEMA_VERSION`] (the default) or 2 for the flat legacy shape.
    schema_version: u32,
    strict: bool,
    deadline: Option<Duration>,
    work_limit: Option<u64>,
    debug_delay_ms: Option<u64>,
    debug_pad_bytes: Option<u64>,
}

impl ExploreParams {
    fn decode(req: &Json, shared: &Shared) -> Result<ExploreParams, CredError> {
        let graph = match (
            req.get("kernel").and_then(Json::as_str),
            req.get("source").and_then(Json::as_str),
        ) {
            (Some(_), Some(_)) => {
                return Err(CredError::Protocol(
                    "give either \"kernel\" or \"source\", not both".into(),
                ))
            }
            (Some(name), None) => shared
                .kernels
                .get(name)
                .cloned()
                .ok_or_else(|| CredError::Protocol(format!("unknown kernel {name:?}")))?,
            (None, Some(src)) => ExploreRequest::from_source(src)?.graph().clone(),
            (None, None) => {
                return Err(CredError::Protocol(
                    "explore needs a \"kernel\" name or a \"source\"".into(),
                ))
            }
        };
        let max_f = match req.get("max_f") {
            None => 4,
            Some(v) => match v.as_u64() {
                Some(f) if (1..=MAX_MAX_F as u64).contains(&f) => f as usize,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "max_f must be an integer in 1..={MAX_MAX_F}"
                    )))
                }
            },
        };
        let n = match req.get("n") {
            None => 101,
            Some(v) => match v.as_u64() {
                Some(n) if (1..=MAX_N).contains(&n) => n,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "n must be an integer in 1..={MAX_N}"
                    )))
                }
            },
        };
        let mode = match req.get("mode") {
            None => DecMode::Bulk,
            Some(v) => match v.as_str() {
                Some("bulk") => DecMode::Bulk,
                Some("per-copy") => DecMode::PerCopy,
                _ => {
                    return Err(CredError::Protocol(
                        "mode must be \"bulk\" or \"per-copy\"".into(),
                    ))
                }
            },
        };
        let machine = match req.get("machine") {
            None => None,
            Some(v) => match v.as_str().and_then(MachineModel::builtin) {
                Some(m) => Some(m),
                None => {
                    return Err(CredError::Protocol(format!(
                        "machine must be one of {:?}",
                        MachineModel::BUILTIN_NAMES
                    )))
                }
            },
        };
        let max_registers = match req.get("max_registers") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(cap) => Some(cap as usize),
                None => {
                    return Err(CredError::Protocol(
                        "max_registers must be a non-negative integer".into(),
                    ))
                }
            },
        };
        let schema_version = match req.get("schema_version") {
            None => SCHEMA_VERSION,
            Some(v) => match v.as_u64() {
                Some(2) => 2,
                Some(n) if n == SCHEMA_VERSION as u64 => SCHEMA_VERSION,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "schema_version must be 2 or {SCHEMA_VERSION}"
                    )))
                }
            },
        };
        let strict = match req.get("strict") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| CredError::Protocol("strict must be a boolean".into()))?,
        };
        let deadline = match req.get("deadline_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms >= 1 => Some(Duration::from_millis(ms)),
                _ => {
                    return Err(CredError::Protocol(
                        "deadline_ms must be an integer >= 1".into(),
                    ))
                }
            },
        };
        let work_limit = match req.get("work_limit") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(w) => Some(w),
                None => {
                    return Err(CredError::Protocol(
                        "work_limit must be a non-negative integer".into(),
                    ))
                }
            },
        };
        let debug_delay_ms = match req.get("debug_delay_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms <= MAX_DEBUG_DELAY_MS => Some(ms),
                _ => {
                    return Err(CredError::Protocol(format!(
                        "debug_delay_ms must be an integer <= {MAX_DEBUG_DELAY_MS}"
                    )))
                }
            },
        };
        // Test hook like debug_delay_ms: inflate the response with a
        // `pad` field of this many filler bytes, so lifecycle tests can
        // push one response past the write watermarks deterministically.
        let debug_pad_bytes = match req.get("debug_pad_bytes") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(b) if b <= MAX_DEBUG_PAD_BYTES => Some(b),
                _ => {
                    return Err(CredError::Protocol(format!(
                        "debug_pad_bytes must be an integer <= {MAX_DEBUG_PAD_BYTES}"
                    )))
                }
            },
        };
        Ok(ExploreParams {
            graph,
            max_f,
            n,
            mode,
            machine,
            max_registers,
            schema_version,
            strict,
            deadline,
            work_limit,
            debug_delay_ms,
            debug_pad_bytes,
        })
    }
}

fn head(ok: bool, id: &Option<String>) -> String {
    head_versioned(ok, id, SCHEMA_VERSION)
}

/// Response head stamped with an explicit schema version: the explore
/// compatibility path answers `"schema_version": 2` requests under the
/// version the client asked for; everything else uses [`head`].
fn head_versioned(ok: bool, id: &Option<String>, version: u32) -> String {
    let mut s = format!("{{\"ok\":{ok},\"schema_version\":{version}");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(id);
    }
    s
}

fn error_response(id: &Option<String>, e: &CredError) -> String {
    format!(
        "{},\"error\":{{\"code\":{},\"message\":{}}}}}",
        head(false, id),
        json::escape(e.code()),
        json::escape(&e.to_string())
    )
}

fn render_explore(
    id: &Option<String>,
    resp: &ExploreResponse,
    coalesced: bool,
    schema_version: u32,
    pad_bytes: usize,
    shared: &Shared,
) -> String {
    let mut out = head_versioned(true, id, schema_version);
    out.push_str(",\"type\":\"explore\"");
    out.push_str(&format!(",\"coalesced\":{coalesced}"));
    if schema_version == 2 {
        // Legacy shape: flat points and the historical two-axis frontier
        // under the v2 `pareto` key, byte-identical to a v2 server.
        out.push(',');
        out.push_str(&wire_v2_points(resp));
        out.push_str(",\"degraded\":[");
    } else {
        out.push_str(",\"points\":[");
        for (i, p) in resp.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&point_json(p));
        }
        out.push_str("],\"frontier\":[");
        for (i, p) in resp.frontier.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&point_json(p));
        }
        out.push_str("],\"degraded\":[");
    }
    for (i, ev) in resp.degradations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":{},\"cause\":{}}}",
            json::escape(&ev.site),
            json::escape(&ev.cause.to_string())
        ));
    }
    out.push_str("],\"failed\":[");
    for (i, (f, msg)) in resp.failures().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"f\":{},\"message\":{}}}",
            f,
            json::escape(msg)
        ));
    }
    out.push(']');
    // The exact verdict appears only when the request named a machine, so
    // pre-machine clients never see the key.
    if let Some(exact) = &resp.exact {
        out.push_str(",\"exact\":");
        let rendered = if schema_version == 2 {
            exact_json_v2(exact)
        } else {
            exact_json(exact)
        };
        out.push_str(&rendered);
    }
    // Test hook (`debug_pad_bytes`): absent from every real response.
    if pad_bytes > 0 {
        out.push_str(",\"pad\":\"");
        out.extend(std::iter::repeat_n('x', pad_bytes));
        out.push('"');
    }
    // Cache counters are re-read at render time: for the shared cache the
    // response-embedded snapshot inside `resp` may be stale by now.
    let cache = CacheStats::of(&shared.cache);
    out.push_str(&format!(
        ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poison_recoveries\":{}}}}}",
        cache.hits, cache.misses, cache.evictions, cache.poison_recoveries
    ));
    out
}
