//! The evaluation server: NDJSON over TCP, a worker pool, one shared
//! cache, and per-request admission control.
//!
//! # Protocol
//!
//! One JSON object per line, both directions. Requests carry a `"type"`
//! (`ping`, `stats`, `explore`, `shutdown`) and an optional `"id"`, which
//! is echoed verbatim into the response. Every response carries
//! `"ok"` and `"schema_version"`; failures carry
//! `"error": {"code", "message"}` with the stable codes of
//! [`CredError::code`].
//!
//! # Concurrency model
//!
//! The accept loop is non-blocking and hands connections to a fixed pool
//! of worker threads over a channel; each worker owns one connection at a
//! time and polls it with a short read timeout so the shutdown flag is
//! observed within a few hundred milliseconds. Identical concurrent
//! explore requests — same kernel fingerprint, `max_f`, `n`, and mode —
//! coalesce onto one computation ([`crate::coalesce`]); everything the
//! leader computes lands in the process-wide [`SweepCache`] shared by
//! every request thereafter. A leader outcome that was shaped by the
//! leader's own budget (a budget-exhausted error, or exhaustion-caused
//! degradations) is never handed to a joiner, whose limits may differ:
//! the joiner recomputes under its own limits against the shared cache
//! instead (counted as `coalesce_recomputes`).
//!
//! # Admission control
//!
//! A request's deadline is anchored at *arrival* (the moment its line was
//! read), not at solver start: a request that has already overstayed when
//! a worker picks it up — or that finishes its coalesced computation too
//! late — is answered with a typed `budget-exhausted` error rather than a
//! dropped connection or a stale success.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cred_codegen::DecMode;
use cred_dfg::Dfg;
use cred_explore::cache::SweepCache;
use cred_explore::suite::{load_kernels, SCHEMA_VERSION};
use cred_explore::{point_json, CacheStats, CredError, ExploreRequest, ExploreResponse};
use cred_resilience::{CancelToken, DegradeCause, Exhausted};

use crate::coalesce::{Coalescer, Role};
use crate::json::{self, Json};
use crate::metrics::Metrics;

/// Hard cap on one request line. Sources are small; anything beyond this
/// is rejected as a protocol error and the connection closed.
const MAX_LINE_BYTES: usize = 1 << 20;

/// How long a worker blocks in `read` before re-checking the shutdown
/// flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Largest accepted `max_f` (the sweep is exponential in `f`; 16 is far
/// beyond the paper's design space).
const MAX_MAX_F: usize = 16;

/// Largest accepted trip count.
const MAX_N: u64 = 1 << 40;

/// Largest accepted `debug_delay_ms` (a test hook must not wedge a
/// worker for long).
const MAX_DEBUG_DELAY_MS: u64 = 5_000;

/// Server configuration, normally built from `credc serve` flags.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Capacity of the process-wide [`SweepCache`].
    pub cache_capacity: usize,
    /// Default per-request deadline applied when a request names none.
    /// `None` means unlimited.
    pub default_deadline: Option<Duration>,
    /// Directory of `.loop` kernels served by name. `None` disables
    /// named-kernel requests (sources still work).
    pub kernels_dir: Option<PathBuf>,
    /// Where to write a final metrics snapshot on shutdown.
    pub metrics_dump: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            cache_capacity: 1024,
            default_deadline: None,
            kernels_dir: None,
            metrics_dump: None,
        }
    }
}

/// The deduplication key of an explore request
/// ([`ExploreRequest::coalesce_key`]).
type ExploreKey = (u64, usize, u64, u8);

/// The shared outcome of one coalesced explore computation: the leader
/// computes it once, every joiner clones the `Arc`.
type SharedOutcome = Arc<Result<ExploreResponse, CredError>>;

/// Everything the workers share.
struct Shared {
    cache: SweepCache,
    kernels: HashMap<String, Dfg>,
    metrics: Metrics,
    coalescer: Coalescer<ExploreKey, SharedOutcome>,
    shutdown: AtomicBool,
    /// Cancelled on shutdown so in-flight solves stop cooperatively.
    master_cancel: CancelToken,
    default_deadline: Option<Duration>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    metrics_dump: Option<PathBuf>,
}

impl Server {
    /// Bind the listen socket and load the named-kernel table. The
    /// server does not accept connections until [`run`](Self::run).
    pub fn bind(config: ServiceConfig) -> Result<Server, CredError> {
        if config.workers < 1 {
            return Err(CredError::Protocol("workers must be at least 1".into()));
        }
        if config.cache_capacity < 1 {
            return Err(CredError::Protocol(
                "cache capacity must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CredError::Io(format!("bind {}: {e}", config.addr)))?;
        let kernels = match &config.kernels_dir {
            Some(dir) => load_kernels(dir)
                .map_err(|e| CredError::Io(format!("loading kernels: {e}")))?
                .into_iter()
                .collect(),
            None => HashMap::new(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache: SweepCache::with_capacity(config.cache_capacity),
                kernels,
                metrics: Metrics::default(),
                coalescer: Coalescer::new(),
                shutdown: AtomicBool::new(false),
                master_cancel: CancelToken::new(),
                default_deadline: config.default_deadline,
            }),
            workers: config.workers,
            metrics_dump: config.metrics_dump,
        })
    }

    /// The bound address (useful when the config asked for port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve until a `shutdown` request arrives. Returns after
    /// every worker has drained, the master cancel token has fired, and
    /// the optional metrics dump has been written.
    pub fn run(self) -> Result<(), CredError> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cred-service-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .map_err(|e| CredError::Io(format!("spawning worker: {e}")))?,
            );
        }
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // A send can only fail if every worker died, which
                    // only happens on shutdown.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(CredError::Io(format!("accept: {e}"))),
            }
        }
        // Stop in-flight solves, then let workers observe the flag at
        // their next read poll.
        self.shared.master_cancel.cancel();
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.metrics_dump {
            let snap = self
                .shared
                .metrics
                .snapshot(CacheStats::of(&self.shared.cache));
            std::fs::write(path, snap.to_json() + "\n")
                .map_err(|e| CredError::Io(format!("writing {}: {e}", path.display())))?;
        }
        Ok(())
    }
}

fn worker_loop(rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        // Take the next connection; the channel closing means shutdown.
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, &shared),
            Err(_) => return,
        }
    }
}

/// Serve one connection until it closes, errs, oversizes a line, or the
/// server shuts down. Uses manual byte-buffer line splitting: a
/// `BufReader::read_line` would discard a partial line every time the
/// read timeout fires, corrupting pipelined requests.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                // One arrival stamp per read, shared by every line drained
                // from it: a pipelined line must not have its deadline
                // clock start only after its predecessors were handled.
                let arrival = Instant::now();
                // Drain every complete line currently buffered.
                while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=nl).collect();
                    let text = String::from_utf8_lossy(&line[..nl]);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let (response, shutdown) = handle_line(trimmed, arrival, shared);
                    if stream.write_all(response.as_bytes()).is_err()
                        || stream.write_all(b"\n").is_err()
                        || stream.flush().is_err()
                    {
                        return;
                    }
                    if shutdown {
                        shared.shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                if buf.len() > MAX_LINE_BYTES {
                    let e =
                        CredError::Protocol(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                    Metrics::bump(&shared.metrics.requests);
                    Metrics::bump(&shared.metrics.errors);
                    let _ = stream.write_all((error_response(&None, &e) + "\n").as_bytes());
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handle one request line. Returns the response (no trailing newline)
/// and whether the server should shut down after sending it.
fn handle_line(line: &str, arrival: Instant, shared: &Shared) -> (String, bool) {
    Metrics::bump(&shared.metrics.requests);
    let req = match json::parse(line) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            Metrics::bump(&shared.metrics.errors);
            let e = CredError::Protocol("request must be a JSON object".into());
            return (error_response(&None, &e), false);
        }
        Err(msg) => {
            Metrics::bump(&shared.metrics.errors);
            let e = CredError::Protocol(format!("bad JSON: {msg}"));
            return (error_response(&None, &e), false);
        }
    };
    let id = req.get("id").map(Json::to_compact);
    let outcome = match req.get("type").and_then(Json::as_str) {
        Some("ping") => Ok(format!("{},\"type\":\"pong\"}}", head(true, &id))),
        Some("stats") => {
            let snap = shared.metrics.snapshot(CacheStats::of(&shared.cache));
            Ok(format!(
                "{},\"type\":\"stats\",\"stats\":{}}}",
                head(true, &id),
                snap.to_json()
            ))
        }
        Some("shutdown") => {
            let resp = format!("{},\"type\":\"shutdown\"}}", head(true, &id));
            Metrics::bump(&shared.metrics.ok);
            return (resp, true);
        }
        Some("explore") => handle_explore(&req, &id, arrival, shared),
        Some(other) => Err(CredError::Protocol(format!(
            "unknown request type {other:?}"
        ))),
        None => Err(CredError::Protocol("missing request type".into())),
    };
    match outcome {
        Ok(resp) => {
            Metrics::bump(&shared.metrics.ok);
            (resp, false)
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            if matches!(e, CredError::BudgetExhausted(_)) {
                Metrics::bump(&shared.metrics.budget_exhaustions);
            }
            (error_response(&id, &e), false)
        }
    }
}

/// Decode, admit, coalesce, evaluate, render one explore request.
fn handle_explore(
    req: &Json,
    id: &Option<String>,
    arrival: Instant,
    shared: &Shared,
) -> Result<String, CredError> {
    let params = ExploreParams::decode(req, shared)?;
    let deadline = params.deadline.or(shared.default_deadline);

    // Admission: a request that overstayed its deadline in the queue is
    // rejected before any solver runs.
    check_deadline(arrival, deadline)?;

    let request = ExploreRequest::new(params.graph)
        .max_f(params.max_f)
        .trip_count(params.n)
        .mode(params.mode)
        .cancel(shared.master_cancel.clone());
    let request = match deadline {
        Some(d) => request.deadline(d),
        None => request,
    };
    let request = match params.work_limit {
        Some(w) => request.work_limit(w),
        None => request,
    };
    let key = request.coalesce_key();
    let delay = params.debug_delay_ms.map(Duration::from_millis);
    let (result, role) = shared.coalescer.run(key, || {
        if let Some(d) = delay {
            // Test hook: hold the flight open so concurrent identical
            // requests demonstrably join it.
            std::thread::sleep(d);
        }
        Arc::new(request.run_with(&shared.cache))
    });
    // A joiner must not inherit an outcome shaped by the *leader's*
    // resource limits: the key excludes deadline/work_limit, so a leader
    // whose budget truncated the sweep (or exhausted outright) would hand
    // a spuriously degraded result — or a spurious budget error — to a
    // joiner with a roomier budget. Such outcomes are recomputed under
    // this request's own limits; the leader's surviving work is in the
    // shared cache, so the recompute pays only for what was cut.
    let (result, coalesced) = if role == Role::Joined && budget_tainted(&result) {
        Metrics::bump(&shared.metrics.explore_computes);
        Metrics::bump(&shared.metrics.coalesce_recomputes);
        (Arc::new(request.run_with(&shared.cache)), false)
    } else {
        match role {
            Role::Led => Metrics::bump(&shared.metrics.explore_computes),
            Role::Joined => Metrics::bump(&shared.metrics.coalesced_joins),
        }
        (result, role == Role::Joined)
    };

    // The deadline is anchored at arrival: a computation that finished
    // too late — queued, coalesced onto a slow flight, or just slow — is
    // an exhaustion, not a success.
    check_deadline(arrival, deadline)?;

    let resp = match result.as_ref() {
        Ok(resp) => resp,
        Err(e) => return Err(e.clone()),
    };
    // Accumulate per-point fallout before the strict check, so strict
    // requests that observe degradation still show up in the counters
    // meant to track it.
    let degraded = resp.degradations().len();
    shared
        .metrics
        .degraded_points
        .fetch_add(degraded as u64, Ordering::Relaxed);
    shared
        .metrics
        .failed_points
        .fetch_add(resp.failures().len() as u64, Ordering::Relaxed);
    if params.strict && degraded > 0 {
        return Err(CredError::DegradedUnderStrict { degraded });
    }
    shared.metrics.explore_latency.record(arrival.elapsed());
    Ok(render_explore(id, resp, coalesced, shared))
}

/// Whether a shared explore outcome depends on the resource limits of the
/// request that computed it — a budget-exhausted error, or a success
/// containing exhaustion-caused degradations. Equal coalesce keys only
/// guarantee bit-identical responses under budgets that never bind, so
/// these outcomes must not be served to a coalesce joiner.
fn budget_tainted(outcome: &Result<ExploreResponse, CredError>) -> bool {
    match outcome {
        Err(e) => matches!(e, CredError::BudgetExhausted(_)),
        Ok(resp) => resp
            .degradations()
            .iter()
            .any(|ev| matches!(ev.cause, DegradeCause::Exhausted(_))),
    }
}

fn check_deadline(arrival: Instant, deadline: Option<Duration>) -> Result<(), CredError> {
    match deadline {
        Some(limit) if arrival.elapsed() >= limit => {
            Err(CredError::BudgetExhausted(Exhausted::Deadline { limit }))
        }
        _ => Ok(()),
    }
}

/// The decoded parameters of an explore request.
struct ExploreParams {
    graph: Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    strict: bool,
    deadline: Option<Duration>,
    work_limit: Option<u64>,
    debug_delay_ms: Option<u64>,
}

impl ExploreParams {
    fn decode(req: &Json, shared: &Shared) -> Result<ExploreParams, CredError> {
        let graph = match (
            req.get("kernel").and_then(Json::as_str),
            req.get("source").and_then(Json::as_str),
        ) {
            (Some(_), Some(_)) => {
                return Err(CredError::Protocol(
                    "give either \"kernel\" or \"source\", not both".into(),
                ))
            }
            (Some(name), None) => shared
                .kernels
                .get(name)
                .cloned()
                .ok_or_else(|| CredError::Protocol(format!("unknown kernel {name:?}")))?,
            (None, Some(src)) => ExploreRequest::from_source(src)?.graph().clone(),
            (None, None) => {
                return Err(CredError::Protocol(
                    "explore needs a \"kernel\" name or a \"source\"".into(),
                ))
            }
        };
        let max_f = match req.get("max_f") {
            None => 4,
            Some(v) => match v.as_u64() {
                Some(f) if (1..=MAX_MAX_F as u64).contains(&f) => f as usize,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "max_f must be an integer in 1..={MAX_MAX_F}"
                    )))
                }
            },
        };
        let n = match req.get("n") {
            None => 101,
            Some(v) => match v.as_u64() {
                Some(n) if (1..=MAX_N).contains(&n) => n,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "n must be an integer in 1..={MAX_N}"
                    )))
                }
            },
        };
        let mode = match req.get("mode") {
            None => DecMode::Bulk,
            Some(v) => match v.as_str() {
                Some("bulk") => DecMode::Bulk,
                Some("per-copy") => DecMode::PerCopy,
                _ => {
                    return Err(CredError::Protocol(
                        "mode must be \"bulk\" or \"per-copy\"".into(),
                    ))
                }
            },
        };
        let strict = match req.get("strict") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| CredError::Protocol("strict must be a boolean".into()))?,
        };
        let deadline = match req.get("deadline_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms >= 1 => Some(Duration::from_millis(ms)),
                _ => {
                    return Err(CredError::Protocol(
                        "deadline_ms must be an integer >= 1".into(),
                    ))
                }
            },
        };
        let work_limit = match req.get("work_limit") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(w) => Some(w),
                None => {
                    return Err(CredError::Protocol(
                        "work_limit must be a non-negative integer".into(),
                    ))
                }
            },
        };
        let debug_delay_ms = match req.get("debug_delay_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms <= MAX_DEBUG_DELAY_MS => Some(ms),
                _ => {
                    return Err(CredError::Protocol(format!(
                        "debug_delay_ms must be an integer <= {MAX_DEBUG_DELAY_MS}"
                    )))
                }
            },
        };
        Ok(ExploreParams {
            graph,
            max_f,
            n,
            mode,
            strict,
            deadline,
            work_limit,
            debug_delay_ms,
        })
    }
}

fn head(ok: bool, id: &Option<String>) -> String {
    let mut s = format!("{{\"ok\":{ok},\"schema_version\":{SCHEMA_VERSION}");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(id);
    }
    s
}

fn error_response(id: &Option<String>, e: &CredError) -> String {
    format!(
        "{},\"error\":{{\"code\":{},\"message\":{}}}}}",
        head(false, id),
        json::escape(e.code()),
        json::escape(&e.to_string())
    )
}

fn render_explore(
    id: &Option<String>,
    resp: &ExploreResponse,
    coalesced: bool,
    shared: &Shared,
) -> String {
    let mut out = head(true, id);
    out.push_str(",\"type\":\"explore\"");
    out.push_str(&format!(",\"coalesced\":{coalesced}"));
    out.push_str(",\"points\":[");
    for (i, p) in resp.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&point_json(p));
    }
    out.push_str("],\"pareto\":[");
    for (i, p) in resp.pareto.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&point_json(p));
    }
    out.push_str("],\"degraded\":[");
    for (i, ev) in resp.degradations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":{},\"cause\":{}}}",
            json::escape(&ev.site),
            json::escape(&ev.cause.to_string())
        ));
    }
    out.push_str("],\"failed\":[");
    for (i, (f, msg)) in resp.failures().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"f\":{},\"message\":{}}}",
            f,
            json::escape(msg)
        ));
    }
    // Cache counters are re-read at render time: for the shared cache the
    // response-embedded snapshot inside `resp` may be stale by now.
    let cache = CacheStats::of(&shared.cache);
    out.push_str(&format!(
        "],\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poison_recoveries\":{}}}}}",
        cache.hits, cache.misses, cache.evictions, cache.poison_recoveries
    ));
    out
}
