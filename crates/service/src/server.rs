//! The evaluation server: NDJSON over TCP on a nonblocking readiness
//! event loop, a compute-only worker pool, one shared cache, and
//! per-request admission control.
//!
//! # Protocol
//!
//! One JSON object per line, both directions. Requests carry a `"type"`
//! (`ping`, `stats`, `explore`, `shutdown`) and an optional `"id"`, which
//! is echoed verbatim into the response. Every response carries
//! `"ok"` and `"schema_version"`; failures carry
//! `"error": {"code", "message"}` with the stable codes of
//! [`CredError::code`].
//!
//! # Concurrency model
//!
//! One event-loop thread owns the listener and every connection,
//! multiplexed through a level-triggered [`Poller`] (epoll on Linux,
//! `poll(2)` elsewhere) — a connection costs a buffer pair, not a
//! thread, so thousands of concurrent clients are cheap. Each connection
//! is a small state machine: bytes are read nonblockingly into a line
//! buffer, complete lines are parsed on the loop, and cheap requests
//! (`ping`, `stats`, `shutdown`, protocol errors) are answered inline.
//! `explore` requests — the only ones that compute — are handed to a
//! fixed worker pool over a channel; workers never touch sockets, and
//! the loop never computes, so neither can stall the other. A finished
//! worker pushes its rendered response onto a completion queue and wakes
//! the loop through the poller's eventfd/self-pipe [`Waker`].
//!
//! Responses are sequenced per connection: every request takes a ticket
//! when its line is parsed and responses are flushed strictly in ticket
//! order, so pipelined clients observe exactly the ordering a blocking
//! server would have produced. Writes are nonblocking with explicit
//! backpressure: a connection whose unflushed output exceeds a
//! high-water mark stops being read until the client drains it.
//!
//! Identical concurrent explore requests — same kernel fingerprint,
//! `max_f`, `n`, and mode — coalesce onto one computation
//! ([`crate::coalesce`]); everything the leader computes lands in the
//! process-wide [`SweepCache`] shared by every request thereafter. A
//! leader outcome that was shaped by the leader's own budget (a
//! budget-exhausted error, or exhaustion-caused degradations) is never
//! handed to a joiner, whose limits may differ: the joiner recomputes
//! under its own limits against the shared cache instead (counted as
//! `coalesce_recomputes`).
//!
//! # Admission control
//!
//! A request's deadline is anchored at *arrival* (the moment its line was
//! read), not at solver start: a request that has already overstayed when
//! a worker picks it up — or that finishes its coalesced computation too
//! late — is answered with a typed `budget-exhausted` error rather than a
//! dropped connection or a stale success. On top of the deadline, the
//! loop bounds the number of explore requests in flight
//! ([`ServiceConfig::max_in_flight`]): once the bound is reached, further
//! explores are *shed* immediately with a typed `overloaded` error
//! (counted as `shed_requests`) instead of queueing without bound —
//! under overload the server degrades into fast rejections, not growing
//! latency.
//!
//! # Shutdown
//!
//! A `shutdown` request flips the loop into teardown: the response is
//! flushed, the master cancel token stops in-flight solves cooperatively,
//! already-admitted completions are drained briefly, and the worker
//! channel is closed. The loop itself is woken explicitly (it never sits
//! in a sleep-and-poll cycle), so shutdown with idle connections open
//! completes in milliseconds.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cred_codegen::DecMode;
use cred_dfg::Dfg;
use cred_explore::cache::SweepCache;
use cred_explore::suite::{load_kernels, SCHEMA_VERSION};
use cred_exact::MachineModel;
use cred_explore::{exact_json, point_json, CacheStats, CredError, ExploreRequest, ExploreResponse};
use cred_resilience::{CancelToken, DegradeCause, Exhausted};

use crate::coalesce::{Coalescer, Role};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::poller::{Event, Interest, Poller, Waker};

/// Hard cap on one request line. Sources are small; anything beyond this
/// is rejected as a protocol error and the connection closed.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Largest accepted `max_f` (the sweep is exponential in `f`; 16 is far
/// beyond the paper's design space).
const MAX_MAX_F: usize = 16;

/// Largest accepted trip count.
const MAX_N: u64 = 1 << 40;

/// Largest accepted `debug_delay_ms` (a test hook must not wedge a
/// worker for long).
const MAX_DEBUG_DELAY_MS: u64 = 5_000;

/// Registration token of the listen socket (`u64::MAX` is the poller's
/// own wake token; connection tokens count up from zero).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Unflushed-output level above which a connection stops being read
/// (write backpressure engages).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Unflushed-output level below which a paused connection resumes
/// reading.
const WRITE_LOW_WATER: usize = 64 << 10;

/// Absolute cap on unflushed output: a client that stops reading
/// entirely is disconnected rather than buffered forever.
const WRITE_HARD_CAP: usize = 1 << 26;

/// Bytes read per connection per readiness event before yielding to
/// other connections (level-triggered readiness re-fires if more data
/// waits).
const READ_FAIR_SHARE: usize = 64 << 10;

/// Server configuration, normally built from `credc serve` flags.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (the compute pool; connections are not tied to
    /// workers).
    pub workers: usize,
    /// Capacity of the process-wide [`SweepCache`].
    pub cache_capacity: usize,
    /// Default per-request deadline applied when a request names none.
    /// `None` means unlimited.
    pub default_deadline: Option<Duration>,
    /// Directory of `.loop` kernels served by name. `None` disables
    /// named-kernel requests (sources still work).
    pub kernels_dir: Option<PathBuf>,
    /// Where to write a final metrics snapshot on shutdown.
    pub metrics_dump: Option<PathBuf>,
    /// Most explore requests admitted concurrently; beyond this the
    /// server sheds with a typed `overloaded` error.
    pub max_in_flight: usize,
    /// Use the portable `poll(2)` backend even where epoll is available
    /// (exercised by tests; harmless in production, just O(connections)
    /// per wakeup).
    pub force_poll_backend: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            cache_capacity: 1024,
            default_deadline: None,
            kernels_dir: None,
            metrics_dump: None,
            max_in_flight: 512,
            force_poll_backend: false,
        }
    }
}

/// The deduplication key of an explore request
/// ([`ExploreRequest::coalesce_key`]).
type ExploreKey = (u64, usize, u64, u8, u64);

/// The shared outcome of one coalesced explore computation: the leader
/// computes it once, every joiner clones the `Arc`.
type SharedOutcome = Arc<Result<ExploreResponse, CredError>>;

/// Everything the workers and the event loop share.
struct Shared {
    cache: SweepCache,
    kernels: HashMap<String, Dfg>,
    metrics: Metrics,
    coalescer: Coalescer<ExploreKey, SharedOutcome>,
    /// Cancelled on shutdown so in-flight solves stop cooperatively.
    master_cancel: CancelToken,
    default_deadline: Option<Duration>,
}

impl Shared {
    fn stats_snapshot(&self) -> crate::MetricsSnapshot {
        self.metrics.snapshot(
            CacheStats::of(&self.cache),
            self.coalescer.poison_recoveries(),
        )
    }
}

/// One explore request in flight to the worker pool.
struct Job {
    token: u64,
    seq: u64,
    req: Json,
    id: Option<String>,
    arrival: Instant,
}

/// A worker's finished response, routed back to its connection.
struct Completion {
    token: u64,
    seq: u64,
    line: String,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    metrics_dump: Option<PathBuf>,
    max_in_flight: usize,
    force_poll_backend: bool,
}

impl Server {
    /// Bind the listen socket and load the named-kernel table. The
    /// server does not accept connections until [`run`](Self::run).
    pub fn bind(config: ServiceConfig) -> Result<Server, CredError> {
        if config.workers < 1 {
            return Err(CredError::Protocol("workers must be at least 1".into()));
        }
        if config.cache_capacity < 1 {
            return Err(CredError::Protocol(
                "cache capacity must be at least 1".into(),
            ));
        }
        if config.max_in_flight < 1 {
            return Err(CredError::Protocol(
                "max in-flight bound must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CredError::Io(format!("bind {}: {e}", config.addr)))?;
        let kernels = match &config.kernels_dir {
            Some(dir) => load_kernels(dir)
                .map_err(|e| CredError::Io(format!("loading kernels: {e}")))?
                .into_iter()
                .collect(),
            None => HashMap::new(),
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache: SweepCache::with_capacity(config.cache_capacity),
                kernels,
                metrics: Metrics::default(),
                coalescer: Coalescer::new(),
                master_cancel: CancelToken::new(),
                default_deadline: config.default_deadline,
            }),
            workers: config.workers,
            metrics_dump: config.metrics_dump,
            max_in_flight: config.max_in_flight,
            force_poll_backend: config.force_poll_backend,
        })
    }

    /// The bound address (useful when the config asked for port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve until a `shutdown` request arrives. Returns after
    /// in-flight work has been cancelled and drained, every worker has
    /// joined, and the optional metrics dump has been written.
    pub fn run(self) -> Result<(), CredError> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new(self.force_poll_backend)
            .map_err(|e| CredError::Io(format!("poller: {e}")))?;
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            let completions = Arc::clone(&completions);
            let waker = poller.waker();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cred-service-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared, completions, waker))
                    .map_err(|e| CredError::Io(format!("spawning worker: {e}")))?,
            );
        }
        let mut event_loop = EventLoop {
            poller,
            listener: self.listener,
            conns: HashMap::new(),
            next_token: 0,
            tx,
            completions,
            shared: Arc::clone(&self.shared),
            in_flight: 0,
            max_in_flight: self.max_in_flight,
            shutdown: false,
        };
        event_loop
            .poller
            .register(
                event_loop.listener.as_raw_fd(),
                LISTENER_TOKEN,
                Interest::READ,
            )
            .map_err(|e| CredError::Io(format!("registering listener: {e}")))?;
        let result = event_loop.run();
        // Teardown: stop in-flight solves, drain what was already
        // admitted (cancellation makes those finish promptly), flush the
        // last responses, then close the channel and join the pool.
        self.shared.master_cancel.cancel();
        event_loop.drain_in_flight(Duration::from_secs(2));
        event_loop.final_flush(Duration::from_millis(100));
        drop(event_loop);
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.metrics_dump {
            let snap = self.shared.stats_snapshot();
            std::fs::write(path, snap.to_json() + "\n")
                .map_err(|e| CredError::Io(format!("writing {}: {e}", path.display())))?;
        }
        result
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Bytes read but not yet split into lines.
    rbuf: Vec<u8>,
    /// Rendered responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written.
    wpos: usize,
    /// Ticket handed to the next parsed request.
    next_seq: u64,
    /// Ticket whose response must be flushed next.
    next_flush: u64,
    /// Finished responses waiting for their flush turn.
    done: BTreeMap<u64, String>,
    /// Requests of this connection currently in the worker pool.
    outstanding: usize,
    /// Peer sent EOF (or the connection turned protocol-fatal): stop
    /// reading, finish outstanding work, flush, close.
    read_closed: bool,
    /// Reading paused by write backpressure.
    paused: bool,
    /// Fatal error: drop the connection at the next update.
    dead: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// The readiness loop: owns the listener, every connection, and the
/// dispatch side of the worker pool.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    tx: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    shared: Arc<Shared>,
    /// Explore requests dispatched to workers and not yet completed.
    in_flight: usize,
    max_in_flight: usize,
    shutdown: bool,
}

impl EventLoop {
    fn run(&mut self) -> Result<(), CredError> {
        let mut events: Vec<Event> = Vec::new();
        while !self.shutdown {
            // No timeout: every wakeup is an explicit event — socket
            // readiness, a worker completion, or shutdown. The loop
            // never spins.
            let woken = self
                .poller
                .wait(&mut events, None)
                .map_err(|e| CredError::Io(format!("poll wait: {e}")))?;
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                if ev.token == LISTENER_TOKEN {
                    self.accept_all();
                } else {
                    self.handle_conn_event(ev);
                }
                if self.shutdown {
                    break;
                }
            }
            events = batch;
            if woken {
                self.drain_completions();
            }
        }
        Ok(())
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = Interest::READ;
                    if self.poller.register(fd, token, interest).is_err() {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            fd,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            next_seq: 0,
                            next_flush: 0,
                            done: BTreeMap::new(),
                            outstanding: 0,
                            read_closed: false,
                            paused: false,
                            dead: false,
                            interest,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the
                // peer already reset): try again on the next event.
                Err(_) => return,
            }
        }
    }

    fn handle_conn_event(&mut self, ev: &Event) {
        if !self.conns.contains_key(&ev.token) {
            return;
        }
        if ev.readable || ev.hangup {
            self.read_conn(ev.token);
        }
        self.update_conn(ev.token);
    }

    /// Pull bytes (up to a fairness share) and process every complete
    /// line they complete.
    fn read_conn(&mut self, token: u64) {
        let mut chunk = [0u8; 16 << 10];
        let mut taken = 0usize;
        loop {
            let arrival = Instant::now();
            let n = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.read_closed || conn.paused || conn.dead || taken >= READ_FAIR_SHARE {
                    return;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        // A trailing partial line (no newline) is
                        // discarded, as a blocking reader would have.
                        conn.rbuf.clear();
                        return;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        n
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            };
            taken += n;
            // One arrival stamp per read, shared by every line drained
            // from it: a pipelined line must not have its deadline clock
            // start only after its predecessors were handled.
            self.process_lines(token, arrival);
        }
    }

    /// Split the read buffer into complete lines and handle each.
    fn process_lines(&mut self, token: u64, arrival: Instant) {
        loop {
            let line: Vec<u8> = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                match conn.rbuf.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        let line = conn.rbuf.drain(..=nl).collect();
                        line
                    }
                    None => {
                        if conn.rbuf.len() > MAX_LINE_BYTES {
                            // Protocol-fatal: answer with a typed error,
                            // then close once everything already queued
                            // has flushed.
                            let e = CredError::Protocol(format!(
                                "request line exceeds {MAX_LINE_BYTES} bytes"
                            ));
                            Metrics::bump(&self.shared.metrics.requests);
                            Metrics::bump(&self.shared.metrics.errors);
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.done.insert(seq, error_response(&None, &e));
                            conn.read_closed = true;
                            conn.rbuf = Vec::new();
                        }
                        return;
                    }
                }
            };
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                self.handle_line(token, trimmed, arrival);
                if self.shutdown {
                    return;
                }
            }
        }
    }

    /// Handle one request line: cheap requests inline, explores to the
    /// pool (or shed). The response — when already known — is enqueued
    /// at this request's ticket so pipelined responses stay in order.
    fn handle_line(&mut self, token: u64, line: &str, arrival: Instant) {
        let shared = Arc::clone(&self.shared);
        Metrics::bump(&shared.metrics.requests);
        let seq = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            seq
        };
        let req = match json::parse(line) {
            Ok(v @ Json::Obj(_)) => v,
            Ok(_) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol("request must be a JSON object".into());
                self.finish(token, seq, error_response(&None, &e));
                return;
            }
            Err(msg) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol(format!("bad JSON: {msg}"));
                self.finish(token, seq, error_response(&None, &e));
                return;
            }
        };
        let id = req.get("id").map(Json::to_compact);
        match req.get("type").and_then(Json::as_str) {
            Some("ping") => {
                Metrics::bump(&shared.metrics.ok);
                self.finish(
                    token,
                    seq,
                    format!("{},\"type\":\"pong\"}}", head(true, &id)),
                );
            }
            Some("stats") => {
                Metrics::bump(&shared.metrics.ok);
                let snap = shared.stats_snapshot();
                self.finish(
                    token,
                    seq,
                    format!(
                        "{},\"type\":\"stats\",\"stats\":{}}}",
                        head(true, &id),
                        snap.to_json()
                    ),
                );
            }
            Some("shutdown") => {
                Metrics::bump(&shared.metrics.ok);
                self.finish(
                    token,
                    seq,
                    format!("{},\"type\":\"shutdown\"}}", head(true, &id)),
                );
                self.shutdown = true;
            }
            Some("explore") => {
                if self.in_flight >= self.max_in_flight {
                    // Shed instead of queueing: the deadline clock is
                    // already running, and admitting more work than the
                    // pool can start only converts future capacity into
                    // queue latency.
                    Metrics::bump(&shared.metrics.errors);
                    Metrics::bump(&shared.metrics.shed_requests);
                    let e = CredError::Overloaded {
                        limit: self.max_in_flight,
                    };
                    self.finish(token, seq, error_response(&id, &e));
                    return;
                }
                self.in_flight += 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.outstanding += 1;
                }
                // Send can only fail once the pool is gone, which only
                // happens during teardown; the connection is going away
                // with it.
                let _ = self.tx.send(Job {
                    token,
                    seq,
                    req,
                    id,
                    arrival,
                });
            }
            Some(other) => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol(format!("unknown request type {other:?}"));
                self.finish(token, seq, error_response(&id, &e));
            }
            None => {
                Metrics::bump(&shared.metrics.errors);
                let e = CredError::Protocol("missing request type".into());
                self.finish(token, seq, error_response(&id, &e));
            }
        }
    }

    /// Record a finished response at its ticket.
    fn finish(&mut self, token: u64, seq: u64, line: String) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.done.insert(seq, line);
        }
    }

    /// Route every queued worker completion to its connection and flush.
    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut q = self
                .completions
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *q)
        };
        let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
        for c in batch {
            self.in_flight -= 1;
            if let Some(conn) = self.conns.get_mut(&c.token) {
                conn.outstanding -= 1;
                conn.done.insert(c.seq, c.line);
                touched.push(c.token);
            }
        }
        touched.dedup();
        for token in touched {
            self.update_conn(token);
        }
    }

    /// Advance one connection's output state machine: move in-order
    /// responses to the write buffer, write greedily, adjust
    /// backpressure and poller interest, close when finished or dead.
    fn update_conn(&mut self, token: u64) {
        let remove = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            flush_ready(conn);
            if !conn.dead && try_write(conn).is_err() {
                conn.dead = true;
            }
            let unflushed = conn.unflushed();
            if unflushed > WRITE_HARD_CAP {
                conn.dead = true;
            }
            conn.paused = if conn.paused {
                unflushed >= WRITE_LOW_WATER
            } else {
                unflushed >= WRITE_HIGH_WATER
            };
            let finished =
                conn.read_closed && conn.outstanding == 0 && conn.done.is_empty() && unflushed == 0;
            if conn.dead || finished {
                true
            } else {
                let want = Interest {
                    readable: !conn.read_closed && !conn.paused,
                    writable: unflushed > 0,
                };
                if want != conn.interest {
                    conn.interest = want;
                    self.poller.reregister(conn.fd, token, want).is_err()
                } else {
                    false
                }
            }
        };
        if remove {
            self.remove_conn(token);
        }
    }

    fn remove_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // Deregister before the fd closes: the poll(2) backend keeps
            // a userspace table that would otherwise poll a dead fd.
            let _ = self.poller.deregister(conn.fd);
        }
    }

    /// Wait (bounded) for already-admitted explore requests to complete
    /// after shutdown; the master cancel token makes them finish fast.
    /// New socket events are ignored — only completions are drained.
    fn drain_in_flight(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        let mut events: Vec<Event> = Vec::new();
        while self.in_flight > 0 && Instant::now() < deadline {
            match self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)))
            {
                Ok(true) => self.drain_completions(),
                Ok(false) => {}
                Err(_) => return,
            }
        }
    }

    /// Best-effort flush of every connection's remaining output (the
    /// shutdown response, mostly), bounded in time.
    fn final_flush(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            while let Some(conn) = self.conns.get_mut(&token) {
                flush_ready(conn);
                if conn.unflushed() == 0 || try_write(conn).is_err() {
                    break;
                }
                if conn.unflushed() == 0 || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Move every response whose turn has come into the write buffer.
fn flush_ready(conn: &mut Conn) {
    while let Some(line) = conn.done.remove(&conn.next_flush) {
        conn.wbuf.extend_from_slice(line.as_bytes());
        conn.wbuf.push(b'\n');
        conn.next_flush += 1;
    }
}

/// Write as much buffered output as the socket accepts right now.
fn try_write(conn: &mut Conn) -> std::io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (64 << 10) {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    Ok(())
}

/// A compute worker: take explore jobs, evaluate, push the rendered
/// response line, wake the loop. Never touches a socket.
fn worker_loop(
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    shared: Arc<Shared>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
) {
    loop {
        // Take the next job; the channel closing means shutdown.
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        // A panicking solve must still produce a completion: the loop's
        // in-flight accounting (and the client) both wait for it.
        let line = catch_unwind(AssertUnwindSafe(|| {
            explore_line(&job.req, &job.id, job.arrival, &shared)
        }))
        .unwrap_or_else(|_| {
            Metrics::bump(&shared.metrics.errors);
            error_response(&job.id, &CredError::Solve("internal error".into()))
        });
        completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Completion {
                token: job.token,
                seq: job.seq,
                line,
            });
        waker.wake();
    }
}

/// Evaluate one explore request and render its response line, keeping
/// the ok/error counters.
fn explore_line(req: &Json, id: &Option<String>, arrival: Instant, shared: &Shared) -> String {
    match handle_explore(req, id, arrival, shared) {
        Ok(resp) => {
            Metrics::bump(&shared.metrics.ok);
            resp
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            if matches!(e, CredError::BudgetExhausted(_)) {
                Metrics::bump(&shared.metrics.budget_exhaustions);
            }
            error_response(id, &e)
        }
    }
}

/// Decode, admit, coalesce, evaluate, render one explore request.
fn handle_explore(
    req: &Json,
    id: &Option<String>,
    arrival: Instant,
    shared: &Shared,
) -> Result<String, CredError> {
    let params = ExploreParams::decode(req, shared)?;
    let deadline = params.deadline.or(shared.default_deadline);

    // Admission: a request that overstayed its deadline in the queue is
    // rejected before any solver runs.
    check_deadline(arrival, deadline)?;

    let request = ExploreRequest::new(params.graph)
        .max_f(params.max_f)
        .trip_count(params.n)
        .mode(params.mode)
        .cancel(shared.master_cancel.clone());
    let request = match params.machine {
        Some(m) => request.machine(m),
        None => request,
    };
    let request = match deadline {
        Some(d) => request.deadline(d),
        None => request,
    };
    let request = match params.work_limit {
        Some(w) => request.work_limit(w),
        None => request,
    };
    let key = request.coalesce_key();
    let delay = params.debug_delay_ms.map(Duration::from_millis);
    let (result, role) = shared.coalescer.run(key, || {
        if let Some(d) = delay {
            // Test hook: hold the flight open so concurrent identical
            // requests demonstrably join it.
            std::thread::sleep(d);
        }
        Arc::new(request.run_with(&shared.cache))
    });
    // A joiner must not inherit an outcome shaped by the *leader's*
    // resource limits: the key excludes deadline/work_limit, so a leader
    // whose budget truncated the sweep (or exhausted outright) would hand
    // a spuriously degraded result — or a spurious budget error — to a
    // joiner with a roomier budget. Such outcomes are recomputed under
    // this request's own limits; the leader's surviving work is in the
    // shared cache, so the recompute pays only for what was cut.
    let (result, coalesced) = if role == Role::Joined && budget_tainted(&result) {
        Metrics::bump(&shared.metrics.explore_computes);
        Metrics::bump(&shared.metrics.coalesce_recomputes);
        (Arc::new(request.run_with(&shared.cache)), false)
    } else {
        match role {
            Role::Led => Metrics::bump(&shared.metrics.explore_computes),
            Role::Joined => Metrics::bump(&shared.metrics.coalesced_joins),
        }
        (result, role == Role::Joined)
    };

    // The deadline is anchored at arrival: a computation that finished
    // too late — queued, coalesced onto a slow flight, or just slow — is
    // an exhaustion, not a success.
    check_deadline(arrival, deadline)?;

    let resp = match result.as_ref() {
        Ok(resp) => resp,
        Err(e) => return Err(e.clone()),
    };
    // Accumulate per-point fallout before the strict check, so strict
    // requests that observe degradation still show up in the counters
    // meant to track it.
    let degraded = resp.degradations().len();
    shared
        .metrics
        .degraded_points
        .fetch_add(degraded as u64, Ordering::Relaxed);
    shared
        .metrics
        .failed_points
        .fetch_add(resp.failures().len() as u64, Ordering::Relaxed);
    if params.strict && degraded > 0 {
        return Err(CredError::DegradedUnderStrict { degraded });
    }
    shared.metrics.explore_latency.record(arrival.elapsed());
    Ok(render_explore(id, resp, coalesced, shared))
}

/// Whether a shared explore outcome depends on the resource limits of the
/// request that computed it — a budget-exhausted error, or a success
/// containing exhaustion-caused degradations. Equal coalesce keys only
/// guarantee bit-identical responses under budgets that never bind, so
/// these outcomes must not be served to a coalesce joiner.
fn budget_tainted(outcome: &Result<ExploreResponse, CredError>) -> bool {
    match outcome {
        Err(e) => matches!(e, CredError::BudgetExhausted(_)),
        Ok(resp) => resp
            .degradations()
            .iter()
            .any(|ev| matches!(ev.cause, DegradeCause::Exhausted(_))),
    }
}

fn check_deadline(arrival: Instant, deadline: Option<Duration>) -> Result<(), CredError> {
    match deadline {
        Some(limit) if arrival.elapsed() >= limit => {
            Err(CredError::BudgetExhausted(Exhausted::Deadline { limit }))
        }
        _ => Ok(()),
    }
}

/// The decoded parameters of an explore request.
struct ExploreParams {
    graph: Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    machine: Option<MachineModel>,
    strict: bool,
    deadline: Option<Duration>,
    work_limit: Option<u64>,
    debug_delay_ms: Option<u64>,
}

impl ExploreParams {
    fn decode(req: &Json, shared: &Shared) -> Result<ExploreParams, CredError> {
        let graph = match (
            req.get("kernel").and_then(Json::as_str),
            req.get("source").and_then(Json::as_str),
        ) {
            (Some(_), Some(_)) => {
                return Err(CredError::Protocol(
                    "give either \"kernel\" or \"source\", not both".into(),
                ))
            }
            (Some(name), None) => shared
                .kernels
                .get(name)
                .cloned()
                .ok_or_else(|| CredError::Protocol(format!("unknown kernel {name:?}")))?,
            (None, Some(src)) => ExploreRequest::from_source(src)?.graph().clone(),
            (None, None) => {
                return Err(CredError::Protocol(
                    "explore needs a \"kernel\" name or a \"source\"".into(),
                ))
            }
        };
        let max_f = match req.get("max_f") {
            None => 4,
            Some(v) => match v.as_u64() {
                Some(f) if (1..=MAX_MAX_F as u64).contains(&f) => f as usize,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "max_f must be an integer in 1..={MAX_MAX_F}"
                    )))
                }
            },
        };
        let n = match req.get("n") {
            None => 101,
            Some(v) => match v.as_u64() {
                Some(n) if (1..=MAX_N).contains(&n) => n,
                _ => {
                    return Err(CredError::Protocol(format!(
                        "n must be an integer in 1..={MAX_N}"
                    )))
                }
            },
        };
        let mode = match req.get("mode") {
            None => DecMode::Bulk,
            Some(v) => match v.as_str() {
                Some("bulk") => DecMode::Bulk,
                Some("per-copy") => DecMode::PerCopy,
                _ => {
                    return Err(CredError::Protocol(
                        "mode must be \"bulk\" or \"per-copy\"".into(),
                    ))
                }
            },
        };
        let machine = match req.get("machine") {
            None => None,
            Some(v) => match v.as_str().and_then(MachineModel::builtin) {
                Some(m) => Some(m),
                None => {
                    return Err(CredError::Protocol(format!(
                        "machine must be one of {:?}",
                        MachineModel::BUILTIN_NAMES
                    )))
                }
            },
        };
        let strict = match req.get("strict") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| CredError::Protocol("strict must be a boolean".into()))?,
        };
        let deadline = match req.get("deadline_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms >= 1 => Some(Duration::from_millis(ms)),
                _ => {
                    return Err(CredError::Protocol(
                        "deadline_ms must be an integer >= 1".into(),
                    ))
                }
            },
        };
        let work_limit = match req.get("work_limit") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(w) => Some(w),
                None => {
                    return Err(CredError::Protocol(
                        "work_limit must be a non-negative integer".into(),
                    ))
                }
            },
        };
        let debug_delay_ms = match req.get("debug_delay_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) if ms <= MAX_DEBUG_DELAY_MS => Some(ms),
                _ => {
                    return Err(CredError::Protocol(format!(
                        "debug_delay_ms must be an integer <= {MAX_DEBUG_DELAY_MS}"
                    )))
                }
            },
        };
        Ok(ExploreParams {
            graph,
            max_f,
            n,
            mode,
            machine,
            strict,
            deadline,
            work_limit,
            debug_delay_ms,
        })
    }
}

fn head(ok: bool, id: &Option<String>) -> String {
    let mut s = format!("{{\"ok\":{ok},\"schema_version\":{SCHEMA_VERSION}");
    if let Some(id) = id {
        s.push_str(",\"id\":");
        s.push_str(id);
    }
    s
}

fn error_response(id: &Option<String>, e: &CredError) -> String {
    format!(
        "{},\"error\":{{\"code\":{},\"message\":{}}}}}",
        head(false, id),
        json::escape(e.code()),
        json::escape(&e.to_string())
    )
}

fn render_explore(
    id: &Option<String>,
    resp: &ExploreResponse,
    coalesced: bool,
    shared: &Shared,
) -> String {
    let mut out = head(true, id);
    out.push_str(",\"type\":\"explore\"");
    out.push_str(&format!(",\"coalesced\":{coalesced}"));
    out.push_str(",\"points\":[");
    for (i, p) in resp.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&point_json(p));
    }
    out.push_str("],\"pareto\":[");
    for (i, p) in resp.pareto.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&point_json(p));
    }
    out.push_str("],\"degraded\":[");
    for (i, ev) in resp.degradations().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":{},\"cause\":{}}}",
            json::escape(&ev.site),
            json::escape(&ev.cause.to_string())
        ));
    }
    out.push_str("],\"failed\":[");
    for (i, (f, msg)) in resp.failures().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"f\":{},\"message\":{}}}",
            f,
            json::escape(msg)
        ));
    }
    out.push(']');
    // The exact verdict appears only when the request named a machine, so
    // pre-machine clients never see the key.
    if let Some(exact) = &resp.exact {
        out.push_str(",\"exact\":");
        out.push_str(&exact_json(exact));
    }
    // Cache counters are re-read at render time: for the shared cache the
    // response-embedded snapshot inside `resp` may be stale by now.
    let cache = CacheStats::of(&shared.cache);
    out.push_str(&format!(
        ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poison_recoveries\":{}}}}}",
        cache.hits, cache.misses, cache.evictions, cache.poison_recoveries
    ));
    out
}
