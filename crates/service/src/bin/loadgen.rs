//! Load generator for `credc serve`: N concurrent clients against either
//! a running server (`--addr`) or an in-process server it spawns itself.
//!
//! Two arrival models:
//!
//! * **closed-loop** (default): each client sends, waits for the
//!   response, sends again — M requests per client. Latency is measured
//!   send-to-receive. Throughput is bounded by the clients themselves.
//! * **open-loop** (`--rate R`): requests are scheduled on a fixed
//!   global clock — R requests/second spread evenly over the clients —
//!   and each client *pipelines*: it writes on schedule whether or not
//!   earlier responses have arrived, and a separate reader thread drains
//!   responses in order. Latency is measured from the request's
//!   *scheduled* send time, so a server that stalls cannot hide queueing
//!   delay by slowing the arrival clock (no coordinated omission).
//!
//! Every successful response is checked bit-for-bit against a
//! precomputed cold in-process [`ExploreRequest`] table (one entry per
//! kernel, computed once, shared by every client — the oracle cost does
//! not grow with the client count). Typed `overloaded` sheds are counted
//! separately: under deliberate overload they are the server working as
//! designed, not a failure. Any other error is a failure.
//!
//! The sequential baseline is *sampled*: each kernel is cold-solved
//! `--baseline-reps` times and the mean per-kernel cost is extrapolated
//! over the whole request mix, so a million-request run does not pay a
//! million solver calls just to print a comparison.
//!
//! Results land in `BENCH_serve.json` via `--out`, including a log2
//! latency histogram. `--assert-p99-ms` turns the run into a pass/fail
//! check for CI. Exit status is nonzero on any failure, response
//! mismatch, or a busted p99 assertion.
//!
//! `--chaos` turns the run into a fault-injection gauntlet: the clients
//! talk to the server through an in-process [`ChaosProxy`] that splits,
//! delays, stalls, resets, and garbles traffic under a seeded plan per
//! connection (`--chaos-seed`), and every client runs
//! connection-per-request through the [`ResilientClient`] retry stack.
//! The oracle check is the point: every response the client *delivers*
//! must still be bit-identical to the cold in-process solve — a single
//! silent corruption fails the run — and after shutdown the server's
//! close-reason counters must account for every accepted connection.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use cred_explore::suite::{load_kernels, SCHEMA_VERSION};
use cred_explore::{point_json, ExploreRequest};
use cred_service::json::{self, Json};
use cred_service::{
    ChaosProxy, ChaosProxyConfig, ClientConfig, ClientStats, ResilientClient, Server, ServiceConfig,
};

/// Stack size for client threads: an open-loop run at 1000+ clients
/// spawns two threads per client, so the default 8 MiB stacks would
/// reserve gigabytes for threads that only shuffle strings.
const CLIENT_STACK: usize = 128 << 10;

/// How long a client keeps retrying `connect` while a thundering herd
/// overflows the listener backlog.
const CONNECT_RETRY: Duration = Duration::from_secs(10);

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    kernels: PathBuf,
    max_f: usize,
    n: u64,
    /// Open-loop global arrival rate (requests/second across all
    /// clients). `None` = closed-loop.
    rate: Option<f64>,
    /// Cold solves per kernel for the sampled sequential baseline.
    baseline_reps: usize,
    /// Fail the run if the measured p99 exceeds this bound.
    assert_p99_ms: Option<f64>,
    out: Option<PathBuf>,
    shutdown: bool,
    /// Route traffic through a fault-injecting proxy and fail on any
    /// silent corruption.
    chaos: bool,
    /// Base seed for the per-connection chaos plans.
    chaos_seed: u64,
    /// Per-fault arming probability (percent) for chaos plans.
    chaos_trip: u32,
    /// Where the spawned server writes its final metrics snapshot
    /// (chaos mode verifies close-reason accounting from it).
    metrics_dump: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 8,
        requests: 50,
        kernels: PathBuf::from("kernels"),
        max_f: 3,
        n: 100,
        rate: None,
        baseline_reps: 3,
        assert_p99_ms: None,
        out: None,
        shutdown: false,
        chaos: false,
        chaos_seed: 0,
        chaos_trip: 25,
        metrics_dump: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients must be a positive integer".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a positive integer".to_string())?
            }
            "--kernels" => args.kernels = PathBuf::from(value("--kernels")?),
            "--max-unfold" => {
                args.max_f = value("--max-unfold")?
                    .parse()
                    .map_err(|_| "--max-unfold must be a positive integer".to_string())?
            }
            "--n" => {
                args.n = value("--n")?
                    .parse()
                    .map_err(|_| "--n must be a positive integer".to_string())?
            }
            "--rate" => {
                let r: f64 = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate must be a number (req/s)".to_string())?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
                args.rate = Some(r);
            }
            "--baseline-reps" => {
                args.baseline_reps = value("--baseline-reps")?
                    .parse()
                    .map_err(|_| "--baseline-reps must be a non-negative integer".to_string())?
            }
            "--assert-p99-ms" => {
                args.assert_p99_ms = Some(
                    value("--assert-p99-ms")?
                        .parse()
                        .map_err(|_| "--assert-p99-ms must be a number".to_string())?,
                )
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--shutdown" => args.shutdown = true,
            "--chaos" => args.chaos = true,
            "--chaos-seed" => {
                args.chaos_seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|_| "--chaos-seed must be an integer".to_string())?
            }
            "--chaos-trip" => {
                let trip: u32 = value("--chaos-trip")?
                    .parse()
                    .map_err(|_| "--chaos-trip must be an integer percent".to_string())?;
                if trip > 100 {
                    return Err("--chaos-trip must be 0..=100".to_string());
                }
                args.chaos_trip = trip;
            }
            "--metrics-dump" => args.metrics_dump = Some(PathBuf::from(value("--metrics-dump")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients < 1 || args.requests < 1 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    if args.chaos && args.rate.is_some() {
        return Err("--chaos is closed-loop only (drop --rate)".to_string());
    }
    if args.chaos && args.addr.is_some() {
        return Err("--chaos spawns its own server (drop --addr)".to_string());
    }
    Ok(args)
}

/// What one client observed.
#[derive(Default)]
struct ClientReport {
    /// Latency (µs) of each successful response.
    latencies: Vec<u64>,
    ok: u64,
    /// Typed `overloaded` rejections.
    shed: u64,
    failures: Vec<String>,
    /// Delivered responses whose bits differ from the cold solve — the
    /// one thing a chaos run must never see.
    corruptions: Vec<String>,
    /// Retry-stack counters aggregated across the client's requests.
    client_stats: ClientStats,
}

fn connect_with_retry(addr: &str) -> Result<TcpStream, String> {
    let deadline = Instant::now() + CONNECT_RETRY;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Validate one response line against the oracle. Returns `Ok(true)` for
/// a success, `Ok(false)` for a shed, `Err` for anything else.
fn check_response(
    resp: &str,
    id: &str,
    kernel: &str,
    expected: &HashMap<String, String>,
) -> Result<bool, String> {
    if !resp.contains(&format!("\"id\":\"{id}\"")) {
        return Err(format!("response out of order: expected id {id}: {resp}"));
    }
    if resp.contains("\"ok\":true") {
        let want = &expected[kernel];
        if !resp.contains(want.as_str()) {
            return Err(format!(
                "kernel {kernel}: response points differ from the cold run\n  want … {want}"
            ));
        }
        return Ok(true);
    }
    if resp.contains("\"code\":\"overloaded\"") {
        return Ok(false);
    }
    Err(format!("request {id} failed: {}", resp.trim()))
}

/// Closed-loop client on the resilient retry stack: send, wait, repeat.
/// In chaos mode each request rides a fresh connection (and therefore a
/// fresh fault plan); otherwise the connection is reused.
#[allow(clippy::too_many_arguments)]
fn client_closed_loop(
    addr: &str,
    client_id: usize,
    requests: usize,
    names: &[String],
    expected: &HashMap<String, String>,
    max_f: usize,
    n: u64,
    chaos_seed: Option<u64>,
) -> ClientReport {
    let mut report = ClientReport::default();
    let config = ClientConfig {
        jitter_seed: chaos_seed.unwrap_or(0) ^ (client_id as u64) << 32,
        ..ClientConfig::default()
    };
    let mut client = ResilientClient::new(addr, config);
    for i in 0..requests {
        let name = &names[(client_id * requests + i) % names.len()];
        let id = format!("c{client_id}-{i}");
        let line = format!(
            "{{\"type\":\"explore\",\"id\":\"{id}\",\"kernel\":\"{name}\",\
             \"max_f\":{max_f},\"n\":{n}}}"
        );
        let start = Instant::now();
        let resp = match client.request(&line) {
            Ok(resp) => resp,
            Err(e) => {
                report.failures.push(e.to_string());
                continue;
            }
        };
        let latency = start.elapsed();
        match check_response(&resp, &id, name, expected) {
            Ok(true) => {
                report.ok += 1;
                report.latencies.push(latency.as_micros() as u64);
            }
            Ok(false) => report.shed += 1,
            // The retry stack only delivers parsed, id-matched
            // responses: a delivered "ok" with different bits is a
            // silent corruption, the failure mode chaos runs exist to
            // rule out.
            Err(msg) if resp.contains("\"ok\":true") => report.corruptions.push(msg),
            Err(msg) => report.failures.push(msg),
        }
        if chaos_seed.is_some() {
            client.disconnect();
        }
    }
    report.client_stats = client.stats();
    report
}

/// Open-loop client: a writer (this thread) sends on the global
/// schedule, pipelining; a reader thread drains the in-order responses
/// and anchors each latency at its request's *scheduled* send time.
#[allow(clippy::too_many_arguments)]
fn client_open_loop(
    addr: &str,
    client_id: usize,
    requests: usize,
    names: &[String],
    expected: &HashMap<String, String>,
    max_f: usize,
    n: u64,
    start_at: Instant,
    interval: Duration,
    offset: Duration,
) -> ClientReport {
    let mut report = ClientReport::default();
    let stream = match connect_with_retry(addr) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(e);
            return report;
        }
    };
    let reader_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            report.failures.push(e.to_string());
            return report;
        }
    };
    // The writer tells the reader what it sent and when it was
    // *scheduled*; responses come back in request order per connection.
    let (meta_tx, meta_rx) = mpsc::channel::<(Instant, String, String)>();
    let expected = expected.clone();
    let reader = std::thread::Builder::new()
        .stack_size(CLIENT_STACK)
        .spawn(move || {
            let mut report = ClientReport::default();
            let mut reader = BufReader::new(reader_stream);
            for (scheduled, id, kernel) in meta_rx.iter() {
                let mut resp = String::new();
                match reader.read_line(&mut resp) {
                    Ok(0) => {
                        report.failures.push("server closed the connection".into());
                        return report;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        report.failures.push(format!("read: {e}"));
                        return report;
                    }
                }
                let latency = scheduled.elapsed();
                match check_response(&resp, &id, &kernel, &expected) {
                    Ok(true) => {
                        report.ok += 1;
                        report.latencies.push(latency.as_micros() as u64);
                    }
                    Ok(false) => report.shed += 1,
                    Err(msg) => report.failures.push(msg),
                }
            }
            report
        });
    let reader = match reader {
        Ok(handle) => handle,
        Err(e) => {
            report.failures.push(format!("spawning reader: {e}"));
            return report;
        }
    };
    let mut stream = stream;
    for i in 0..requests {
        let scheduled = start_at + offset + interval * (i as u32);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        // If we are *behind* schedule we send immediately but keep the
        // scheduled instant as the latency anchor: the delay is the
        // system's fault, not the arrival process's.
        let name = &names[(client_id * requests + i) % names.len()];
        let id = format!("c{client_id}-{i}");
        let line = format!(
            "{{\"type\":\"explore\",\"id\":\"{id}\",\"kernel\":\"{name}\",\
             \"max_f\":{max_f},\"n\":{n}}}\n"
        );
        if let Err(e) = stream.write_all(line.as_bytes()) {
            report.failures.push(format!("write: {e}"));
            break;
        }
        if meta_tx.send((scheduled, id, name.clone())).is_err() {
            break; // reader died; its report carries the reason
        }
    }
    drop(meta_tx);
    match reader.join() {
        Ok(mut r) => {
            report.latencies.append(&mut r.latencies);
            report.ok += r.ok;
            report.shed += r.shed;
            report.failures.append(&mut r.failures);
        }
        Err(_) => report.failures.push("reader thread panicked".into()),
    }
    report
}

/// One request on the retry stack (control-plane calls: stats,
/// shutdown). Few attempts — these run against a server that is either
/// healthy or going away.
fn one_request(addr: &str, line: &str) -> Result<String, String> {
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            max_attempts: 3,
            ..ClientConfig::default()
        },
    );
    client.request(line).map_err(|e| e.to_string())
}

/// Parse the server's final metrics snapshot and check the lifecycle
/// invariant: every accepted connection ended in exactly one close
/// reason. Returns the `conns` object as JSON for the report.
fn verify_close_accounting(dump: &std::path::Path) -> Result<String, String> {
    let text = std::fs::read_to_string(dump)
        .map_err(|e| format!("reading metrics dump {}: {e}", dump.display()))?;
    let v = json::parse(&text).map_err(|e| format!("parsing metrics dump: {e}"))?;
    let conns = v
        .get("conns")
        .ok_or_else(|| "metrics dump has no conns object".to_string())?;
    let get = |k: &str| {
        conns
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics dump conns.{k} missing"))
    };
    let accepted = get("accepted")?;
    let sum = get("closed_ok")?
        + get("idle_closed")?
        + get("slow_closed")?
        + get("reset_by_peer")?
        + get("drained")?;
    if accepted != sum {
        return Err(format!(
            "close-reason accounting broken: {accepted} accepted but {sum} accounted: {}",
            conns.to_compact()
        ));
    }
    Ok(conns.to_compact())
}

/// Exact percentile over sorted microsecond latencies.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Log2-bucketed histogram of the latencies (bucket b counts values in
/// `[2^b, 2^(b+1))` µs), trimmed to the last non-empty bucket.
fn log2_histogram(latencies: &[u64]) -> Vec<u64> {
    let mut buckets = vec![0u64; 64];
    let mut top = 0;
    for &us in latencies {
        let b = (63 - us.max(1).leading_zeros()) as usize;
        buckets[b] += 1;
        top = top.max(b);
    }
    buckets.truncate(top + 1);
    buckets
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let kernels = load_kernels(&args.kernels)
        .map_err(|e| format!("loading kernels from {}: {e}", args.kernels.display()))?;
    if kernels.is_empty() {
        return Err(format!("no .loop kernels in {}", args.kernels.display()));
    }
    let names: Vec<String> = kernels.iter().map(|(n, _)| n.clone()).collect();
    let total = args.clients * args.requests;

    // The oracle table: one cold in-process run per *kernel* (not per
    // request), shared read-only by every client thread. A 1000-client
    // run validates a million responses against these few strings.
    let mut expected = HashMap::new();
    let mut kernel_cost = HashMap::new();
    for (name, g) in &kernels {
        let start = Instant::now();
        let resp = ExploreRequest::new(g.clone())
            .max_f(args.max_f)
            .trip_count(args.n)
            .run()
            .map_err(|e| format!("cold run of {name}: {e}"))?;
        let mut cost = start.elapsed();
        let points: Vec<String> = resp.points.iter().map(point_json).collect();
        expected.insert(name.clone(), format!("\"points\":[{}]", points.join(",")));
        // Sampled baseline: a few more cold solves per kernel, averaged.
        for _ in 1..args.baseline_reps.max(1) {
            let start = Instant::now();
            ExploreRequest::new(g.clone())
                .max_f(args.max_f)
                .trip_count(args.n)
                .run()
                .map_err(|e| format!("baseline run of {name}: {e}"))?;
            cost += start.elapsed();
        }
        kernel_cost.insert(
            name.clone(),
            cost.as_secs_f64() / args.baseline_reps.max(1) as f64,
        );
    }

    // Extrapolated sequential baseline: what `total` cold evaluations in
    // a fresh process each would cost in solver time alone, following
    // the exact request mix (round-robin over kernels).
    let baseline_secs: f64 = (0..total)
        .map(|i| kernel_cost[&names[i % names.len()]])
        .sum();

    // Chaos mode checks close-reason accounting from the final metrics
    // snapshot, so the spawned server always dumps one.
    let dump_path = if args.chaos {
        Some(args.metrics_dump.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("cred-loadgen-chaos-{}.json", std::process::id()))
        }))
    } else {
        args.metrics_dump.clone()
    };

    // Target server: the given address, or one spawned in-process.
    let (addr, server_thread) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServiceConfig {
                addr: "127.0.0.1:0".to_string(),
                kernels_dir: Some(args.kernels.clone()),
                metrics_dump: dump_path.clone(),
                ..ServiceConfig::default()
            })
            .map_err(|e| format!("spawning server: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("local addr: {e}"))?
                .to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    // In chaos mode the clients talk through the fault-injecting proxy;
    // control-plane calls (stats, shutdown) go straight to the server.
    let proxy = if args.chaos {
        let upstream = addr
            .parse()
            .map_err(|e| format!("parsing server addr {addr}: {e}"))?;
        Some(
            ChaosProxy::spawn(
                upstream,
                ChaosProxyConfig {
                    seed: args.chaos_seed,
                    trip_percent: args.chaos_trip,
                    ..ChaosProxyConfig::default()
                },
            )
            .map_err(|e| format!("spawning chaos proxy: {e}"))?,
        )
    } else {
        None
    };
    let client_addr = proxy
        .as_ref()
        .map_or_else(|| addr.clone(), |p| p.addr().to_string());

    let expected = Arc::new(expected);
    let names = Arc::new(names);
    // Open-loop schedule: `rate` req/s globally, interleaved round-robin
    // over the clients, first arrivals staggered one global tick apart.
    let schedule = args.rate.map(|rate| {
        let interval = Duration::from_secs_f64(args.clients as f64 / rate);
        let tick = Duration::from_secs_f64(1.0 / rate);
        (interval, tick)
    });
    // Give every client time to connect before the clock starts.
    let start_at = Instant::now() + Duration::from_millis(200 + (args.clients / 10) as u64);
    let serve_start = Instant::now();
    let chaos_seed = args.chaos.then_some(args.chaos_seed);
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = client_addr.clone();
            let names = Arc::clone(&names);
            let expected = Arc::clone(&expected);
            let (requests, max_f, n) = (args.requests, args.max_f, args.n);
            std::thread::Builder::new()
                .stack_size(CLIENT_STACK)
                .spawn(move || match schedule {
                    Some((interval, tick)) => client_open_loop(
                        &addr,
                        c,
                        requests,
                        &names,
                        &expected,
                        max_f,
                        n,
                        start_at,
                        interval,
                        tick * (c as u32),
                    ),
                    None => client_closed_loop(
                        &addr, c, requests, &names, &expected, max_f, n, chaos_seed,
                    ),
                })
                .expect("spawning client thread")
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut failures = Vec::new();
    let mut corruptions = Vec::new();
    let mut client_stats = ClientStats::default();
    for h in handles {
        match h.join() {
            Ok(mut r) => {
                latencies.append(&mut r.latencies);
                ok += r.ok;
                shed += r.shed;
                failures.append(&mut r.failures);
                corruptions.append(&mut r.corruptions);
                client_stats.attempts += r.client_stats.attempts;
                client_stats.retries += r.client_stats.retries;
                client_stats.reconnects += r.client_stats.reconnects;
                client_stats.corrupt_responses += r.client_stats.corrupt_responses;
                client_stats.overloaded_retries += r.client_stats.overloaded_retries;
                client_stats.breaker_opens += r.client_stats.breaker_opens;
            }
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    let served = serve_start.elapsed();

    let stats = one_request(&addr, "{\"type\":\"stats\",\"id\":\"loadgen\"}\n")?;
    let shutdown_spawned = server_thread.is_some();
    if args.shutdown || shutdown_spawned {
        one_request(&addr, "{\"type\":\"shutdown\"}\n")?;
    }
    if let Some(t) = server_thread {
        t.join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server: {e}"))?;
    }

    // Chaos post-mortem: proxy injection counters, plus the server's
    // close-reason accounting from its final metrics snapshot.
    let chaos_json = match &proxy {
        Some(p) => {
            let ps = p.stats();
            let dump = dump_path.as_ref().expect("chaos mode always dumps");
            let accounting = verify_close_accounting(dump)?;
            format!(
                "{{ \"seed\": {}, \"trip_percent\": {}, \"plans_sampled\": {}, \
                 \"faulted_connections\": {}, \"resets_injected\": {}, \
                 \"garbage_injected\": {}, \"stalls_injected\": {}, \
                 \"delays_injected\": {}, \"corruptions\": {}, \
                 \"client\": {{ \"attempts\": {}, \"retries\": {}, \"reconnects\": {}, \
                 \"corrupt_responses\": {}, \"overloaded_retries\": {}, \
                 \"breaker_opens\": {} }}, \"close_accounting\": {accounting} }}",
                args.chaos_seed,
                args.chaos_trip,
                ps.connections,
                ps.faulted_connections,
                ps.resets_injected,
                ps.garbage_injected,
                ps.stalls_injected,
                ps.delays_injected,
                corruptions.len(),
                client_stats.attempts,
                client_stats.retries,
                client_stats.reconnects,
                client_stats.corrupt_responses,
                client_stats.overloaded_retries,
                client_stats.breaker_opens,
            )
        }
        None => "null".to_string(),
    };

    latencies.sort_unstable();
    let baseline_rps = total as f64 / baseline_secs;
    let server_rps = ok as f64 / served.as_secs_f64();
    let speedup = server_rps / baseline_rps;
    let p50 = percentile(&latencies, 50.0);
    let p90 = percentile(&latencies, 90.0);
    let p99 = percentile(&latencies, 99.0);
    let max = latencies.last().copied().unwrap_or(0);
    let histogram = log2_histogram(&latencies);
    let histogram_json = histogram
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");

    let (mode, rate_json) = match args.rate {
        Some(r) => ("open-loop", format!("{r:.1}")),
        None if args.chaos => ("chaos", "null".to_string()),
        None => ("closed-loop", "null".to_string()),
    };
    let report = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"mode\": \"{mode}\",\n  \
         \"rate_rps\": {rate_json},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"total_requests\": {total},\n  \
         \"ok\": {ok},\n  \"shed\": {shed},\n  \"failed\": {},\n  \
         \"max_f\": {},\n  \"n\": {},\n  \"kernel_count\": {},\n  \
         \"baseline\": {{ \"seconds\": {:.6}, \"rps\": {:.1}, \"reps_per_kernel\": {} }},\n  \
         \"server\": {{ \"seconds\": {:.6}, \"rps\": {:.1}, \"p50_us\": {p50}, \
         \"p90_us\": {p90}, \"p99_us\": {p99}, \"max_us\": {max} }},\n  \
         \"latency_log2_buckets_us\": [{histogram_json}],\n  \
         \"speedup\": {:.2},\n  \"chaos\": {chaos_json},\n  \"server_stats\": {}\n}}\n",
        args.clients,
        args.requests,
        failures.len(),
        args.max_f,
        args.n,
        names.len(),
        baseline_secs,
        baseline_rps,
        args.baseline_reps.max(1),
        served.as_secs_f64(),
        server_rps,
        speedup,
        // Peel the stats object out of the response envelope: the body
        // is everything after "stats": minus the envelope's final '}'.
        stats
            .split_once("\"stats\":")
            .and_then(|(_, tail)| tail.strip_suffix('}'))
            .map(str::to_string)
            .unwrap_or_else(|| "null".to_string()),
    );

    println!(
        "loadgen ({mode}): {total} requests, {ok} ok, {shed} shed, {} failed, {} corrupted",
        failures.len(),
        corruptions.len()
    );
    if let Some(p) = &proxy {
        let ps = p.stats();
        println!(
            "  chaos (seed {}, trip {}%): {} plans sampled ({} faulted), \
             {} resets, {} garbage, {} stalls, {} delays injected",
            args.chaos_seed,
            args.chaos_trip,
            ps.connections,
            ps.faulted_connections,
            ps.resets_injected,
            ps.garbage_injected,
            ps.stalls_injected,
            ps.delays_injected,
        );
        println!(
            "  client retry stack: {} attempts, {} retries, {} reconnects, \
             {} corrupt responses rejected, {} breaker opens",
            client_stats.attempts,
            client_stats.retries,
            client_stats.reconnects,
            client_stats.corrupt_responses,
            client_stats.breaker_opens,
        );
    }
    println!(
        "  baseline (sequential, cold cache, sampled): {:>8.1} req/s",
        baseline_rps
    );
    println!(
        "  server ({} clients):                        {:>8.1} req/s  \
         (p50 {p50} µs, p90 {p90} µs, p99 {p99} µs)",
        args.clients, server_rps,
    );
    println!("  speedup: {speedup:.2}x");
    if let Some(out) = &args.out {
        std::fs::write(out, &report).map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("  wrote {}", out.display());
    }
    if !corruptions.is_empty() {
        return Err(format!(
            "{} SILENT CORRUPTION(S) — delivered responses differed from the cold solve; \
             first: {}",
            corruptions.len(),
            corruptions[0]
        ));
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} request(s) failed; first: {}",
            failures.len(),
            failures[0]
        ));
    }
    if let Some(bound_ms) = args.assert_p99_ms {
        let p99_ms = p99 as f64 / 1000.0;
        if p99_ms > bound_ms {
            return Err(format!(
                "p99 latency {p99_ms:.3} ms exceeds the asserted bound {bound_ms} ms"
            ));
        }
        println!("  p99 {p99_ms:.3} ms within bound {bound_ms} ms");
    }
    Ok(())
}
