//! Load generator for `credc serve`: N concurrent clients, M requests
//! each, against either a running server (`--addr`) or an in-process
//! server it spawns itself.
//!
//! Reports throughput and exact p50/p99 client-side latency, checks
//! every response bit-for-bit against a cold in-process
//! [`ExploreRequest`] run, and compares against a sequential baseline —
//! the same total number of requests evaluated one at a time with a
//! fresh cache each, i.e. what N separate `credc explore` invocations
//! would do. Results land in `BENCH_serve.json` via `--out`.
//!
//! Exit status is nonzero if any request fails or any response's points
//! differ from the cold run.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cred_explore::suite::{load_kernels, SCHEMA_VERSION};
use cred_explore::{point_json, ExploreRequest};
use cred_service::{Server, ServiceConfig};

struct Args {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    kernels: PathBuf,
    max_f: usize,
    n: u64,
    out: Option<PathBuf>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 8,
        requests: 50,
        kernels: PathBuf::from("kernels"),
        max_f: 3,
        n: 100,
        out: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients must be a positive integer".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a positive integer".to_string())?
            }
            "--kernels" => args.kernels = PathBuf::from(value("--kernels")?),
            "--max-unfold" => {
                args.max_f = value("--max-unfold")?
                    .parse()
                    .map_err(|_| "--max-unfold must be a positive integer".to_string())?
            }
            "--n" => {
                args.n = value("--n")?
                    .parse()
                    .map_err(|_| "--n must be a positive integer".to_string())?
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients < 1 || args.requests < 1 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    Ok(args)
}

/// One client's work: a connection, its share of the request mix, and
/// per-request validation against the expected points.
fn client_run(
    addr: &str,
    client_id: usize,
    requests: usize,
    names: &[String],
    expected: &HashMap<String, String>,
    max_f: usize,
    n: u64,
) -> Result<Vec<Duration>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let name = &names[(client_id * requests + i) % names.len()];
        let line = format!(
            "{{\"type\":\"explore\",\"id\":\"c{client_id}-{i}\",\"kernel\":\"{name}\",\
             \"max_f\":{max_f},\"n\":{n}}}\n"
        );
        let start = Instant::now();
        stream
            .write_all(line.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        let mut resp = String::new();
        reader
            .read_line(&mut resp)
            .map_err(|e| format!("read: {e}"))?;
        latencies.push(start.elapsed());
        if resp.is_empty() {
            return Err("server closed the connection".to_string());
        }
        if !resp.contains("\"ok\":true") {
            return Err(format!("request c{client_id}-{i} failed: {}", resp.trim()));
        }
        let want = &expected[name];
        if !resp.contains(want.as_str()) {
            return Err(format!(
                "kernel {name}: response points differ from the cold run\n  want … {want}"
            ));
        }
    }
    Ok(latencies)
}

fn one_request(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| format!("read: {e}"))?;
    Ok(resp.trim().to_string())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let kernels = load_kernels(&args.kernels)
        .map_err(|e| format!("loading kernels from {}: {e}", args.kernels.display()))?;
    if kernels.is_empty() {
        return Err(format!("no .loop kernels in {}", args.kernels.display()));
    }
    let names: Vec<String> = kernels.iter().map(|(n, _)| n.clone()).collect();

    // Cold in-process runs: the ground truth every server response must
    // match bit-for-bit, and the per-request cost of the baseline.
    let mut expected = HashMap::new();
    for (name, g) in &kernels {
        let resp = ExploreRequest::new(g.clone())
            .max_f(args.max_f)
            .trip_count(args.n)
            .run()
            .map_err(|e| format!("cold run of {name}: {e}"))?;
        let points: Vec<String> = resp.points.iter().map(point_json).collect();
        expected.insert(name.clone(), format!("\"points\":[{}]", points.join(",")));
    }

    let total = args.clients * args.requests;

    // Sequential baseline: `total` cold evaluations, fresh cache each —
    // what issuing the same workload as separate CLI invocations costs
    // in solver time alone (no process spawning, so it flatters the
    // baseline if anything).
    let baseline_start = Instant::now();
    for i in 0..total {
        let (_, g) = &kernels[i % kernels.len()];
        ExploreRequest::new(g.clone())
            .max_f(args.max_f)
            .trip_count(args.n)
            .run()
            .map_err(|e| format!("baseline run: {e}"))?;
    }
    let baseline = baseline_start.elapsed();

    // Target server: the given address, or one spawned in-process.
    let (addr, server_thread) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServiceConfig {
                addr: "127.0.0.1:0".to_string(),
                kernels_dir: Some(args.kernels.clone()),
                ..ServiceConfig::default()
            })
            .map_err(|e| format!("spawning server: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("local addr: {e}"))?
                .to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    let expected = Arc::new(expected);
    let names = Arc::new(names);
    let serve_start = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = addr.clone();
            let names = Arc::clone(&names);
            let expected = Arc::clone(&expected);
            let (requests, max_f, n) = (args.requests, args.max_f, args.n);
            std::thread::spawn(move || client_run(&addr, c, requests, &names, &expected, max_f, n))
        })
        .collect();
    let mut latencies = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(mut l)) => latencies.append(&mut l),
            Ok(Err(msg)) => failures.push(msg),
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    let served = serve_start.elapsed();

    let stats = one_request(&addr, "{\"type\":\"stats\",\"id\":\"loadgen\"}\n")?;
    let shutdown_spawned = server_thread.is_some();
    if args.shutdown || shutdown_spawned {
        one_request(&addr, "{\"type\":\"shutdown\"}\n")?;
    }
    if let Some(t) = server_thread {
        t.join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server: {e}"))?;
    }

    latencies.sort_unstable();
    let baseline_rps = total as f64 / baseline.as_secs_f64();
    let server_rps = total as f64 / served.as_secs_f64();
    let speedup = server_rps / baseline_rps;
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);

    let report = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"total_requests\": {total},\n  \
         \"max_f\": {},\n  \"n\": {},\n  \"kernel_count\": {},\n  \
         \"baseline\": {{ \"seconds\": {:.6}, \"rps\": {:.1} }},\n  \
         \"server\": {{ \"seconds\": {:.6}, \"rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {} }},\n  \
         \"speedup\": {:.2},\n  \"server_stats\": {}\n}}\n",
        args.clients,
        args.requests,
        args.max_f,
        args.n,
        names.len(),
        baseline.as_secs_f64(),
        baseline_rps,
        served.as_secs_f64(),
        server_rps,
        p50.as_micros(),
        p99.as_micros(),
        speedup,
        // Peel the stats object out of the response envelope: the body
        // is everything after "stats": minus the envelope's final '}'.
        stats
            .split_once("\"stats\":")
            .and_then(|(_, tail)| tail.strip_suffix('}'))
            .map(str::to_string)
            .unwrap_or_else(|| "null".to_string()),
    );

    println!(
        "loadgen: {total} requests, {} ok, {} failed",
        latencies.len(),
        failures.len()
    );
    println!(
        "  baseline (sequential, cold cache): {:>8.1} req/s",
        baseline_rps
    );
    println!(
        "  server ({} clients):               {:>8.1} req/s  (p50 {} µs, p99 {} µs)",
        args.clients,
        server_rps,
        p50.as_micros(),
        p99.as_micros()
    );
    println!("  speedup: {speedup:.2}x");
    if let Some(out) = &args.out {
        std::fs::write(out, &report).map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("  wrote {}", out.display());
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} client(s) failed; first: {}",
            failures.len(),
            failures[0]
        ));
    }
    Ok(())
}
