//! Multi-thread properties of the sharded [`SweepCache`]: the per-shard
//! counters must roll up to exactly the totals an unsharded cache would
//! have reported for the same workload, and checksum self-healing must
//! evict *only* the corrupted entry — sharding is an internal layout
//! change, never an observable semantics change.

use cred_dfg::{gen, Dfg};
use cred_explore::cache::SweepCache;
use proptest::prelude::*;

/// Structurally distinct kernels (distinct fingerprints), cheap to solve.
fn graphs(count: usize, depth: u32) -> Vec<Dfg> {
    (0..count)
        .map(|i| gen::chain_with_feedback(4 + i, depth))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_shard_counters_roll_up_to_the_unsharded_totals(
        count in 3..7usize,
        depth in 1..4u32,
        threads in 2..5usize,
        max_f in 1..3usize,
    ) {
        let sharded = SweepCache::with_layout(16, None);
        let gs = graphs(count, depth);
        // Each thread owns a disjoint subset of the kernels, so the
        // per-key hit/miss counts are deterministic even though the
        // threads hammer the cache concurrently.
        std::thread::scope(|s| {
            for t in 0..threads {
                let sharded = &sharded;
                let gs = &gs;
                s.spawn(move || {
                    for (i, g) in gs.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        for f in 1..=max_f {
                            sharded.plan(g, f); // miss
                            sharded.plan(g, f); // hit
                        }
                    }
                });
            }
        });
        // The rollup getters are exactly the sum over shard_stats.
        let (mut hits, mut misses, mut evictions, mut poisons, mut len) =
            (0u64, 0u64, 0u64, 0u64, 0usize);
        for i in 0..sharded.shard_count() {
            let st = sharded.shard_stats(i);
            hits += st.hits;
            misses += st.misses;
            evictions += st.evictions;
            poisons += st.poison_recoveries;
            len += st.len;
        }
        prop_assert_eq!(hits, sharded.hits());
        prop_assert_eq!(misses, sharded.misses());
        prop_assert_eq!(evictions, sharded.evictions());
        prop_assert_eq!(poisons, sharded.poison_recoveries());
        prop_assert_eq!(len, sharded.len());
        // And they equal a serial replay of the same workload on the
        // single-shard (pre-sharding) layout, bit for bit.
        let single = SweepCache::with_layout(1, None);
        for g in &gs {
            for f in 1..=max_f {
                single.plan(g, f);
                single.plan(g, f);
            }
        }
        prop_assert_eq!(sharded.hits(), single.hits());
        prop_assert_eq!(sharded.misses(), single.misses());
        prop_assert_eq!(sharded.evictions(), single.evictions());
        prop_assert_eq!(sharded.len(), single.len());
        prop_assert_eq!(sharded.evictions(), 0, "unbounded caches never evict");
    }

    #[test]
    fn checksum_healing_evicts_only_the_corrupt_entry(
        count in 3..7usize,
        depth in 1..4u32,
        victim in 0..64usize,
    ) {
        let cache = SweepCache::with_layout(8, None);
        let gs = graphs(count, depth);
        for g in &gs {
            for f in 1..=2 {
                cache.plan(g, f);
            }
        }
        let len = cache.len();
        let misses = cache.misses();
        let victim = victim % gs.len();
        let truth = (*cache.plan(&gs[victim], 1)).clone();
        prop_assert!(cache.corrupt_entry_for_test(&gs[victim], 1));
        // Re-plan everything: exactly one lookup — the corrupted one —
        // may go back to the solver; every other entry must still hit.
        for g in &gs {
            for f in 1..=2 {
                cache.plan(g, f);
            }
        }
        prop_assert_eq!(cache.evictions(), 1, "healing evicts one entry");
        prop_assert_eq!(cache.misses(), misses + 1, "one recompute");
        prop_assert_eq!(cache.len(), len, "the healed entry is re-stored");
        // The healed plan is the true plan, and healthy thereafter.
        let healed = (*cache.plan(&gs[victim], 1)).clone();
        prop_assert_eq!(healed, truth);
    }
}
