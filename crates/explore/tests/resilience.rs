//! Chaos-plan integration tests for the explore layer: every fault a
//! plan can inject at the explore sites must surface as a *typed*
//! degradation or an isolated per-point failure — never a hang, never a
//! silently wrong point. Compiled with the `failpoints` feature (see
//! `[dev-dependencies]`), so the registry is live; each test installs its
//! plan under the process-global install lock, which also serializes the
//! tests against each other.
//!
//! These tests double as the pinning suite for the deprecated
//! `par_sweep_resilient` wrapper (fault injection needs its explicit
//! cache + budget plumbing), hence the blanket allow.

#![allow(deprecated)]

use std::sync::Arc;
use std::time::Duration;

use cred_codegen::DecMode;
use cred_dfg::gen;
use cred_explore::cache::{compute_plan, SweepCache};
use cred_explore::{par_sweep_resilient, sweep_reference, ParetoPoint, PointStatus};
use cred_resilience::failpoint::{install, sites, ChaosPlan, FaultAction};
use cred_resilience::{Budget, DegradeCause};

fn sample() -> cred_dfg::Dfg {
    gen::chain_with_feedback(6, 3)
}

/// The expected (fault-free) sweep, for bit-identical comparison.
fn expected_points(g: &cred_dfg::Dfg, max_f: usize) -> Vec<ParetoPoint> {
    sweep_reference(g, max_f, 60, DecMode::Bulk)
}

#[test]
fn injected_solver_error_degrades_to_reference_bit_identically() {
    let g = sample();
    let _guard = install(ChaosPlan::new().trip(sites::EXPLORE_PLAN_FAST, FaultAction::Error));
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 3, 60, DecMode::Bulk, 2, &cache, &Budget::unlimited());
    drop(_guard);
    // Every factor degraded (the fast path is armed), every point exists,
    // and the points match the fault-free sweep exactly.
    assert_eq!(report.degraded().len(), 3, "{report:?}");
    assert!(report.failed().is_empty());
    for o in &report.outcomes {
        match &o.status {
            PointStatus::Degraded(ev) => assert!(
                matches!(ev.cause, DegradeCause::Exhausted(_)),
                "f={} cause: {ev}",
                o.f
            ),
            other => panic!("f={} expected degraded, got {other:?}", o.f),
        }
    }
    assert_eq!(report.points(), expected_points(&g, 3));
}

#[test]
fn injected_solver_panic_degrades_to_reference() {
    let g = sample();
    let _guard = install(ChaosPlan::new().trip(sites::EXPLORE_PLAN_FAST, FaultAction::Panic));
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 2, 60, DecMode::Bulk, 2, &cache, &Budget::unlimited());
    drop(_guard);
    assert_eq!(report.degraded().len(), 2, "{report:?}");
    for o in &report.outcomes {
        match &o.status {
            PointStatus::Degraded(ev) => assert!(
                matches!(ev.cause, DegradeCause::Panicked(_)),
                "f={} cause: {ev}",
                o.f
            ),
            other => panic!("f={} expected degraded, got {other:?}", o.f),
        }
    }
    assert_eq!(report.points(), expected_points(&g, 2));
}

#[test]
fn reference_panic_is_isolated_per_point() {
    let g = sample();
    // Both rungs of the ladder armed: the fast path errors, the reference
    // fallback panics. Nothing is left to absorb the failure, so each
    // point fails — in isolation, with the panic message captured.
    let _guard = install(
        ChaosPlan::new()
            .trip(sites::EXPLORE_PLAN_FAST, FaultAction::Error)
            .trip(sites::EXPLORE_PLAN_REFERENCE, FaultAction::Panic),
    );
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 3, 60, DecMode::Bulk, 2, &cache, &Budget::unlimited());
    drop(_guard);
    assert_eq!(report.failed().len(), 3, "{report:?}");
    assert!(report.points().is_empty());
    for o in &report.outcomes {
        match &o.status {
            PointStatus::Failed(msg) => {
                assert!(msg.contains(sites::EXPLORE_PLAN_REFERENCE), "{msg}")
            }
            other => panic!("f={} expected failed, got {other:?}", o.f),
        }
    }
}

#[test]
fn cache_insert_panic_poisons_and_recovers() {
    let g = sample();
    let cache = SweepCache::new();
    // First lookup panics inside the locked insert section, deliberately
    // poisoning the cache mutex.
    {
        let _guard =
            install(ChaosPlan::new().trip(sites::EXPLORE_CACHE_INSERT, FaultAction::Panic));
        let report = par_sweep_resilient(&g, 1, 60, DecMode::Bulk, 1, &cache, &Budget::unlimited());
        assert_eq!(report.failed().len(), 1, "{report:?}");
    }
    // Plan disarmed; the cache must recover the poisoned lock (clearing
    // the table) and serve correct plans again instead of panicking.
    let plan = cache.plan(&g, 1);
    assert_eq!(*plan, compute_plan(&g, 1));
    assert_eq!(cache.poison_recoveries(), 1);
    // And it keeps memoizing normally afterwards.
    let again = cache.plan(&g, 1);
    assert!(Arc::ptr_eq(&plan, &again));
}

#[test]
fn injected_delay_trips_deadline_into_degradation() {
    let g = sample();
    let _guard = install(ChaosPlan::new().trip(
        sites::RETIME_MIN_PERIOD,
        FaultAction::Delay(Duration::from_millis(50)),
    ));
    // The deadline is far shorter than the injected delay, so the fast
    // path's first post-delay budget check exhausts; the reference
    // fallback (no armed sites) still delivers every point.
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(5));
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 2, 60, DecMode::Bulk, 1, &cache, &budget);
    drop(_guard);
    assert!(report.failed().is_empty(), "{report:?}");
    assert!(
        !report.is_clean(),
        "the delay must have tripped the deadline"
    );
    // Points that were produced are bit-identical to the fault-free sweep.
    let expected = expected_points(&g, 2);
    for o in &report.outcomes {
        if let Some(p) = &o.point {
            assert_eq!(p, &expected[o.f - 1]);
        }
    }
}

#[test]
fn clean_run_with_registry_compiled_in_is_unaffected() {
    // The feature is on but no plan is installed: the resilient sweep
    // must be clean and identical to the plain parallel sweep.
    let g = sample();
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 4, 60, DecMode::Bulk, 3, &cache, &Budget::unlimited());
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.points(), expected_points(&g, 4));
    assert_eq!(cache.poison_recoveries(), 0);
    assert_eq!(cache.evictions(), 0);
}

#[test]
fn work_budget_truncates_sweep_gracefully() {
    let g = sample();
    // A budget generous enough for some factors but shared across the
    // whole sweep: once spent, later factors degrade to the reference
    // solver (exhaustion, not cancellation), and nothing panics.
    let budget = Budget::unlimited().with_work_limit(40);
    let cache = SweepCache::new();
    let report = par_sweep_resilient(&g, 4, 60, DecMode::Bulk, 1, &cache, &budget);
    assert!(report.failed().is_empty(), "{report:?}");
    // Whatever was produced matches the fault-free sweep bit for bit.
    let expected = expected_points(&g, 4);
    for o in &report.outcomes {
        if let Some(p) = &o.point {
            assert_eq!(p, &expected[o.f - 1], "f = {}", o.f);
        }
    }
    // With a shared 40-unit budget at least one factor cannot finish on
    // the fast path.
    assert!(!report.is_clean(), "{report:?}");
}

#[test]
fn cancellation_stops_the_sweep_without_points() {
    let g = sample();
    let tok = cred_resilience::CancelToken::new();
    tok.cancel();
    let budget = Budget::unlimited().with_cancel(tok);
    let report = par_sweep_resilient(&g, 3, 60, DecMode::Bulk, 2, &SweepCache::new(), &budget);
    // Cancellation is not degraded around: every factor reports the
    // typed exhaustion and produces nothing.
    assert!(report.points().is_empty(), "{report:?}");
    assert!(report.failed().is_empty());
    assert_eq!(report.degraded().len(), 3);
}
