//! Property tests for the four-axis Pareto frontier.
//!
//! Two laws pin the frontier semantics:
//!
//! 1. **Non-domination** — every returned [`ParetoPoint`] is undominated
//!    among the cap-eligible points, every *excluded* eligible point is
//!    dominated by some survivor, and order is preserved;
//! 2. **Cap monotonicity** — tightening `max_registers` never improves
//!    the best achievable iteration period (a cap can only remove
//!    options, never add them).

use cred_codegen::DecMode;
use cred_dfg::gen::{self, RandomDfgConfig};
use cred_dfg::Ratio;
use cred_explore::{frontier, sweep_reference, ExploreRequest, ParetoPoint};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.objectives.dominates(&b.objectives)
}

/// Decode an `Option<usize>` cap from a plain integer (the bundled
/// proptest shim has no `option` combinator): 0 = uncapped, k = cap k-1.
fn decode_cap(raw: usize) -> Option<usize> {
    raw.checked_sub(1)
}

fn eligible(p: &ParetoPoint, cap: Option<usize>) -> bool {
    cap.is_none_or(|c| p.objectives.total_registers() <= c)
}

/// Best period reachable under a register cap, straight off the sweep.
fn best_period_under(points: &[ParetoPoint], cap: Option<usize>) -> Option<Ratio> {
    points
        .iter()
        .filter(|p| eligible(p, cap))
        .map(|p| p.objectives.iteration_period)
        .min()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_frontier_point_is_non_dominated(
        seed in 0..u64::MAX,
        nodes in 3..9usize,
        back_edges in 1..3usize,
        max_f in 1..5usize,
        raw_cap in 0..13usize,
    ) {
        let cap = decode_cap(raw_cap);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_dfg(
            &mut rng,
            &RandomDfgConfig { nodes, back_edges, ..Default::default() },
        );
        let points = sweep_reference(&g, max_f, 60, DecMode::Bulk);
        let front = frontier(&points, cap);

        // Every survivor is eligible and undominated by ANY point
        // (dominators outside the cap still count as dominators only if
        // eligible — the frontier is over the eligible subset).
        for p in &front {
            prop_assert!(eligible(p, cap), "over-cap point on the frontier");
            for q in points.iter().filter(|q| eligible(q, cap)) {
                prop_assert!(!dominates(q, p),
                    "frontier point f={} is dominated by f={}", p.f, q.f);
            }
        }
        // Every eligible point left out is dominated by some survivor.
        for q in points.iter().filter(|q| eligible(q, cap)) {
            if !front.contains(q) {
                prop_assert!(front.iter().any(|p| dominates(p, q)),
                    "excluded point f={} has no dominator", q.f);
            }
        }
        // The frontier preserves sweep (factor) order.
        let factors: Vec<_> = front.iter().map(|p| p.f).collect();
        let mut sorted = factors.clone();
        sorted.sort_unstable();
        prop_assert_eq!(factors, sorted);
    }

    #[test]
    fn tightening_the_register_cap_never_improves_the_period(
        seed in 0..u64::MAX,
        nodes in 3..9usize,
        max_f in 1..5usize,
        cap_a in 0..14usize,
        cap_b in 0..14usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_dfg(&mut rng, &RandomDfgConfig { nodes, ..Default::default() });
        let points = sweep_reference(&g, max_f, 60, DecMode::Bulk);
        let (loose, tight) = (cap_a.max(cap_b), cap_a.min(cap_b));
        // Uncapped is at least as fast as any cap, and a looser cap is at
        // least as fast as a tighter one. `None` when the cap excludes
        // everything — which a looser cap can only un-exclude.
        let unbounded = best_period_under(&points, None);
        let under_loose = best_period_under(&points, Some(loose));
        let under_tight = best_period_under(&points, Some(tight));
        match (under_tight, under_loose) {
            (Some(t), Some(l)) => prop_assert!(l <= t, "loosening the cap slowed the loop"),
            (Some(_), None) => prop_assert!(false, "loosening the cap emptied the frontier"),
            _ => {}
        }
        if let (Some(l), Some(u)) = (under_loose, unbounded) {
            prop_assert!(u <= l);
        }
        // The frontier agrees with the raw sweep on the best period.
        let front = frontier(&points, Some(tight));
        prop_assert_eq!(
            front.iter().map(|p| p.objectives.iteration_period).min(),
            under_tight,
            "frontier lost the best eligible period"
        );
    }

    #[test]
    fn response_frontier_matches_the_free_function(
        seed in 0..u64::MAX,
        nodes in 3..8usize,
        raw_cap in 0..11usize,
    ) {
        let cap = decode_cap(raw_cap);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_dfg(&mut rng, &RandomDfgConfig { nodes, ..Default::default() });
        let mut req = ExploreRequest::new(g).max_f(3).trip_count(60);
        if let Some(c) = cap {
            req = req.max_registers(c);
        }
        let resp = req.run().unwrap();
        prop_assert_eq!(&resp.frontier, &frontier(&resp.points, cap));
        // best() comes off the frontier (or is None exactly when empty).
        match resp.best() {
            Some(b) => prop_assert!(resp.frontier.contains(b)),
            None => prop_assert!(resp.frontier.is_empty()),
        }
    }
}
