//! Differential pinning of the `maxlive` objective on the ten committed
//! benchmark kernels: the closed-form modulo-lifetime count that the
//! explore pipeline reports for every sweep point must equal a
//! brute-force liveness replay that materializes each value's live
//! interval over an unrolled window of the steady-state kernel and
//! counts overlaps cycle by cycle.
//!
//! The closed form and the replay share only the schedule (cycle
//! assignments + dependence distances) — the counting logic is fully
//! independent, so agreement on every kernel, factor, and cycle pins the
//! arithmetic (modulo lifetimes, kernel-crossing intervals, rem_euclid
//! wraparound) rather than one implementation against itself.

use std::path::Path;

use cred_explore::cache::compute_plan;
use cred_explore::suite::load_kernels;
use cred_explore::ExploreRequest;
use cred_schedule::KernelSchedule;

#[test]
fn reported_maxlive_matches_brute_force_replay_on_all_committed_kernels() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
    let kernels = load_kernels(&dir).expect("bundled kernels parse");
    assert_eq!(kernels.len(), 10, "the paper suite has ten kernels");
    for (name, g) in &kernels {
        let resp = ExploreRequest::new(g.clone())
            .max_f(3)
            .trip_count(60)
            .run()
            .expect("unlimited sweep");
        assert_eq!(resp.points.len(), 3, "{name}");
        for p in &resp.points {
            // Rebuild the exact kernel schedule the point was measured
            // on: the plan cache is keyed structurally, so this is the
            // same retiming the sweep projected.
            let plan = compute_plan(g, p.f);
            let k = KernelSchedule::sequential(g, &plan.projected, p.f);
            let replayed = k.replay_maxlive();
            assert_eq!(
                p.objectives.maxlive, replayed,
                "{name} f={}: reported maxlive {} != replayed {}",
                p.f, p.objectives.maxlive, replayed
            );
            // Sanity: a kernel with any inter-iteration dependence keeps
            // at least one value live.
            assert!(p.objectives.maxlive >= 1, "{name} f={}", p.f);
        }
    }
}

#[test]
fn maxlive_is_stable_across_factors_on_the_paper_example() {
    // The paper's running example (figure 3): unfolding replicates the
    // kernel body but the steady-state pressure of each copy is the same
    // schedule stretched by f, so maxlive stays within a small band
    // rather than growing linearly with f. Pin the committed values so a
    // regression in the lifetime arithmetic shows up as a diff here.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
    let kernels = load_kernels(&dir).expect("bundled kernels parse");
    let (_, g) = kernels
        .iter()
        .find(|(n, _)| n == "figure3")
        .expect("figure3.loop is committed");
    let resp = ExploreRequest::new(g.clone())
        .max_f(3)
        .trip_count(31)
        .run()
        .unwrap();
    let maxlive: Vec<usize> = resp.points.iter().map(|p| p.objectives.maxlive).collect();
    assert_eq!(maxlive, vec![8, 9, 8], "figure3 maxlive drifted");
}
