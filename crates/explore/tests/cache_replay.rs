//! Satellite of the differential-verification subsystem: a [`SweepCache`]
//! *hit* must hand back a plan whose generated code executes
//! trace-identically to a cold solve — for every bundled kernel and every
//! unfolding factor. A cache that returned a stale or structurally
//! different plan would produce a different guard-state trace even if the
//! final arrays happened to agree.

use cred_codegen::cred::cred_retime_unfold;
use cred_codegen::DecMode;
use cred_explore::cache::{compute_plan, SweepCache};
use cred_explore::suite::load_kernels;
use cred_vm::{execute, trace_loop};
use std::path::Path;

const N: u64 = 60;

#[test]
fn cache_hit_plans_replay_identically_on_all_kernels() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
    let kernels = load_kernels(&dir).unwrap();
    assert_eq!(kernels.len(), 10, "expected the 10 bundled kernels");

    for (name, g) in &kernels {
        for f in 1..=3usize {
            // Cold: a fresh end-to-end solve.
            let cold = compute_plan(g, f);

            // Warm: prime a cache, then take the plan from a hit.
            let cache = SweepCache::new();
            let _primed = cache.plan(g, f);
            let hits_before = cache.hits();
            let warm = cache.plan(g, f);
            assert!(
                cache.hits() > hits_before,
                "{name} f={f}: second lookup must be a cache hit"
            );

            assert_eq!(cold.period, warm.period, "{name} f={f}: period");
            assert_eq!(
                cold.projected, warm.projected,
                "{name} f={f}: projected retiming"
            );

            // Both plans through codegen + CRED collapse + the VM: the
            // guard-state traces and final memories must be identical.
            let p_cold = cred_retime_unfold(g, &cold.projected, f, N, DecMode::Bulk);
            let p_warm = cred_retime_unfold(g, &warm.projected, f, N, DecMode::Bulk);
            assert_eq!(
                trace_loop(&p_cold),
                trace_loop(&p_warm),
                "{name} f={f}: guard-state traces diverge"
            );
            let r_cold = execute(&p_cold).unwrap();
            let r_warm = execute(&p_warm).unwrap();
            assert_eq!(r_cold.arrays, r_warm.arrays, "{name} f={f}: final arrays");
            assert_eq!(r_cold.computes_executed, r_warm.computes_executed);
            assert_eq!(r_cold.computes_nullified, r_warm.computes_nullified);
        }
    }
}
