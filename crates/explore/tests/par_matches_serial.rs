//! Differential tests: the parallel, memoized sweep must be
//! indistinguishable from the serial reference sweep — on random graphs,
//! on every bundled kernel, and through the shared-cache suite runner.
//!
//! These are the deprecated wrappers' own tests: they deliberately call
//! `sweep`/`par_sweep`/...` to pin the wrappers to the [`sweep_reference`]
//! oracle until the wrappers are removed.

#![allow(deprecated)]

use std::path::Path;

use cred_codegen::DecMode;
use cred_dfg::gen::{self, RandomDfgConfig};
use cred_explore::cache::SweepCache;
use cred_explore::suite::load_kernels;
use cred_explore::{
    par_sweep, par_sweep_with, sweep, sweep_cached, sweep_reference, TradeoffPoint,
};

/// The wrappers speak the legacy flat point type; project the reference
/// sweep into it for comparison.
fn flat(points: &[cred_explore::ParetoPoint]) -> Vec<TradeoffPoint> {
    points.iter().map(TradeoffPoint::from).collect()
}
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_sweep_matches_sweep_on_random_dfgs(
        seed in 0..u64::MAX,
        nodes in 3..9usize,
        back_edges in 1..3usize,
        max_f in 1..4usize,
        threads in 1..5usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_dfg(
            &mut rng,
            &RandomDfgConfig {
                nodes,
                back_edges,
                ..Default::default()
            },
        );
        let serial = flat(&sweep_reference(&g, max_f, 60, DecMode::Bulk));
        let wrapped = sweep(&g, max_f, 60, DecMode::Bulk);
        prop_assert_eq!(&serial, &wrapped);
        let parallel = par_sweep(&g, max_f, 60, DecMode::Bulk, threads);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn cached_resweep_is_answered_from_the_memo(
        seed in 0..u64::MAX,
        nodes in 3..8usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_dfg(
            &mut rng,
            &RandomDfgConfig { nodes, ..Default::default() },
        );
        let cache = SweepCache::new();
        let first = sweep_cached(&g, 3, 60, DecMode::PerCopy, &cache);
        let misses_after_first = cache.misses();
        let second = sweep_cached(&g, 3, 60, DecMode::PerCopy, &cache);
        prop_assert_eq!(first, second);
        prop_assert_eq!(cache.misses(), misses_after_first,
            "re-sweeping the same graph must not run the solver again");
        prop_assert!(cache.hits() >= 3);
    }
}

#[test]
fn par_sweep_matches_sweep_on_all_bundled_kernels() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
    let kernels = load_kernels(&dir).expect("bundled kernels parse");
    assert_eq!(kernels.len(), 10);
    let cache = SweepCache::new();
    for (name, g) in &kernels {
        let serial = flat(&sweep_reference(g, 3, 100, DecMode::Bulk));
        assert_eq!(serial, sweep(g, 3, 100, DecMode::Bulk), "kernel {name}");
        for threads in [1, 2, 4, 8] {
            let parallel = par_sweep_with(g, 3, 100, DecMode::Bulk, threads, &cache);
            assert_eq!(serial, parallel, "kernel {name} at {threads} threads");
        }
    }
    // 10 kernels * 3 factors solved once each; the re-runs at higher
    // thread counts all hit the shared cache.
    assert_eq!(cache.misses(), 30);
    assert_eq!(cache.hits(), 90);
}
