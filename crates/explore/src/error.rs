//! The one error type reachable from the `credc` CLI and the evaluation
//! service.
//!
//! Before this module, every layer surfaced its own ad-hoc error carrier:
//! the parser returned its own error type, the CLI stringified everything,
//! the budgeted solvers returned [`Exhausted`], and the service layer had
//! nothing. [`CredError`] unifies the failures a *front end* can observe
//! behind stable machine-readable codes ([`CredError::code`]) used
//! verbatim in service error responses and mapped to process exit codes
//! ([`CredError::exit_code`]) by the CLI. The codes are part of the v1
//! wire schema: renaming one is a breaking protocol change.

use std::fmt;

use cred_resilience::Exhausted;

/// Everything that can go wrong between a request arriving (CLI argv or a
/// service JSON line) and a fully evaluated [`crate::ExploreResponse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredError {
    /// A loop-kernel source failed to parse.
    Parse(String),
    /// A solver or code-generation stage failed outright (even the
    /// reference fallback path could not produce an answer).
    Solve(String),
    /// The request's budget (deadline, work units, or cancellation) was
    /// exhausted before *any* answer was produced. All-or-nothing: a
    /// response that carries points never uses this variant.
    BudgetExhausted(Exhausted),
    /// The request demanded strict (no-degradation) evaluation, but at
    /// least one point was produced by a fallback path.
    DegradedUnderStrict {
        /// How many points degraded.
        degraded: usize,
    },
    /// An I/O failure (socket, file, bind) outside the solve itself.
    Io(String),
    /// A malformed or unsupported request: bad JSON, unknown request
    /// type, out-of-range parameter, unknown named kernel, unsupported
    /// schema version.
    Protocol(String),
    /// The server shed this request at admission: its in-flight bound was
    /// reached, and queueing further work would only grow latency without
    /// bound. The request was valid — retrying later is expected to
    /// succeed.
    Overloaded {
        /// The in-flight bound that was hit.
        limit: usize,
    },
}

impl CredError {
    /// Stable machine-readable code, used as `error.code` in service
    /// responses. Frozen for schema version 1.
    pub fn code(&self) -> &'static str {
        match self {
            CredError::Parse(_) => "parse",
            CredError::Solve(_) => "solve",
            CredError::BudgetExhausted(_) => "budget-exhausted",
            CredError::DegradedUnderStrict { .. } => "degraded-under-strict",
            CredError::Io(_) => "io",
            CredError::Protocol(_) => "protocol",
            CredError::Overloaded { .. } => "overloaded",
        }
    }

    /// Process exit code the CLI maps this error to: 2 for
    /// degraded-under-strict (the answer existed, the road there gave
    /// way), 1 for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            CredError::DegradedUnderStrict { .. } => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredError::Parse(msg) => write!(f, "{msg}"),
            CredError::Solve(msg) => write!(f, "{msg}"),
            CredError::BudgetExhausted(e) => write!(f, "budget exhausted: {e}"),
            CredError::DegradedUnderStrict { degraded } => {
                write!(f, "{degraded} point(s) degraded under strict evaluation")
            }
            CredError::Io(msg) => write!(f, "{msg}"),
            CredError::Protocol(msg) => write!(f, "{msg}"),
            CredError::Overloaded { limit } => {
                write!(f, "server overloaded: {limit} requests already in flight")
            }
        }
    }
}

impl std::error::Error for CredError {}

impl From<Exhausted> for CredError {
    fn from(e: Exhausted) -> Self {
        CredError::BudgetExhausted(e)
    }
}

impl From<std::io::Error> for CredError {
    fn from(e: std::io::Error) -> Self {
        CredError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            CredError::Parse("p".into()),
            CredError::Solve("s".into()),
            CredError::BudgetExhausted(Exhausted::Cancelled),
            CredError::DegradedUnderStrict { degraded: 2 },
            CredError::Io("i".into()),
            CredError::Protocol("x".into()),
            CredError::Overloaded { limit: 256 },
        ];
        let codes: Vec<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "parse",
                "solve",
                "budget-exhausted",
                "degraded-under-strict",
                "io",
                "protocol",
                "overloaded"
            ]
        );
    }

    #[test]
    fn exit_codes_separate_strictness_from_failure() {
        assert_eq!(
            CredError::DegradedUnderStrict { degraded: 1 }.exit_code(),
            2
        );
        assert_eq!(CredError::Parse("x".into()).exit_code(), 1);
        assert_eq!(
            CredError::BudgetExhausted(Exhausted::Cancelled).exit_code(),
            1
        );
    }

    #[test]
    fn displays_render_one_line() {
        for e in [
            CredError::Parse("bad token".into()),
            CredError::BudgetExhausted(Exhausted::WorkUnits { limit: 3 }),
            CredError::DegradedUnderStrict { degraded: 4 },
            CredError::Overloaded { limit: 512 },
        ] {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{s:?}");
        }
    }
}
