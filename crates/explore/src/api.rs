//! The redesigned exploration front door: one request, one response.
//!
//! PRs 1–4 grew five sweep entry points (`sweep`, `sweep_cached`,
//! `par_sweep`, `par_sweep_with`, `par_sweep_resilient`) plus the suite
//! runner, each with a slightly different signature and failure story.
//! [`ExploreRequest`] replaces them all: a builder holding the kernel,
//! the sweep parameters ([`ExploreOptions`]), and the resource limits
//! (deadline / work units / cancellation), evaluated by [`run`] or
//! [`run_with`] into an [`ExploreResponse`] carrying the points, the
//! four-axis non-dominated frontier, the per-factor outcome report, and
//! cache statistics. The CLI, the suite runner, and the evaluation
//! server (`cred-service`) all speak this API; the legacy functions
//! survive only as `#[deprecated]` wrappers.
//!
//! Results are bit-identical across every path: the engine underneath is
//! the resilient sweep of PR 4, whose points are proven equal to the
//! serial reference pipeline by differential tests.
//!
//! The wire helpers at the bottom ([`point_json`], [`exact_json`]) emit
//! the schema v3 shapes; their `_v2` twins reproduce the v2 bytes for
//! the service's compatibility path, so nothing outside this crate
//! needs the deprecated flat point type.
//!
//! [`run`]: ExploreRequest::run
//! [`run_with`]: ExploreRequest::run_with

use std::time::Duration;

use std::panic::{catch_unwind, AssertUnwindSafe};

use cred_codegen::DecMode;
use cred_dfg::Dfg;
use cred_exact::{exact_schedule_budgeted, MachineModel};
use cred_resilience::{Budget, CancelToken, DegradationEvent, DegradeCause, Exhausted};
use cred_schedule::KernelSchedule;

use crate::cache::{PlanSource, SweepCache};
use crate::error::CredError;
use crate::{frontier, resilient_sweep, ParetoPoint, PointStatus, SweepReport};

/// Scalarization weights over the four [`Objectives`] axes, used by
/// [`ExploreResponse::best`] to pick a single recommended point off the
/// frontier. The weights do not change which points are computed or
/// which survive dominance — only the tie-break among survivors — but
/// they are echoed in the response, so they participate in the coalesce
/// key like every other option.
///
/// [`Objectives`]: crate::Objectives
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectiveWeights {
    /// Weight on CRED code size (instructions).
    pub cred_size: u16,
    /// Weight on the iteration period (cycles per iteration).
    pub iteration_period: u16,
    /// Weight on conditional registers (the paper's `P_r`).
    pub cond_registers: u16,
    /// Weight on peak data-register pressure.
    pub maxlive: u16,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        ObjectiveWeights {
            cred_size: 1,
            iteration_period: 1,
            cond_registers: 1,
            maxlive: 1,
        }
    }
}

impl ObjectiveWeights {
    /// The weights packed into one integer, for coalesce keys.
    pub fn packed(&self) -> u64 {
        ((self.cred_size as u64) << 48)
            | ((self.iteration_period as u64) << 32)
            | ((self.cond_registers as u64) << 16)
            | self.maxlive as u64
    }

    /// The weighted scalar cost of one point (lower is better).
    fn score(&self, p: &ParetoPoint) -> f64 {
        self.cred_size as f64 * p.objectives.cred_size as f64
            + self.iteration_period as f64 * p.objectives.iteration_period.to_f64()
            + self.cond_registers as f64 * p.objectives.cond_registers as f64
            + self.maxlive as f64 * p.objectives.maxlive as f64
    }
}

/// The sweep parameters of an [`ExploreRequest`]: everything that shapes
/// *what* is computed (and therefore everything a cache or coalescing key
/// must include), as opposed to the resource limits, which only shape how
/// long the computation may run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Largest unfolding factor to evaluate (`1..=max_f`).
    pub max_f: usize,
    /// Trip count used for the measured program sizes.
    pub n: u64,
    /// Decrement placement mode for the CRED transformation.
    pub mode: DecMode,
    /// Worker threads for the sweep (factors are work-stolen).
    pub threads: usize,
    /// Refuse degraded evaluation: when `true`, a response containing any
    /// degraded point is a [`CredError::DegradedUnderStrict`] via
    /// [`ExploreResponse::strict_violation`].
    pub strict: bool,
    /// Optional machine model: when set, the exact resource-constrained
    /// scheduler additionally proves the kernel's minimum initiation
    /// interval on this machine, reported as
    /// [`ExploreResponse::exact`]. `None` skips the exact pass entirely
    /// (the historical, retiming-only behavior).
    pub machine: Option<MachineModel>,
    /// Cap on total registers (conditional + maxlive): points exceeding
    /// it are excluded from [`ExploreResponse::frontier`] (they still
    /// appear in `points`, so the caller sees what the cap rejected).
    /// `None` leaves the frontier uncapped.
    pub max_registers: Option<usize>,
    /// Scalarization weights for [`ExploreResponse::best`].
    pub weights: ObjectiveWeights,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_f: 4,
            n: 101,
            mode: DecMode::Bulk,
            threads: 1,
            strict: false,
            machine: None,
            max_registers: None,
            weights: ObjectiveWeights::default(),
        }
    }
}

/// A stable small integer per [`DecMode`], for cache and coalescing keys
/// (the enum itself carries no discriminant guarantees we want to lean
/// on in a wire-visible key).
pub fn mode_code(mode: DecMode) -> u8 {
    match mode {
        DecMode::PerCopy => 0,
        DecMode::Bulk => 1,
    }
}

/// One exploration query: a kernel plus options plus resource limits.
///
/// ```
/// use cred_explore::{ExploreRequest, ExploreOptions};
///
/// let g = cred_dfg::gen::chain_with_feedback(6, 3);
/// let resp = ExploreRequest::new(g)
///     .max_f(3)
///     .trip_count(60)
///     .run()
///     .expect("unlimited budget cannot exhaust");
/// assert_eq!(resp.points.len(), 3);
/// assert!(!resp.frontier.is_empty());
/// assert!(resp.report.is_clean());
/// ```
#[derive(Debug)]
pub struct ExploreRequest {
    graph: Dfg,
    opts: ExploreOptions,
    deadline: Option<Duration>,
    work_limit: Option<u64>,
    cancel: Option<CancelToken>,
}

impl ExploreRequest {
    /// A request over `graph` with default [`ExploreOptions`] and no
    /// resource limits.
    pub fn new(graph: Dfg) -> Self {
        ExploreRequest {
            graph,
            opts: ExploreOptions::default(),
            deadline: None,
            work_limit: None,
            cancel: None,
        }
    }

    /// Parse a loop-kernel source into a request.
    pub fn from_source(src: &str) -> Result<Self, CredError> {
        let g = cred_lang::parse(src).map_err(|e| CredError::Parse(e.to_string()))?;
        Ok(Self::new(g))
    }

    /// Replace the whole option block at once.
    pub fn options(mut self, opts: ExploreOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Largest unfolding factor to evaluate.
    pub fn max_f(mut self, max_f: usize) -> Self {
        self.opts.max_f = max_f;
        self
    }

    /// Trip count used for the measured program sizes.
    pub fn trip_count(mut self, n: u64) -> Self {
        self.opts.n = n;
        self
    }

    /// Decrement placement mode.
    pub fn mode(mut self, mode: DecMode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Worker threads for the sweep.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Refuse degraded evaluation (see [`ExploreOptions::strict`]).
    pub fn strict(mut self, strict: bool) -> Self {
        self.opts.strict = strict;
        self
    }

    /// Prove the exact resource-constrained II on `machine` alongside the
    /// sweep (see [`ExploreOptions::machine`]).
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.opts.machine = Some(machine);
        self
    }

    /// Cap total registers for the frontier (see
    /// [`ExploreOptions::max_registers`]).
    pub fn max_registers(mut self, cap: usize) -> Self {
        self.opts.max_registers = Some(cap);
        self
    }

    /// Scalarization weights for [`ExploreResponse::best`].
    pub fn weights(mut self, weights: ObjectiveWeights) -> Self {
        self.opts.weights = weights;
        self
    }

    /// Wall-clock budget for the whole request, measured from
    /// [`run`](Self::run).
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Deterministic work-unit budget for the whole request.
    pub fn work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(limit);
        self
    }

    /// Cooperative cancellation: the caller keeps a clone of `token` and
    /// may cancel the request mid-flight.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The kernel under exploration.
    pub fn graph(&self) -> &Dfg {
        &self.graph
    }

    /// The sweep parameters.
    pub fn opts(&self) -> &ExploreOptions {
        &self.opts
    }

    /// The deduplication key of this request: two requests with equal
    /// keys compute bit-identical responses *as long as no budget binds*,
    /// so a cache or an in-flight coalescer may serve one computation to
    /// both. Deliberately excludes the resource limits and
    /// `threads`/`strict`, which do not affect the computed points — but
    /// that also means an outcome shaped by a binding budget (an
    /// [`CredError::BudgetExhausted`] error, or degradations caused by
    /// [`cred_resilience::Exhausted`]) is specific to the request that
    /// computed it and must not be served to another key-equal request
    /// with different limits; a sharing layer has to recompute those
    /// (see the service's coalescer).
    pub fn coalesce_key(&self) -> (u64, usize, u64, u8, u64, u64, u64) {
        (
            self.graph.fingerprint(),
            self.opts.max_f,
            self.opts.n,
            mode_code(self.opts.mode),
            // 0 = no exact pass requested; a requested machine keys by
            // its structural fingerprint, so two requests naming
            // different machines never share an exact summary.
            self.opts
                .machine
                .as_ref()
                .map_or(0, MachineModel::fingerprint),
            // The register cap shapes the embedded frontier; 0 encodes
            // "uncapped" and real caps are shifted by one.
            self.opts.max_registers.map_or(0, |cap| cap as u64 + 1),
            // The weights only steer `best()`, but they are echoed in
            // the shared response, so weight-distinct requests must not
            // coalesce onto each other.
            self.opts.weights.packed(),
        )
    }

    /// Evaluate with a private, request-local [`SweepCache`].
    pub fn run(&self) -> Result<ExploreResponse, CredError> {
        self.run_with(&SweepCache::new())
    }

    /// Evaluate against a shared [`SweepCache`] (the long-running service
    /// passes one process-wide cache so concurrent clients deduplicate
    /// work by DFG fingerprint).
    ///
    /// Failure modes:
    ///
    /// * `Err(`[`CredError::Protocol`]`)` — unevaluable options
    ///   (`max_f == 0` or `threads == 0`);
    /// * `Err(`[`CredError::BudgetExhausted`]`)` — the budget was gone
    ///   before *any* point was produced (all-or-nothing; a partially
    ///   truncated sweep still returns `Ok` with the surviving points and
    ///   the degradation events saying what was cut);
    /// * `Ok(response)` otherwise — including degraded and failed points,
    ///   which the caller inspects via the response (and
    ///   [`ExploreResponse::strict_violation`] when strictness was
    ///   requested).
    pub fn run_with(&self, cache: &SweepCache) -> Result<ExploreResponse, CredError> {
        if self.opts.max_f < 1 {
            return Err(CredError::Protocol("max_f must be at least 1".into()));
        }
        if self.opts.threads < 1 {
            return Err(CredError::Protocol("threads must be at least 1".into()));
        }
        let mut budget = Budget::unlimited();
        if let Some(d) = self.deadline {
            budget = budget.with_deadline(d);
        }
        if let Some(w) = self.work_limit {
            budget = budget.with_work_limit(w);
        }
        if let Some(tok) = &self.cancel {
            budget = budget.with_cancel(tok.clone());
        }
        // Admission control: a budget that is already gone fails typed,
        // before any solver runs.
        budget.check().map_err(CredError::BudgetExhausted)?;
        let report = resilient_sweep(
            &self.graph,
            self.opts.max_f,
            self.opts.n,
            self.opts.mode,
            self.opts.threads,
            cache,
            &budget,
        );
        let points = report.points();
        if points.is_empty() {
            // Nothing was produced. If any factor was cut off by the
            // budget, the whole request is a typed budget error rather
            // than an empty success.
            let exhausted = report.outcomes.iter().find_map(|o| match &o.status {
                PointStatus::Degraded(ev) => match &ev.cause {
                    DegradeCause::Exhausted(e) => Some(e.clone()),
                    _ => None,
                },
                _ => None,
            });
            if let Some(e) = exhausted {
                return Err(CredError::BudgetExhausted(e));
            }
        }
        let exact = match &self.opts.machine {
            None => None,
            Some(m) => Some(exact_summary(&self.graph, m, &budget)?),
        };
        Ok(ExploreResponse {
            frontier: frontier(&points, self.opts.max_registers),
            points,
            report,
            cache: CacheStats::of(cache),
            opts: self.opts.clone(),
            exact,
        })
    }
}

/// Run the exact scheduler under `budget`, degrading gracefully.
///
/// The ladder mirrors [`crate::cache::compute_plan_budgeted`]:
///
/// 1. run the branch-and-bound search under `budget`; on success the
///    summary carries the proven II *and* the maxlive of the proven
///    modulo schedule;
/// 2. if it exhausts (deadline, work units, injected fault) **or
///    panics**, fall back to the resource-*blind* retiming minimum — the
///    II every machine can only match or exceed — and record a
///    [`DegradationEvent`] in [`ExactSummary::source`] so the caller
///    knows the number is a lower bound, not a proof (no schedule exists
///    on this path, so `maxlive` is absent);
/// 3. cancellation propagates: the caller asked the whole request to
///    stop.
fn exact_summary(g: &Dfg, m: &MachineModel, budget: &Budget) -> Result<ExactSummary, CredError> {
    let cause = match catch_unwind(AssertUnwindSafe(|| exact_schedule_budgeted(g, m, budget))) {
        Ok(Ok(sched)) => {
            let maxlive = KernelSchedule::modulo(g, &sched.slot, &sched.stage, sched.ii)
                .maxlive()
                .maxlive;
            return Ok(ExactSummary {
                machine: m.name.clone(),
                ii: sched.ii,
                maxlive: Some(maxlive),
                source: PlanSource::Solver,
            });
        }
        Ok(Err(Exhausted::Cancelled)) => {
            return Err(CredError::BudgetExhausted(Exhausted::Cancelled))
        }
        Ok(Err(e)) => DegradeCause::Exhausted(e),
        Err(payload) => DegradeCause::Panicked(cred_resilience::panic_message(payload.as_ref())),
    };
    let event = DegradationEvent {
        site: format!("explore.exact machine={}", m.name),
        cause,
    };
    Ok(ExactSummary {
        machine: m.name.clone(),
        ii: cred_retime::min_period_retiming(g).period,
        maxlive: None,
        source: PlanSource::Reference(event),
    })
}

/// The exact scheduler's verdict for one request, reported when
/// [`ExploreOptions::machine`] was set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSummary {
    /// Name of the machine model the II was proven on.
    pub machine: String,
    /// The proven-minimal initiation interval — or, when
    /// [`source`](Self::source) is degraded, the resource-blind retiming
    /// lower bound the ladder fell back to.
    pub ii: u64,
    /// Peak data-register pressure of the proven modulo schedule; absent
    /// when the degradation ladder substituted the unconstrained
    /// fallback (a lower bound has no schedule to measure).
    pub maxlive: Option<usize>,
    /// Whether the exact search finished ([`PlanSource::Solver`]) or the
    /// degradation ladder substituted the unconstrained fallback
    /// ([`PlanSource::Reference`], carrying the event that says why).
    pub source: PlanSource,
}

/// Snapshot of a [`SweepCache`]'s counters. For a request-local cache the
/// numbers describe this request alone; for a shared (service) cache they
/// are process-wide totals at response time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Plan lookups answered from the memo table.
    pub hits: u64,
    /// Plan lookups that ran a solver.
    pub misses: u64,
    /// Entries dropped (LRU bound or checksum self-healing).
    pub evictions: u64,
    /// Lock-poisoning recoveries.
    pub poison_recoveries: u64,
}

impl CacheStats {
    /// Read the counters of `cache` now.
    pub fn of(cache: &SweepCache) -> Self {
        CacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            evictions: cache.evictions(),
            poison_recoveries: cache.poison_recoveries(),
        }
    }
}

/// Everything one evaluated [`ExploreRequest`] produced.
#[derive(Debug, Clone)]
pub struct ExploreResponse {
    /// The produced trade-off points, in factor order. Factors whose
    /// evaluation failed or was cut off by the budget are absent (see
    /// [`report`](Self::report)).
    pub points: Vec<ParetoPoint>,
    /// The non-dominated subset of [`points`](Self::points) over the
    /// four objective axes, capped by
    /// [`ExploreOptions::max_registers`] when one was set.
    pub frontier: Vec<ParetoPoint>,
    /// Per-factor outcomes, including degradation events and isolated
    /// failures.
    pub report: SweepReport,
    /// Cache counters at response time.
    pub cache: CacheStats,
    /// Echo of the options the response was computed under.
    pub opts: ExploreOptions,
    /// Exact-scheduler verdict, present iff the request named a machine.
    pub exact: Option<ExactSummary>,
}

impl ExploreResponse {
    /// The recommended point: the frontier survivor minimizing the
    /// weighted objective sum under [`ExploreOptions::weights`]. `None`
    /// iff the frontier is empty (no points, or the register cap
    /// excluded all of them). Ties resolve to the smallest factor.
    pub fn best(&self) -> Option<&ParetoPoint> {
        let w = &self.opts.weights;
        self.frontier.iter().min_by(|a, b| {
            w.score(a)
                .partial_cmp(&w.score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The degradation events recorded while producing this response.
    pub fn degradations(&self) -> Vec<&DegradationEvent> {
        self.report
            .outcomes
            .iter()
            .filter_map(|o| match &o.status {
                PointStatus::Degraded(ev) => Some(ev),
                _ => None,
            })
            .collect()
    }

    /// The factors whose workers failed even on the fallback path, with
    /// their panic messages.
    pub fn failures(&self) -> Vec<(usize, &str)> {
        self.report
            .outcomes
            .iter()
            .filter_map(|o| match &o.status {
                PointStatus::Failed(msg) => Some((o.f, msg.as_str())),
                _ => None,
            })
            .collect()
    }

    /// When the request demanded strict evaluation and anything degraded,
    /// the error the front end must surface instead of a success.
    pub fn strict_violation(&self) -> Option<CredError> {
        let degraded = self.degradations().len();
        (self.opts.strict && degraded > 0).then_some(CredError::DegradedUnderStrict { degraded })
    }
}

/// Serialize one point in the schema v3 JSON shape shared by the suite
/// report and the service wire format: the sweep coordinates plus a
/// nested `objectives` object.
pub fn point_json(p: &ParetoPoint) -> String {
    format!(
        "{{ \"f\": {}, \"m_r\": {}, \"plain_size\": {}, \"objectives\": {{ \
         \"cred_size\": {}, \"period\": {{ \"num\": {}, \"den\": {} }}, \
         \"cond_registers\": {}, \"maxlive\": {} }} }}",
        p.f,
        p.m_r,
        p.plain_size,
        p.objectives.cred_size,
        p.objectives.iteration_period.num(),
        p.objectives.iteration_period.den(),
        p.objectives.cond_registers,
        p.objectives.maxlive
    )
}

/// Serialize one point in the flat schema v2 shape, byte-identical to
/// what v2 servers emitted. Only the service's v2 compatibility path
/// should need this.
pub fn point_json_v2(p: &ParetoPoint) -> String {
    format!(
        "{{ \"f\": {}, \"m_r\": {}, \"plain_size\": {}, \"cred_size\": {}, \
         \"period\": {{ \"num\": {}, \"den\": {} }}, \"registers\": {} }}",
        p.f,
        p.m_r,
        p.plain_size,
        p.objectives.cred_size,
        p.objectives.iteration_period.num(),
        p.objectives.iteration_period.den(),
        p.objectives.cond_registers
    )
}

/// Render the `"points":[...],"pareto":[...]` fragment of a schema v2
/// explore response, byte-identical to what v2 servers emitted: flat v2
/// points, and the historical two-axis (CRED size, iteration period)
/// frontier under the v2 key name.
#[allow(deprecated)]
pub fn wire_v2_points(resp: &ExploreResponse) -> String {
    let flat: Vec<crate::TradeoffPoint> =
        resp.points.iter().map(crate::TradeoffPoint::from).collect();
    let two_axis = crate::pareto(&flat);
    let fragment = |points: &[crate::TradeoffPoint]| {
        points
            .iter()
            .map(|p| {
                format!(
                    "{{ \"f\": {}, \"m_r\": {}, \"plain_size\": {}, \"cred_size\": {}, \
                     \"period\": {{ \"num\": {}, \"den\": {} }}, \"registers\": {} }}",
                    p.f,
                    p.m_r,
                    p.plain_size,
                    p.cred_size,
                    p.iteration_period.num(),
                    p.iteration_period.den(),
                    p.registers
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "\"points\":[{}],\"pareto\":[{}]",
        fragment(&flat),
        fragment(&two_axis)
    )
}

/// Serialize an [`ExactSummary`] in the schema v3 JSON shape shared by
/// the CLI and the service wire format. `source` renders as `"solver"`
/// or as a degradation object naming the site and cause; `maxlive` is
/// `null` exactly when the source is a fallback.
pub fn exact_json(e: &ExactSummary) -> String {
    let source = match &e.source {
        PlanSource::Solver => "\"solver\"".to_string(),
        PlanSource::Reference(ev) => format!(
            "{{ \"fallback\": \"retiming-lower-bound\", \"site\": {:?}, \"cause\": {:?} }}",
            ev.site,
            ev.cause.to_string()
        ),
    };
    let maxlive = match e.maxlive {
        Some(m) => m.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{ \"machine\": {:?}, \"ii\": {}, \"maxlive\": {}, \"source\": {} }}",
        e.machine, e.ii, maxlive, source
    )
}

/// Serialize an [`ExactSummary`] in the schema v2 shape (no `maxlive`
/// key), byte-identical to what v2 servers emitted.
pub fn exact_json_v2(e: &ExactSummary) -> String {
    let source = match &e.source {
        PlanSource::Solver => "\"solver\"".to_string(),
        PlanSource::Reference(ev) => format!(
            "{{ \"fallback\": \"retiming-lower-bound\", \"site\": {:?}, \"cause\": {:?} }}",
            ev.site,
            ev.cause.to_string()
        ),
    };
    format!(
        "{{ \"machine\": {:?}, \"ii\": {}, \"source\": {} }}",
        e.machine, e.ii, source
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;

    fn sample() -> Dfg {
        gen::chain_with_feedback(6, 3)
    }

    #[test]
    fn request_matches_reference_sweep() {
        let g = sample();
        let resp = ExploreRequest::new(g.clone())
            .max_f(4)
            .trip_count(60)
            .run()
            .unwrap();
        assert_eq!(
            resp.points,
            crate::sweep_reference(&g, 4, 60, DecMode::Bulk)
        );
        assert_eq!(resp.frontier, frontier(&resp.points, None));
        assert!(resp.report.is_clean());
        assert!(resp.degradations().is_empty() && resp.failures().is_empty());
        assert_eq!(resp.cache.misses, 4);
    }

    #[test]
    fn shared_cache_answers_repeat_requests() {
        let g = sample();
        let cache = SweepCache::new();
        let req = ExploreRequest::new(g).max_f(3).trip_count(60);
        let a = req.run_with(&cache).unwrap();
        let b = req.run_with(&cache).unwrap();
        assert_eq!(a.points, b.points);
        assert_eq!(b.cache.misses, 3, "second run must be all hits");
        assert!(b.cache.hits >= 3);
    }

    #[test]
    fn threads_do_not_change_the_answer() {
        let g = sample();
        let serial = ExploreRequest::new(g.clone()).max_f(4).run().unwrap();
        for threads in [2, 4, 8] {
            let par = ExploreRequest::new(g.clone())
                .max_f(4)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(par.points, serial.points, "{threads} threads");
        }
    }

    #[test]
    fn register_cap_shapes_the_frontier_not_the_points() {
        let g = sample();
        let open = ExploreRequest::new(g.clone()).max_f(4).run().unwrap();
        let cap = open
            .points
            .iter()
            .map(|p| p.objectives.total_registers())
            .min()
            .unwrap();
        let capped = ExploreRequest::new(g)
            .max_f(4)
            .max_registers(cap)
            .run()
            .unwrap();
        // Points are the cap-independent sweep; only the frontier shrinks.
        assert_eq!(capped.points, open.points);
        assert!(!capped.frontier.is_empty());
        for p in &capped.frontier {
            assert!(p.objectives.total_registers() <= cap);
        }
        assert!(capped.frontier.len() <= open.points.len());
    }

    #[test]
    fn best_follows_the_weights() {
        let g = sample();
        // All weight on code size: best must minimize cred_size over the
        // frontier. All weight on period: best must minimize the period.
        let size_first = ExploreRequest::new(g.clone())
            .max_f(4)
            .weights(ObjectiveWeights {
                cred_size: 1,
                iteration_period: 0,
                cond_registers: 0,
                maxlive: 0,
            })
            .run()
            .unwrap();
        let b = size_first.best().expect("non-empty frontier");
        let min_size = size_first
            .frontier
            .iter()
            .map(|p| p.objectives.cred_size)
            .min()
            .unwrap();
        assert_eq!(b.objectives.cred_size, min_size);
        let speed_first = ExploreRequest::new(g)
            .max_f(4)
            .weights(ObjectiveWeights {
                cred_size: 0,
                iteration_period: 100,
                cond_registers: 0,
                maxlive: 0,
            })
            .run()
            .unwrap();
        let b = speed_first.best().expect("non-empty frontier");
        let min_period = speed_first
            .frontier
            .iter()
            .map(|p| p.objectives.iteration_period)
            .min()
            .unwrap();
        assert_eq!(b.objectives.iteration_period, min_period);
    }

    #[test]
    fn exhausted_admission_is_a_typed_error() {
        let tok = CancelToken::new();
        tok.cancel();
        let err = ExploreRequest::new(sample()).cancel(tok).run().unwrap_err();
        assert_eq!(err, CredError::BudgetExhausted(Exhausted::Cancelled));
        assert_eq!(err.code(), "budget-exhausted");
    }

    #[test]
    fn zero_work_budget_degrades_but_still_answers() {
        // The degradation ladder falls back to the reference solver, so a
        // starved budget yields a complete, degraded, correct response.
        let g = sample();
        let resp = ExploreRequest::new(g.clone())
            .max_f(2)
            .trip_count(60)
            .work_limit(0)
            .run()
            .unwrap();
        assert_eq!(
            resp.points,
            crate::sweep_reference(&g, 2, 60, DecMode::Bulk)
        );
        assert!(!resp.degradations().is_empty());
        assert!(resp.strict_violation().is_none(), "not strict by default");
    }

    #[test]
    fn strict_surfaces_degradation_as_error() {
        let resp = ExploreRequest::new(sample())
            .max_f(2)
            .trip_count(60)
            .strict(true)
            .work_limit(0)
            .run()
            .unwrap();
        let err = resp.strict_violation().expect("degraded under strict");
        assert_eq!(err.code(), "degraded-under-strict");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn invalid_options_are_protocol_errors() {
        let err = ExploreRequest::new(sample()).max_f(0).run().unwrap_err();
        assert_eq!(err.code(), "protocol");
        let err = ExploreRequest::new(sample()).threads(0).run().unwrap_err();
        assert_eq!(err.code(), "protocol");
    }

    #[test]
    fn from_source_maps_parse_failures() {
        assert!(ExploreRequest::from_source("loop { a = a").is_err());
        let err = ExploreRequest::from_source("not a kernel").unwrap_err();
        assert_eq!(err.code(), "parse");
    }

    #[test]
    fn coalesce_key_sees_compute_inputs_only() {
        let g = sample();
        let base = ExploreRequest::new(g.clone()).max_f(3);
        let key = base.coalesce_key();
        // Limits, threads, and strictness do not change the key...
        let limited = ExploreRequest::new(g.clone())
            .max_f(3)
            .threads(8)
            .strict(true)
            .work_limit(10)
            .deadline(Duration::from_secs(1));
        assert_eq!(limited.coalesce_key(), key);
        // ...but every compute input does.
        assert_ne!(ExploreRequest::new(g.clone()).max_f(2).coalesce_key(), key);
        assert_ne!(
            ExploreRequest::new(g.clone())
                .max_f(3)
                .trip_count(7)
                .coalesce_key(),
            key
        );
        assert_ne!(
            ExploreRequest::new(g.clone())
                .max_f(3)
                .mode(DecMode::PerCopy)
                .coalesce_key(),
            key
        );
        // The register cap and the weights shape the response (frontier
        // and best()), so they split the key too.
        assert_ne!(
            ExploreRequest::new(g.clone())
                .max_f(3)
                .max_registers(8)
                .coalesce_key(),
            key
        );
        assert_ne!(
            ExploreRequest::new(g.clone())
                .max_f(3)
                .weights(ObjectiveWeights {
                    cred_size: 2,
                    ..ObjectiveWeights::default()
                })
                .coalesce_key(),
            key
        );
        // A cap of zero is a real cap, distinct from "uncapped".
        assert_ne!(
            ExploreRequest::new(g.clone())
                .max_f(3)
                .max_registers(0)
                .coalesce_key(),
            key
        );
        // The machine is a compute input too: naming one changes the
        // key, and different machines get different keys.
        let scalar = ExploreRequest::new(g.clone())
            .max_f(3)
            .machine(MachineModel::builtin("scalar").unwrap());
        assert_ne!(scalar.coalesce_key(), key);
        assert_ne!(
            ExploreRequest::new(g)
                .max_f(3)
                .machine(MachineModel::builtin("vliw2").unwrap())
                .coalesce_key(),
            scalar.coalesce_key()
        );
    }

    #[test]
    fn machine_request_reports_proven_exact_ii() {
        // Without a machine the response carries no exact summary.
        let plain = ExploreRequest::new(sample()).max_f(2).run().unwrap();
        assert!(plain.exact.is_none());
        // With one, the II is the solver's proof — equal to what the
        // standalone exact entry point computes — and the proven modulo
        // schedule's register pressure rides along.
        let m = MachineModel::builtin("scalar").unwrap();
        let resp = ExploreRequest::new(sample())
            .max_f(2)
            .machine(m.clone())
            .run()
            .unwrap();
        let exact = resp.exact.expect("machine was named");
        assert_eq!(exact.machine, "scalar");
        let sched = cred_exact::exact_schedule(&sample(), &m);
        assert_eq!(exact.ii, sched.ii);
        assert!(exact.source.is_fast());
        let expected = KernelSchedule::modulo(&sample(), &sched.slot, &sched.stage, sched.ii)
            .maxlive()
            .maxlive;
        assert_eq!(exact.maxlive, Some(expected));
        // The unconstrained machine degenerates to the retiming minimum.
        let un = ExploreRequest::new(sample())
            .machine(MachineModel::unconstrained())
            .run()
            .unwrap();
        assert_eq!(
            un.exact.unwrap().ii,
            cred_retime::min_period_retiming(&sample()).period
        );
    }

    #[test]
    fn starved_exact_pass_falls_back_to_retiming_lower_bound() {
        // A zero work budget exhausts inside the exact search; the
        // degradation ladder substitutes the resource-blind retiming
        // bound and says so in the source.
        let g = sample();
        let resp = ExploreRequest::new(g.clone())
            .max_f(2)
            .machine(MachineModel::builtin("scalar").unwrap())
            .work_limit(0)
            .run()
            .unwrap();
        let exact = resp.exact.expect("machine was named");
        assert_eq!(exact.ii, cred_retime::min_period_retiming(&g).period);
        assert_eq!(exact.maxlive, None, "a lower bound has no schedule");
        match &exact.source {
            PlanSource::Reference(ev) => {
                assert!(ev.site.contains("explore.exact"), "{}", ev.site);
                assert!(matches!(ev.cause, DegradeCause::Exhausted(_)));
            }
            PlanSource::Solver => panic!("starved search cannot claim a proof"),
        }
        // The summary JSON names the fallback and nulls maxlive.
        let j = exact_json(&exact);
        assert!(j.contains("retiming-lower-bound"), "{j}");
        assert!(j.contains("\"maxlive\": null"), "{j}");
        // Cancellation is not degraded around: it propagates as a typed
        // error even when only the exact pass observes it.
        let solver_json = exact_json(&ExactSummary {
            machine: "scalar".into(),
            ii: 5,
            maxlive: Some(4),
            source: PlanSource::Solver,
        });
        assert!(solver_json.contains("\"solver\""), "{solver_json}");
        assert!(solver_json.contains("\"maxlive\": 4"), "{solver_json}");
    }

    #[test]
    fn wire_shapes_cover_v3_and_v2() {
        let g = sample();
        let resp = ExploreRequest::new(g)
            .max_f(3)
            .trip_count(60)
            .run()
            .unwrap();
        let p = &resp.points[0];
        let v3 = point_json(p);
        assert!(v3.contains("\"objectives\""), "{v3}");
        assert!(v3.contains("\"cond_registers\""), "{v3}");
        assert!(v3.contains("\"maxlive\""), "{v3}");
        let v2 = point_json_v2(p);
        assert!(v2.contains("\"registers\""), "{v2}");
        assert!(!v2.contains("objectives"), "{v2}");
        assert!(!v2.contains("maxlive"), "{v2}");
        let frag = wire_v2_points(&resp);
        assert!(frag.starts_with("\"points\":["), "{frag}");
        assert!(frag.contains("],\"pareto\":["), "{frag}");
        assert!(!frag.contains("maxlive"), "{frag}");
        // The v2 exact shape has no maxlive key either.
        let e = ExactSummary {
            machine: "scalar".into(),
            ii: 6,
            maxlive: Some(3),
            source: PlanSource::Solver,
        };
        assert!(!exact_json_v2(&e).contains("maxlive"));
    }
}
