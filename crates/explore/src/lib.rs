//! # cred-explore — design-space exploration
//!
//! The paper closes §4 with the trade-off machinery CRED enables: given a
//! code-size requirement `L_req`, the maximum unfolding factor is
//! `M_f = floor(L_req/L) - M_r`; given an unfolding factor, the maximum
//! retiming depth is `M_r = floor(L_req/L) - f`; and designers can explore
//! (code size, performance, registers) jointly. This crate implements that
//! exploration over *measured* program sizes:
//!
//! * [`ExploreRequest`] / [`ExploreResponse`] — **the** exploration API:
//!   a builder holding the kernel, the sweep parameters, and the resource
//!   limits, evaluated into one [`ParetoPoint`] per unfolding factor —
//!   each carrying the four [`Objectives`] (CRED code size, iteration
//!   period, conditional registers `P_r`, data-register pressure
//!   `maxlive`) — plus the non-dominated frontier over all four axes,
//!   the per-factor outcome report, and cache statistics. The CLI, the
//!   suite runner, and the `cred-service` evaluation server all go
//!   through it;
//! * [`frontier`] — filter to the non-dominated set over the four
//!   objective axes, optionally capped by a total-register budget;
//! * [`best_under_code_budget`] / [`best_under_register_budget`] — the two
//!   constrained searches the paper sketches ("find the maximum
//!   performance when the number of conditional registers are limited");
//! * [`sweep_reference`] — the independent per-point reference pipeline,
//!   kept as the differential-testing oracle and benchmark baseline;
//! * [`suite`] — batch exploration over a directory of `.loop` kernels
//!   with machine-readable JSON output;
//! * [`CredError`] — the unified front-end error type with stable
//!   machine-readable codes.
//!
//! The pre-redesign entry points (`sweep`, `sweep_cached`, `par_sweep`,
//! `par_sweep_with`, `par_sweep_resilient`) survive as `#[deprecated]`
//! wrappers over the same engine, as do the two-axis [`pareto`] filter
//! and the flat [`TradeoffPoint`] it operates on — adapters over
//! [`ParetoPoint`] until out-of-tree callers migrate.

pub mod api;
pub mod cache;
pub mod error;
pub mod suite;

pub use api::{
    exact_json, exact_json_v2, point_json, point_json_v2, wire_v2_points, CacheStats, ExactSummary,
    ExploreOptions, ExploreRequest, ExploreResponse, ObjectiveWeights,
};
pub use error::CredError;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use cred_codegen::cred::cred_retime_unfold;
use cred_codegen::unfolded::retime_unfold_program;
use cred_codegen::DecMode;
use cred_dfg::{Dfg, Ratio};
use cred_resilience::{panic_message, Budget, DegradationEvent, Exhausted};
use cred_retime::span::{
    compact_values, compact_values_wd, min_span_retiming, min_span_retiming_with,
};
use cred_retime::{min_period_retiming, min_period_retiming_with, Retiming};
use cred_schedule::KernelSchedule;
use cred_unfold::orders::project_retiming;
use cred_unfold::unfold;

use cache::{FactorPlan, PlanSource, SweepCache};

/// The four objective axes of one evaluated configuration, all minimized.
///
/// `cred_size` and `iteration_period` are the paper's own trade-off;
/// `cond_registers` is the paper's `P_r` (conditional registers CRED
/// needs); `maxlive` is the steady-state data-register pressure of the
/// scheduled kernel ([`cred_schedule::maxlive`]). Dominance and the
/// [`frontier`] are defined over all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objectives {
    /// Code size with CRED (measured, given the chosen decrement mode).
    pub cred_size: usize,
    /// Achieved iteration period (unfolded cycle period / f), exact.
    pub iteration_period: Ratio,
    /// Conditional registers CRED needs (the paper's `P_r`).
    pub cond_registers: usize,
    /// Maximum simultaneously live data values over the kernel cycles.
    pub maxlive: usize,
}

impl Objectives {
    /// Total register demand: conditional registers plus peak data
    /// pressure — the quantity [`ExploreOptions::max_registers`] caps.
    pub fn total_registers(&self) -> usize {
        self.cond_registers + self.maxlive
    }

    /// `self` dominates `other` iff it is at least as good on every axis
    /// and strictly better on at least one (all axes minimized).
    pub fn dominates(&self, other: &Objectives) -> bool {
        let le = self.cred_size <= other.cred_size
            && self.iteration_period <= other.iteration_period
            && self.cond_registers <= other.cond_registers
            && self.maxlive <= other.maxlive;
        le && (self.cred_size < other.cred_size
            || self.iteration_period < other.iteration_period
            || self.cond_registers < other.cond_registers
            || self.maxlive < other.maxlive)
    }
}

/// One evaluated configuration of the (retime, unfold, CRED) pipeline:
/// the identifying sweep coordinates plus its [`Objectives`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Unfolding factor.
    pub f: usize,
    /// Maximum normalized retiming value of the projected retiming.
    pub m_r: i64,
    /// Code size without CRED (retime-then-unfold baseline, measured).
    pub plain_size: usize,
    /// The four objective axes this configuration achieves.
    pub objectives: Objectives,
}

/// One evaluated configuration in the pre-frontier flat shape.
#[deprecated(
    since = "0.1.0",
    note = "use `ParetoPoint` (with its typed `Objectives`) instead; \
            `TradeoffPoint` survives only as a conversion adapter"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TradeoffPoint {
    /// Unfolding factor.
    pub f: usize,
    /// Maximum normalized retiming value of the projected retiming.
    pub m_r: i64,
    /// Code size without CRED (retime-then-unfold baseline, measured).
    pub plain_size: usize,
    /// Code size with CRED (measured, given the chosen decrement mode).
    pub cred_size: usize,
    /// Achieved iteration period (unfolded cycle period / f), exact.
    pub iteration_period: Ratio,
    /// Conditional registers CRED needs.
    pub registers: usize,
}

#[allow(deprecated)]
impl From<&ParetoPoint> for TradeoffPoint {
    fn from(p: &ParetoPoint) -> Self {
        TradeoffPoint {
            f: p.f,
            m_r: p.m_r,
            plain_size: p.plain_size,
            cred_size: p.objectives.cred_size,
            iteration_period: p.objectives.iteration_period,
            registers: p.objectives.cond_registers,
        }
    }
}

/// The maxlive of the sequential kernel `retime_unfold_program` emits for
/// this plan: `f` retimed body copies, one instruction per cycle.
fn sequential_maxlive(g: &Dfg, projected: &Retiming, f: usize) -> usize {
    KernelSchedule::sequential(g, projected, f)
        .maxlive()
        .maxlive
}

/// The retiming used per factor: rate-optimal on the unfolded graph,
/// projected back (Theorem 4.5), span-minimized and register-compacted.
///
/// This is the *reference* pipeline: each retiming pass recomputes its own
/// W/D matrices from scratch. The [`ExploreRequest`] engine reaches the
/// same points through [`cache::compute_plan`], which shares one W/D
/// computation across the passes; keeping this path independent makes it
/// a differential-testing oracle (and the benchmark baseline) for the
/// memoized engine.
fn point_for_factor(g: &Dfg, f: usize, n: u64, mode: DecMode) -> ParetoPoint {
    let u = unfold(g, f);
    let opt = min_period_retiming(&u.graph);
    let r_f = min_span_retiming(&u.graph, opt.period).expect("optimum feasible");
    let r_f = compact_values(&u.graph, opt.period, &r_f);
    let projected = project_retiming(&u, &r_f);
    let plan = FactorPlan {
        projected,
        period: opt.period,
    };
    point_from_plan(g, f, &plan, n, mode)
}

/// Materialize a [`ParetoPoint`] from a (possibly cached) plan. Code
/// generation and the maxlive analysis are deterministic, so identical
/// plans give identical points.
fn point_from_plan(g: &Dfg, f: usize, plan: &FactorPlan, n: u64, mode: DecMode) -> ParetoPoint {
    let plain = retime_unfold_program(g, &plan.projected, f, n);
    let cred = cred_retime_unfold(g, &plan.projected, f, n, mode);
    ParetoPoint {
        f,
        m_r: plan.projected.max_value(),
        plain_size: plain.code_size(),
        objectives: Objectives {
            cred_size: cred.code_size(),
            iteration_period: Ratio::new(plan.period as i64, f as i64),
            cond_registers: plan.projected.register_count(),
            maxlive: sequential_maxlive(g, &plan.projected, f),
        },
    }
}

/// Evaluate unfolding factors `1..=max_f` through the *reference*
/// pipeline: every point recomputes its own W/D matrices and solves from
/// scratch, with no cache, no warm starts, and no panic isolation.
///
/// This is deliberately the slow path. It exists as the differential
/// oracle the engine ([`ExploreRequest`]) is tested against and as the
/// baseline the benchmarks measure speedups from — do not "optimize" it
/// onto the shared engine, or the differential tests stop testing
/// anything.
pub fn sweep_reference(g: &Dfg, max_f: usize, n: u64, mode: DecMode) -> Vec<ParetoPoint> {
    (1..=max_f)
        .map(|f| point_for_factor(g, f, n, mode))
        .collect()
}

/// Evaluate unfolding factors `1..=max_f`.
#[deprecated(
    since = "0.1.0",
    note = "build an `ExploreRequest` instead: \
            `ExploreRequest::new(g).max_f(max_f).trip_count(n).mode(mode).run()?.points` \
            (or `sweep_reference` if you need the differential oracle)"
)]
#[allow(deprecated)]
pub fn sweep(g: &Dfg, max_f: usize, n: u64, mode: DecMode) -> Vec<TradeoffPoint> {
    sweep_points(g, max_f, n, mode, 1, &SweepCache::new())
        .iter()
        .map(TradeoffPoint::from)
        .collect()
}

/// `sweep` through the memoized engine: plans come from `cache`, so W/D
/// matrices are computed once per factor and repeated sweeps of the same
/// graph are answered from the memo table.
#[deprecated(
    since = "0.1.0",
    note = "build an `ExploreRequest` and pass the shared cache to \
            `run_with(&cache)` instead"
)]
#[allow(deprecated)]
pub fn sweep_cached(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    cache: &SweepCache,
) -> Vec<TradeoffPoint> {
    sweep_points(g, max_f, n, mode, 1, cache)
        .iter()
        .map(TradeoffPoint::from)
        .collect()
}

/// The sweep sharded across `threads` scoped worker threads, with a
/// private [`SweepCache`] for the call.
#[deprecated(
    since = "0.1.0",
    note = "build an `ExploreRequest` with `.threads(threads)` instead"
)]
#[allow(deprecated)]
pub fn par_sweep(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
) -> Vec<TradeoffPoint> {
    sweep_points(g, max_f, n, mode, threads, &SweepCache::new())
        .iter()
        .map(TradeoffPoint::from)
        .collect()
}

/// The sweep sharded across `threads` scoped worker threads sharing
/// `cache`.
#[deprecated(
    since = "0.1.0",
    note = "build an `ExploreRequest` with `.threads(threads)` and pass \
            the shared cache to `run_with(&cache)` instead"
)]
#[allow(deprecated)]
pub fn par_sweep_with(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
    cache: &SweepCache,
) -> Vec<TradeoffPoint> {
    sweep_points(g, max_f, n, mode, threads, cache)
        .iter()
        .map(TradeoffPoint::from)
        .collect()
}

/// Engine helper shared by the deprecated wrappers and the constrained
/// searches: an unlimited-budget sweep that preserves the historical
/// "panic on worker failure" contract of the pre-redesign entry points.
fn sweep_points(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
    cache: &SweepCache,
) -> Vec<ParetoPoint> {
    let report = resilient_sweep(g, max_f, n, mode, threads, cache, &Budget::unlimited());
    for o in &report.outcomes {
        if let PointStatus::Failed(msg) = &o.status {
            panic!("sweep worker panicked at f = {}: {msg}", o.f);
        }
    }
    report.points()
}

/// How one unfolding factor fared in a resilient sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointStatus {
    /// The fast path produced the point within budget.
    Ok,
    /// The point exists but something gave way on the road there — the
    /// fast solver degraded to the reference solver, or the budget cut
    /// this factor off before any solver ran (then there is no point,
    /// only the event).
    Degraded(DegradationEvent),
    /// The worker panicked even on the fallback path; the panic was
    /// isolated to this factor and the rest of the sweep is unaffected.
    Failed(String),
}

/// One factor's outcome: its status plus the point, when one exists.
/// `point` is `Some` for [`PointStatus::Ok`] and for degradations that
/// still produced a (bit-identical, reference-solved) plan; `None` for
/// budget-truncated factors and failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointOutcome {
    /// Unfolding factor this outcome describes.
    pub f: usize,
    /// Status of the computation for this factor.
    pub status: PointStatus,
    /// The evaluated point, when one was produced.
    pub point: Option<ParetoPoint>,
}

/// Everything a resilient sweep observed: per-factor outcomes in factor
/// order, plus tallies for quick triage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// One outcome per requested factor, sorted by `f`.
    pub outcomes: Vec<PointOutcome>,
}

impl SweepReport {
    /// The successfully produced points (ok or degraded-with-point), in
    /// factor order.
    pub fn points(&self) -> Vec<ParetoPoint> {
        self.outcomes
            .iter()
            .filter_map(|o| o.point.clone())
            .collect()
    }

    /// Factors that degraded (with or without a point).
    pub fn degraded(&self) -> Vec<&PointOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, PointStatus::Degraded(_)))
            .collect()
    }

    /// Factors whose workers panicked.
    pub fn failed(&self) -> Vec<&PointOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, PointStatus::Failed(_)))
            .collect()
    }

    /// `true` when every factor finished on the fast path.
    pub fn is_clean(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o.status, PointStatus::Ok))
    }
}

/// The sweep hardened for hostile conditions: every factor runs under
/// `budget`, panics are isolated per point, and nothing is silently
/// wrong — each outcome says exactly what happened.
#[deprecated(
    since = "0.1.0",
    note = "build an `ExploreRequest` with `.deadline(..)`/`.work_limit(..)`/\
            `.cancel(..)` and inspect `ExploreResponse::report` instead"
)]
pub fn par_sweep_resilient(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
    cache: &SweepCache,
    budget: &Budget,
) -> SweepReport {
    resilient_sweep(g, max_f, n, mode, threads, cache, budget)
}

/// The engine core behind [`ExploreRequest`] and every legacy wrapper:
/// the budgeted, panic-isolating, work-stealing sweep.
///
/// Per factor, the ladder is:
///
/// 1. the budgeted fast path ([`cache::compute_plan_budgeted`] through the
///    shared `cache`) — [`PointStatus::Ok`] when it finishes;
/// 2. on fast-path exhaustion or panic, the dense reference solver —
///    [`PointStatus::Degraded`] with a bit-identical point;
/// 3. on budget exhaustion *before* any solving (deadline already past,
///    budget cancelled mid-sweep) — [`PointStatus::Degraded`] with no
///    point: the sweep's coverage shrank, gracefully;
/// 4. on a panic that even the reference path cannot absorb —
///    [`PointStatus::Failed`] carrying the panic message; other factors
///    keep going.
///
/// The returned outcomes are deterministic for a given budget *except*
/// for deadline/cancellation timing, which may truncate different factors
/// on different runs; work-unit budgets are fully deterministic.
pub(crate) fn resilient_sweep(
    g: &Dfg,
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
    cache: &SweepCache,
    budget: &Budget,
) -> SweepReport {
    let threads = threads.clamp(1, max_f.max(1));
    let next = AtomicUsize::new(1);
    let solve_one = |f: usize| -> PointOutcome {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let (plan, source) = cache.plan_budgeted(g, f, budget)?;
            Ok::<_, Exhausted>((point_from_plan(g, f, &plan, n, mode), source))
        }));
        match result {
            Ok(Ok((point, PlanSource::Solver))) => PointOutcome {
                f,
                status: PointStatus::Ok,
                point: Some(point),
            },
            Ok(Ok((point, PlanSource::Reference(event)))) => PointOutcome {
                f,
                status: PointStatus::Degraded(event),
                point: Some(point),
            },
            Ok(Err(exhausted)) => PointOutcome {
                f,
                status: PointStatus::Degraded(DegradationEvent {
                    site: format!("explore.sweep f={f}"),
                    cause: cred_resilience::DegradeCause::Exhausted(exhausted),
                }),
                point: None,
            },
            Err(payload) => PointOutcome {
                f,
                status: PointStatus::Failed(panic_message(payload.as_ref())),
                point: None,
            },
        }
    };
    let mut outcomes: Vec<PointOutcome> = if threads == 1 {
        (1..=max_f).map(solve_one).collect()
    } else {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let f = next.fetch_add(1, Ordering::Relaxed);
                            if f > max_f {
                                break;
                            }
                            out.push(solve_one(f));
                        }
                        out
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| {
                    // solve_one already isolates panics per point; a panic
                    // escaping the worker loop itself would be a bug in
                    // this crate, not in a solver, and must not vanish.
                    w.join().expect("resilient sweep scaffolding panicked")
                })
                .collect()
        })
    };
    outcomes.sort_unstable_by_key(|o| o.f);
    SweepReport { outcomes }
}

/// The non-dominated subset of `points` over the four [`Objectives`]
/// axes, optionally restricted to points whose
/// [`total_registers`](Objectives::total_registers) fits `max_registers`.
/// A point is kept iff no other eligible point [dominates] it; input
/// (factor) order is preserved.
///
/// [dominates]: Objectives::dominates
pub fn frontier(points: &[ParetoPoint], max_registers: Option<usize>) -> Vec<ParetoPoint> {
    let fits =
        |p: &ParetoPoint| max_registers.is_none_or(|cap| p.objectives.total_registers() <= cap);
    points
        .iter()
        .filter(|p| fits(p))
        .filter(|p| {
            !points
                .iter()
                .any(|q| fits(q) && q.objectives.dominates(&p.objectives))
        })
        .cloned()
        .collect()
}

/// Non-dominated subset by (CRED code size, iteration period) only — the
/// pre-frontier two-axis rule, kept for the v2 wire adapter and
/// out-of-tree callers.
#[deprecated(
    since = "0.1.0",
    note = "use `frontier` (non-dominated over all four objective axes) \
            or `ExploreResponse::frontier` instead"
)]
#[allow(deprecated)]
pub fn pareto(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let dominated = |a: &TradeoffPoint| {
        points.iter().any(|b| {
            (b.cred_size <= a.cred_size && b.iteration_period < a.iteration_period)
                || (b.cred_size < a.cred_size && b.iteration_period <= a.iteration_period)
        })
    };
    points.iter().filter(|p| !dominated(p)).cloned().collect()
}

/// Best (lowest) iteration period reachable with CRED code size at most
/// `l_req`, scanning factors up to `max_f`. Returns `None` if even `f = 1`
/// busts the budget.
pub fn best_under_code_budget(
    g: &Dfg,
    l_req: usize,
    max_f: usize,
    n: u64,
    mode: DecMode,
) -> Option<ParetoPoint> {
    sweep_points(g, max_f, n, mode, 1, &SweepCache::new())
        .into_iter()
        .filter(|p| p.objectives.cred_size <= l_req)
        .min_by(|a, b| {
            a.objectives
                .iteration_period
                .cmp(&b.objectives.iteration_period)
        })
}

/// Best iteration period with at most `p_max` conditional registers.
///
/// If the rate-optimal retiming needs too many registers, the search
/// relaxes the period upward (coarser retimings need fewer distinct
/// values) before giving up at the trivial zero retiming.
pub fn best_under_register_budget(
    g: &Dfg,
    p_max: usize,
    max_f: usize,
    n: u64,
    mode: DecMode,
) -> Option<ParetoPoint> {
    assert!(p_max >= 1, "at least one register is needed");
    let mut best: Option<ParetoPoint> = None;
    for f in 1..=max_f {
        let u = unfold(g, f);
        // One W/D computation serves the period search and every probe of
        // the candidate scan below.
        let wd = cred_dfg::algo::WdMatrices::compute(&u.graph);
        let opt = min_period_retiming_with(&u.graph, &wd);
        // Scan candidate periods upward until the register budget holds.
        let mut cands: Vec<i64> = wd.candidate_periods();
        cands.retain(|&c| c >= opt.period as i64);
        for c in cands {
            let Some(r_f) = min_span_retiming_with(&u.graph, &wd, c as u64) else {
                continue;
            };
            let r_f = compact_values_wd(&u.graph, &wd, c as u64, &r_f);
            let projected = project_retiming(&u, &r_f);
            if projected.register_count() > p_max {
                continue;
            }
            let cred = cred_retime_unfold(g, &projected, f, n, mode);
            let point = ParetoPoint {
                f,
                m_r: projected.max_value(),
                plain_size: retime_unfold_program(g, &projected, f, n).code_size(),
                objectives: Objectives {
                    cred_size: cred.code_size(),
                    iteration_period: Ratio::new(c, f as i64),
                    cond_registers: projected.register_count(),
                    maxlive: sequential_maxlive(g, &projected, f),
                },
            };
            let better = best
                .as_ref()
                .is_none_or(|b| point.objectives.iteration_period < b.objectives.iteration_period);
            if better {
                best = Some(point);
            }
            break; // larger periods at this f are never better
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;
    use cred_vm::check_against_reference;

    fn sample() -> Dfg {
        gen::chain_with_feedback(6, 3) // bound 2
    }

    #[test]
    fn sweep_reports_monotone_period_improvement() {
        let g = sample();
        let pts = sweep_reference(&g, 4, 60, DecMode::Bulk);
        assert_eq!(pts.len(), 4);
        // Iteration period is non-increasing in f (more parallelism can
        // only help when rate-optimal retiming is applied each time).
        for w in pts.windows(2) {
            assert!(w[1].objectives.iteration_period <= w[0].objectives.iteration_period);
        }
        // CRED always at most the plain size, and both register axes are
        // populated.
        for p in &pts {
            assert!(p.objectives.cred_size <= p.plain_size.max(p.objectives.cred_size));
            assert!(p.objectives.cond_registers >= 1);
            assert!(p.objectives.maxlive >= 1);
            assert!(p.objectives.total_registers() > p.objectives.maxlive);
        }
    }

    #[test]
    fn cred_size_grows_linearly_with_f() {
        let g = sample();
        let pts = sweep_reference(&g, 4, 60, DecMode::Bulk);
        let l = g.node_count();
        for p in &pts {
            assert_eq!(
                p.objectives.cred_size,
                p.f * l + 2 * p.objectives.cond_registers
            );
        }
    }

    #[test]
    fn maxlive_matches_the_schedule_replay_oracle() {
        let g = sample();
        for p in sweep_reference(&g, 3, 60, DecMode::Bulk) {
            // Recompute the plan's projected retiming independently and
            // replay its kernel by brute-force interval simulation.
            let u = unfold(&g, p.f);
            let opt = min_period_retiming(&u.graph);
            let r_f = min_span_retiming(&u.graph, opt.period).unwrap();
            let r_f = compact_values(&u.graph, opt.period, &r_f);
            let projected = project_retiming(&u, &r_f);
            let sched = KernelSchedule::sequential(&g, &projected, p.f);
            assert_eq!(p.objectives.maxlive, sched.replay_maxlive(), "f = {}", p.f);
        }
    }

    #[test]
    fn frontier_removes_dominated_points() {
        let g = sample();
        let pts = sweep_reference(&g, 4, 60, DecMode::Bulk);
        let front = frontier(&pts, None);
        assert!(!front.is_empty());
        assert!(front.len() <= pts.len());
        // No frontier point dominates another frontier point.
        for a in &front {
            for b in &front {
                assert!(!b.objectives.dominates(&a.objectives));
            }
        }
        // Every dropped point is dominated by some surviving point.
        for p in &pts {
            if !front.contains(p) {
                assert!(front.iter().any(|q| q.objectives.dominates(&p.objectives)));
            }
        }
    }

    #[test]
    fn frontier_register_cap_restricts_and_never_helps_period() {
        let g = sample();
        let pts = sweep_reference(&g, 4, 60, DecMode::Bulk);
        let caps: Vec<usize> = pts.iter().map(|p| p.objectives.total_registers()).collect();
        let tight = *caps.iter().min().unwrap();
        let capped = frontier(&pts, Some(tight));
        for p in &capped {
            assert!(p.objectives.total_registers() <= tight);
        }
        // Tightening the cap can only lose configurations, so the best
        // achievable period is monotone in the cap.
        let best = |front: &[ParetoPoint]| {
            front
                .iter()
                .map(|p| p.objectives.iteration_period)
                .min()
                .unwrap()
        };
        let unlimited = frontier(&pts, None);
        assert!(best(&unlimited) <= best(&capped));
        // An impossible cap empties the frontier.
        assert!(frontier(&pts, Some(0)).is_empty());
    }

    #[test]
    fn legacy_pareto_adapter_matches_two_axis_rule() {
        #![allow(deprecated)]
        let g = sample();
        let pts = sweep_reference(&g, 4, 60, DecMode::Bulk);
        let flat: Vec<TradeoffPoint> = pts.iter().map(TradeoffPoint::from).collect();
        let front = pareto(&flat);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                assert!(!(b.cred_size < a.cred_size && b.iteration_period < a.iteration_period));
            }
        }
        // The flat adapter preserves every surviving field.
        assert_eq!(flat[0].cred_size, pts[0].objectives.cred_size);
        assert_eq!(flat[0].registers, pts[0].objectives.cond_registers);
    }

    #[test]
    fn code_budget_limits_factor() {
        let g = sample();
        let l = g.node_count();
        // Budget for about two bodies: factor 1 (maybe 2) only.
        let p = best_under_code_budget(&g, 2 * l + 4, 4, 60, DecMode::Bulk).unwrap();
        assert!(p.objectives.cred_size <= 2 * l + 4);
        // An enormous budget admits the best (f = 4) period.
        let q = best_under_code_budget(&g, 100 * l, 4, 60, DecMode::Bulk).unwrap();
        assert!(q.objectives.iteration_period <= p.objectives.iteration_period);
    }

    #[test]
    fn impossible_code_budget_is_none() {
        let g = sample();
        assert!(best_under_code_budget(&g, 3, 4, 60, DecMode::Bulk).is_none());
    }

    #[test]
    fn register_budget_respected() {
        let g = sample();
        for p_max in 1..=4 {
            if let Some(p) = best_under_register_budget(&g, p_max, 3, 60, DecMode::Bulk) {
                assert!(p.objectives.cond_registers <= p_max, "budget {p_max}");
            }
        }
        // More registers never hurt the achievable period.
        let p1 = best_under_register_budget(&g, 1, 3, 60, DecMode::Bulk);
        let p4 = best_under_register_budget(&g, 4, 3, 60, DecMode::Bulk);
        if let (Some(a), Some(b)) = (p1, p4) {
            assert!(b.objectives.iteration_period <= a.objectives.iteration_period);
        }
    }

    #[test]
    fn swept_configurations_all_verify() {
        let g = sample();
        for p in sweep_reference(&g, 3, 31, DecMode::PerCopy) {
            // Re-generate and verify the winning configuration end-to-end.
            let u = unfold(&g, p.f);
            let opt = min_period_retiming(&u.graph);
            let r_f = min_span_retiming(&u.graph, opt.period).unwrap();
            let projected = project_retiming(&u, &r_f);
            let prog = cred_retime_unfold(&g, &projected, p.f, 31, DecMode::PerCopy);
            check_against_reference(&g, &prog).unwrap();
        }
    }
}
