//! Per-sweep memoization of the expensive retiming passes.
//!
//! Every trade-off point needs three `O(V^3)` passes over the unfolded
//! graph (period search, span minimization, register compaction), each of
//! which — in the straightforward [`crate::sweep`] path — recomputes the
//! same Floyd–Warshall W/D matrices from scratch. The cache layer fixes
//! both redundancies:
//!
//! * within one factor, the W/D matrices are computed **once** and shared
//!   across all three passes (the `*_with` entry points in `cred-retime`);
//! * across calls, the finished [`FactorPlan`] is memoized under the key
//!   `(Dfg::fingerprint(), f)`, so sweeping the same kernel again — from
//!   another thread, another sweep, or a constrained search revisiting a
//!   factor — returns the stored plan without touching the solver.
//!
//! The cached plan holds only the *decisions* (projected retiming and
//! achieved period); code generation is deterministic given those, so
//! points produced from a cached plan are identical to freshly computed
//! ones, bit for bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;
use cred_retime::span::compact_values_wd;
use cred_retime::{RetimeSolver, Retiming};
use cred_unfold::orders::project_retiming;
use cred_unfold::unfold;

/// Everything the sweep decides for one `(graph, f)` pair: the projected
/// (span-minimized, register-compacted) retiming and the rate-optimal
/// period of the `f`-unfolded graph. Code sizes are *not* stored — they
/// depend on the iteration count and decrement mode, and regenerating them
/// from the plan is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorPlan {
    /// Retiming of the original graph, projected from the unfolded one
    /// (Theorem 4.5), span-minimized and value-compacted.
    pub projected: Retiming,
    /// Minimum cycle period of the `f`-unfolded graph.
    pub period: u64,
}

/// Compute a [`FactorPlan`] with a single shared W/D computation and one
/// warm-started solver.
///
/// This is the uncached fast path; [`SweepCache::plan`] wraps it with
/// memoization. It yields plans identical to [`crate::sweep`]'s per-point
/// pipeline while doing strictly less work: Floyd–Warshall runs once
/// instead of three times, and one [`RetimeSolver`] carries its CSR graph
/// and warm-start state from the period search straight into the span
/// minimization — the span pass starts from the search's final feasible
/// fixpoint instead of re-solving the period system.
pub fn compute_plan(g: &Dfg, f: usize) -> FactorPlan {
    let u = unfold(g, f);
    let wd = WdMatrices::compute(&u.graph);
    let mut solver = RetimeSolver::new(&u.graph, &wd);
    let opt = solver.min_period();
    let r_f = solver.min_span_from_base(opt.period, &opt.retiming);
    let r_f = compact_values_wd(&u.graph, &wd, opt.period, &r_f);
    let projected = project_retiming(&u, &r_f);
    FactorPlan {
        projected,
        period: opt.period,
    }
}

/// Thread-safe memo table for [`FactorPlan`]s, keyed by
/// `(Dfg::fingerprint(), f)`.
///
/// Shared by reference between the workers of a [`crate::par_sweep`] and,
/// optionally, across whole sweeps (the suite runner keeps one cache for
/// all kernels; fingerprints keep their entries apart). Two threads racing
/// on the same key may both compute the plan; the first insert wins and
/// both callers observe the same `Arc`, so results stay deterministic.
#[derive(Debug, Default)]
pub struct SweepCache {
    plans: Mutex<HashMap<(u64, usize), Arc<FactorPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SweepCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for `(g, f)`, computed on first use and memoized after.
    pub fn plan(&self, g: &Dfg, f: usize) -> Arc<FactorPlan> {
        let key = (g.fingerprint(), f);
        if let Some(p) = self.plans.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The lock is NOT held while solving: plans can take milliseconds,
        // and other workers should keep making progress on other factors.
        let plan = Arc::new(compute_plan(g, f));
        let mut plans = self.plans.lock().unwrap();
        Arc::clone(plans.entry(key).or_insert(plan))
    }

    /// Lookups answered from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the solver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct `(fingerprint, f)` plans currently stored.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// `true` when no plan has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;

    #[test]
    fn plan_is_memoized_per_graph_and_factor() {
        let g = gen::chain_with_feedback(6, 3);
        let cache = SweepCache::new();
        let a = cache.plan(&g, 2);
        let b = cache.plan(&g, 2);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different factor is a different entry.
        let _ = cache.plan(&g, 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_graphs_do_not_collide() {
        let g1 = gen::chain_with_feedback(6, 3);
        let g2 = gen::chain_with_feedback(5, 2);
        let cache = SweepCache::new();
        let a = cache.plan(&g1, 1);
        let b = cache.plan(&g2, 1);
        assert_eq!(cache.misses(), 2, "different fingerprints, two solves");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_plan_matches_uncached_pipeline() {
        use cred_retime::min_period_retiming;
        use cred_retime::span::{compact_values, min_span_retiming};
        use cred_unfold::{orders::project_retiming, unfold};

        let g = gen::chain_with_feedback(7, 3);
        for f in 1..=3 {
            let plan = compute_plan(&g, f);
            // The original three-solve pipeline, each pass recomputing W/D.
            let u = unfold(&g, f);
            let opt = min_period_retiming(&u.graph);
            let r_f = min_span_retiming(&u.graph, opt.period).unwrap();
            let r_f = compact_values(&u.graph, opt.period, &r_f);
            assert_eq!(plan.period, opt.period, "f = {f}");
            assert_eq!(plan.projected, project_retiming(&u, &r_f), "f = {f}");
        }
    }
}
