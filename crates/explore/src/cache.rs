//! Per-sweep memoization of the expensive retiming passes, hardened
//! against runaway solves, worker panics, and cache corruption.
//!
//! Every trade-off point needs three `O(V^3)` passes over the unfolded
//! graph (period search, span minimization, register compaction), each of
//! which — in the straightforward [`crate::sweep`] path — recomputes the
//! same Floyd–Warshall W/D matrices from scratch. The cache layer fixes
//! both redundancies:
//!
//! * within one factor, the W/D matrices are computed **once** and shared
//!   across all three passes (the `*_with` entry points in `cred-retime`);
//! * across calls, the finished [`FactorPlan`] is memoized under the key
//!   `(Dfg::fingerprint(), f)`, so sweeping the same kernel again — from
//!   another thread, another sweep, or a constrained search revisiting a
//!   factor — returns the stored plan without touching the solver.
//!
//! On top of the memoization, this module carries the explore side of the
//! resilience layer (`cred-resilience`):
//!
//! * [`compute_plan_budgeted`] runs the warm-started solver under a
//!   [`Budget`] and **degrades** to the dense [`ConstraintSystem`]
//!   reference solver when the fast path exhausts its budget or panics —
//!   recorded as a [`DegradationEvent`] in the returned [`PlanSource`],
//!   never a silent wrong answer (the reference is bit-identical by the
//!   solver's differential tests, just slower);
//! * [`SweepCache`] is bounded (LRU eviction above
//!   [`SweepCache::with_capacity`]), recovers from lock poisoning with
//!   clear-and-continue semantics instead of panicking every later
//!   caller, and verifies a stored plan's checksum on every hit, evicting
//!   and recomputing on mismatch (self-healing).
//!
//! The table is **sharded by DFG fingerprint**: entries land in one of a
//! power-of-two number of independent shards, each with its own lock, LRU
//! clock, and counters, so a thousand concurrent clients hammering
//! different kernels never serialize on one mutex. All the robustness
//! properties hold per shard (a poisoned shard clears only itself), and
//! every public counter is the rollup across shards.
//!
//! The cached plan holds only the *decisions* (projected retiming and
//! achieved period); code generation is deterministic given those, so
//! points produced from a cached plan are identical to freshly computed
//! ones, bit for bit.
//!
//! [`ConstraintSystem`]: cred_retime::ConstraintSystem

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cred_dfg::algo::WdMatrices;
use cred_dfg::Dfg;
use cred_resilience::failpoint::{self, sites};
use cred_resilience::{panic_message, Budget, DegradationEvent, DegradeCause, Exhausted};
use cred_retime::minperiod::min_period_retiming_reference;
use cred_retime::span::{compact_values_wd, min_span_retiming_reference};
use cred_retime::{RetimeSolver, Retiming};
use cred_unfold::orders::project_retiming;
use cred_unfold::unfold;

/// Everything the sweep decides for one `(graph, f)` pair: the projected
/// (span-minimized, register-compacted) retiming and the rate-optimal
/// period of the `f`-unfolded graph. Code sizes are *not* stored — they
/// depend on the iteration count and decrement mode, and regenerating them
/// from the plan is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorPlan {
    /// Retiming of the original graph, projected from the unfolded one
    /// (Theorem 4.5), span-minimized and value-compacted.
    pub projected: Retiming,
    /// Minimum cycle period of the `f`-unfolded graph.
    pub period: u64,
}

impl FactorPlan {
    /// Content checksum (FNV-1a over the retiming values and the period).
    /// Stored next to every cache entry and re-verified on each hit; a
    /// mismatch marks the entry corrupted and triggers self-healing
    /// eviction.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        };
        mix(self.period);
        mix(self.projected.len() as u64);
        for &v in self.projected.values() {
            mix(v as u64);
        }
        h
    }
}

/// How a plan was obtained: the warm-started fast solver, or the dense
/// reference solver after the fast path degraded. Both produce
/// bit-identical plans; the distinction exists so degradations surface in
/// sweep reports and exit codes instead of disappearing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSource {
    /// The warm-started SPFA solver finished within budget.
    Solver,
    /// The fast path was abandoned and the dense Bellman–Ford reference
    /// solver produced the plan. The event records why.
    Reference(DegradationEvent),
}

impl PlanSource {
    /// True when the fast path delivered the plan.
    pub fn is_fast(&self) -> bool {
        matches!(self, PlanSource::Solver)
    }
}

/// Compute a [`FactorPlan`] with a single shared W/D computation and one
/// warm-started solver.
///
/// This is the uncached fast path; [`SweepCache::plan`] wraps it with
/// memoization. It yields plans identical to [`crate::sweep`]'s per-point
/// pipeline while doing strictly less work: Floyd–Warshall runs once
/// instead of three times, and one [`RetimeSolver`] carries its CSR graph
/// and warm-start state from the period search straight into the span
/// minimization — the span pass starts from the search's final feasible
/// fixpoint instead of re-solving the period system.
pub fn compute_plan(g: &Dfg, f: usize) -> FactorPlan {
    match plan_fast(g, f, &Budget::unlimited()) {
        Ok(plan) => plan,
        Err(e) => panic!("unlimited-budget plan cannot exhaust: {e}"),
    }
}

/// The budgeted fast path: warm-started solver pipeline, every pass
/// charging the same budget.
fn plan_fast(g: &Dfg, f: usize, budget: &Budget) -> Result<FactorPlan, Exhausted> {
    failpoint::hit(sites::EXPLORE_PLAN_FAST).map_err(|e| Exhausted::Injected { site: e.site })?;
    budget.check()?;
    let u = unfold(g, f);
    let wd = WdMatrices::compute(&u.graph);
    let mut solver = RetimeSolver::new(&u.graph, &wd);
    let opt = solver.min_period_budgeted(budget)?;
    let r_f = solver.min_span_from_base_budgeted(opt.period, &opt.retiming, budget)?;
    let r_f = compact_values_wd(&u.graph, &wd, opt.period, &r_f);
    let projected = project_retiming(&u, &r_f);
    Ok(FactorPlan {
        projected,
        period: opt.period,
    })
}

/// The degradation fallback: the dense reference pipeline (full
/// [`cred_retime::ConstraintSystem`] + edge-list Bellman–Ford per pass).
/// Guaranteed to terminate in `O(V * E)` rounds per solve — no warm-start
/// state, no SPFA heuristics — and bit-identical to the fast path by the
/// solver's differential tests.
fn plan_reference(g: &Dfg, f: usize) -> FactorPlan {
    failpoint::hit_infallible(sites::EXPLORE_PLAN_REFERENCE);
    let u = unfold(g, f);
    let wd = WdMatrices::compute(&u.graph);
    let opt = min_period_retiming_reference(&u.graph, &wd);
    let r_f = min_span_retiming_reference(&u.graph, &wd, opt.period)
        .expect("the optimal period is always span-feasible");
    let r_f = compact_values_wd(&u.graph, &wd, opt.period, &r_f);
    let projected = project_retiming(&u, &r_f);
    FactorPlan {
        projected,
        period: opt.period,
    }
}

/// Compute a plan under `budget`, degrading gracefully.
///
/// The ladder:
///
/// 1. run the warm-started solver pipeline under `budget`;
/// 2. if it exhausts (deadline, work units, injected fault) **or
///    panics**, fall back to the dense reference solver and record a
///    [`DegradationEvent`] in the returned [`PlanSource`];
/// 3. cancellation is never degraded around — the caller asked the whole
///    operation to stop, so `Err(Exhausted::Cancelled)` propagates.
///
/// A panic in the *reference* path (nothing left to fall back to)
/// propagates to the caller; [`crate::par_sweep_resilient`] isolates it
/// per point.
pub fn compute_plan_budgeted(
    g: &Dfg,
    f: usize,
    budget: &Budget,
) -> Result<(FactorPlan, PlanSource), Exhausted> {
    let cause = match catch_unwind(AssertUnwindSafe(|| plan_fast(g, f, budget))) {
        Ok(Ok(plan)) => return Ok((plan, PlanSource::Solver)),
        Ok(Err(Exhausted::Cancelled)) => return Err(Exhausted::Cancelled),
        Ok(Err(e)) => DegradeCause::Exhausted(e),
        Err(payload) => DegradeCause::Panicked(panic_message(payload.as_ref())),
    };
    let event = DegradationEvent {
        site: format!("explore.plan f={f}"),
        cause,
    };
    Ok((plan_reference(g, f), PlanSource::Reference(event)))
}

/// One stored plan plus its integrity and recency metadata.
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<FactorPlan>,
    /// [`FactorPlan::checksum`] captured at insert time.
    checksum: u64,
    /// Logical timestamp of the last hit (for LRU eviction).
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    plans: HashMap<(u64, usize), CacheEntry>,
    /// Monotonic logical clock driving `last_used`.
    tick: u64,
}

/// One independent slice of the table: its own lock, LRU clock, and
/// counters. Poisoning clears this shard only.
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl Shard {
    /// Lock this shard, recovering from poisoning: a panic under the lock
    /// (one crashed worker) clears the shard and un-poisons the mutex, so
    /// the cache keeps serving — conservatively cold — instead of
    /// bricking every later query. Other shards are untouched.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            let mut guard = poisoned.into_inner();
            guard.plans.clear();
            guard
        })
    }
}

/// Per-shard counter snapshot (test and metrics observability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups this shard answered from its memo table.
    pub hits: u64,
    /// Lookups this shard sent to a solver.
    pub misses: u64,
    /// Entries this shard dropped (LRU bound or checksum self-healing).
    pub evictions: u64,
    /// Times this shard's lock was recovered after a panic under it.
    pub poison_recoveries: u64,
    /// Plans currently stored in this shard.
    pub len: usize,
}

/// Default shard count for unbounded caches ([`SweepCache::new`]).
const DEFAULT_SHARDS: usize = 16;

/// Thread-safe, bounded, self-healing, sharded memo table for
/// [`FactorPlan`]s, keyed by `(Dfg::fingerprint(), f)`.
///
/// Shared by reference between the workers of a sweep and, optionally,
/// across whole sweeps (the suite runner and the evaluation service keep
/// one cache for all kernels; fingerprints keep their entries apart).
/// Entries are distributed over independent shards by DFG fingerprint, so
/// concurrent lookups of different kernels take different locks; all the
/// factors of one kernel share a shard. Two threads racing on the same
/// key may both compute the plan; the first insert wins and both callers
/// observe the same `Arc`, so results stay deterministic.
///
/// Robustness properties (each holding per shard):
///
/// * **bounded** — at most `capacity` entries (unbounded by default);
///   inserting past a shard's bound evicts its least-recently-used entry
///   and bumps [`evictions`](Self::evictions);
/// * **poison-tolerant** — a worker that panics while holding a shard
///   lock poisons it once; the next caller recovers the lock and clears
///   *that shard* (a panicking writer may have left it mid-update),
///   counted by [`poison_recoveries`](Self::poison_recoveries), instead
///   of propagating panics to every later query forever;
/// * **self-healing** — every hit re-verifies the entry's checksum; a
///   corrupted entry is evicted and recomputed instead of served, without
///   disturbing any other entry.
#[derive(Debug)]
pub struct SweepCache {
    shards: Box<[Shard]>,
    /// Entry bound per shard (`None` = unbounded).
    shard_capacity: Option<usize>,
}

impl Default for SweepCache {
    fn default() -> Self {
        Self::with_layout(DEFAULT_SHARDS, None)
    }
}

impl SweepCache {
    /// Fresh, empty, unbounded cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh cache holding at most (approximately) `capacity` plans, LRU
    /// per shard. The shard count is derived from the capacity — small
    /// caches stay single-sharded so the LRU behaves globally; large
    /// caches spread over up to [`DEFAULT_SHARDS`] shards, each bounded
    /// by `capacity / shards` (the global bound rounds down to a multiple
    /// of the shard count).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a zero-capacity cache cannot memoize");
        // Keep at least 8 entries per shard so one kernel's factor range
        // cannot thrash a tiny shard.
        let shards = (capacity / 8).clamp(1, DEFAULT_SHARDS).next_power_of_two();
        let shards = if shards * 8 > capacity {
            shards / 2
        } else {
            shards
        }
        .max(1);
        Self::with_layout(shards, Some(capacity))
    }

    /// Fully explicit layout: `shards` (rounded up to a power of two) and
    /// an optional *total* capacity, split evenly across shards. The
    /// single-shard layout reproduces the pre-sharding cache exactly —
    /// one lock, one global LRU order.
    ///
    /// # Panics
    /// Panics if `shards` is zero, or a capacity is given that leaves a
    /// shard with no room (`capacity < shards`).
    pub fn with_layout(shards: usize, capacity: Option<usize>) -> Self {
        assert!(shards >= 1, "a cache needs at least one shard");
        let shards = shards.next_power_of_two();
        let shard_capacity = capacity.map(|cap| {
            assert!(
                cap >= shards,
                "capacity {cap} leaves some of the {shards} shards empty"
            );
            cap / shards
        });
        SweepCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_capacity,
        }
    }

    /// The shard owning `fingerprint`. The fingerprint is already a
    /// 64-bit hash; one multiplicative mix spreads structurally similar
    /// kernels (whose fingerprints may share low bits) across shards.
    fn shard_of(&self, fingerprint: u64) -> &Shard {
        let mix = fingerprint.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mix >> 32) as usize & (self.shards.len() - 1)]
    }

    /// How many shards this cache spreads over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The counters of shard `i` (panics when out of range). The rollup
    /// getters below sum these; tests assert the two views agree.
    pub fn shard_stats(&self, i: usize) -> ShardStats {
        let s = &self.shards[i];
        ShardStats {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            poison_recoveries: s.poison_recoveries.load(Ordering::Relaxed),
            len: s.lock().plans.len(),
        }
    }

    /// The plan for `(g, f)`, computed on first use and memoized after.
    pub fn plan(&self, g: &Dfg, f: usize) -> Arc<FactorPlan> {
        match self.plan_budgeted(g, f, &Budget::unlimited()) {
            Ok((plan, _)) => plan,
            Err(e) => panic!("unlimited-budget plan cannot exhaust: {e}"),
        }
    }

    /// The plan for `(g, f)` under `budget`, with the degradation ladder
    /// of [`compute_plan_budgeted`] on the miss path. Cache hits never
    /// degrade: the stored plan is bit-identical whichever solver
    /// produced it, so a hit reports [`PlanSource::Solver`].
    pub fn plan_budgeted(
        &self,
        g: &Dfg,
        f: usize,
        budget: &Budget,
    ) -> Result<(Arc<FactorPlan>, PlanSource), Exhausted> {
        let key = (g.fingerprint(), f);
        let shard = self.shard_of(key.0);
        {
            let mut inner = shard.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.plans.get_mut(&key) {
                if entry.plan.checksum() == entry.checksum {
                    entry.last_used = tick;
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&entry.plan), PlanSource::Solver));
                }
                // Self-healing: the stored plan no longer matches its
                // insert-time checksum. Serving it would be silent
                // corruption; evict and fall through to recompute.
                inner.plans.remove(&key);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        // No lock is held while solving: plans can take milliseconds, and
        // other workers should keep making progress on other factors.
        let (plan, source) = compute_plan_budgeted(g, f, budget)?;
        let plan = Arc::new(plan);
        let checksum = plan.checksum();
        let mut inner = shard.lock();
        // A chaos plan can panic here, *while the lock is held* — that is
        // exactly the scenario the poison recovery above exists for.
        failpoint::hit_infallible(sites::EXPLORE_CACHE_INSERT);
        inner.tick += 1;
        let tick = inner.tick;
        let stored = match inner.plans.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(&e.get().plan),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(CacheEntry {
                    plan: Arc::clone(&plan),
                    checksum,
                    last_used: tick,
                });
                plan
            }
        };
        if let Some(cap) = self.shard_capacity {
            while inner.plans.len() > cap {
                let oldest = inner
                    .plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("len > cap >= 1 implies non-empty");
                inner.plans.remove(&oldest);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok((stored, source))
    }

    /// Lookups answered from the memo table (all shards).
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Lookups that had to run the solver (all shards).
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Entries dropped — by a shard's LRU capacity bound or by checksum
    /// self-healing (all shards).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Times a shard lock was recovered (and that shard cleared) after a
    /// worker panicked while holding it.
    pub fn poison_recoveries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.poison_recoveries.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of distinct `(fingerprint, f)` plans currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().plans.len()).sum()
    }

    /// `true` when no plan has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test hook: overwrite the stored checksum of `(g, f)`'s entry so
    /// the next hit sees a corrupted entry. Returns `false` when the
    /// entry is absent. Not part of the stable API.
    #[doc(hidden)]
    pub fn corrupt_entry_for_test(&self, g: &Dfg, f: usize) -> bool {
        let key = (g.fingerprint(), f);
        let mut inner = self.shard_of(key.0).lock();
        match inner.plans.get_mut(&key) {
            Some(e) => {
                e.checksum ^= 0xDEAD_BEEF;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;

    #[test]
    fn plan_is_memoized_per_graph_and_factor() {
        let g = gen::chain_with_feedback(6, 3);
        let cache = SweepCache::new();
        let a = cache.plan(&g, 2);
        let b = cache.plan(&g, 2);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different factor is a different entry.
        let _ = cache.plan(&g, 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.poison_recoveries(), 0);
    }

    #[test]
    fn distinct_graphs_do_not_collide() {
        let g1 = gen::chain_with_feedback(6, 3);
        let g2 = gen::chain_with_feedback(5, 2);
        let cache = SweepCache::new();
        let a = cache.plan(&g1, 1);
        let b = cache.plan(&g2, 1);
        assert_eq!(cache.misses(), 2, "different fingerprints, two solves");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_plan_matches_uncached_pipeline() {
        use cred_retime::min_period_retiming;
        use cred_retime::span::{compact_values, min_span_retiming};
        use cred_unfold::{orders::project_retiming, unfold};

        let g = gen::chain_with_feedback(7, 3);
        for f in 1..=3 {
            let plan = compute_plan(&g, f);
            // The original three-solve pipeline, each pass recomputing W/D.
            let u = unfold(&g, f);
            let opt = min_period_retiming(&u.graph);
            let r_f = min_span_retiming(&u.graph, opt.period).unwrap();
            let r_f = compact_values(&u.graph, opt.period, &r_f);
            assert_eq!(plan.period, opt.period, "f = {f}");
            assert_eq!(plan.projected, project_retiming(&u, &r_f), "f = {f}");
        }
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let g = gen::chain_with_feedback(6, 3);
        let cache = SweepCache::with_capacity(2);
        cache.plan(&g, 1);
        cache.plan(&g, 2);
        // Touch f = 1 so f = 2 is the LRU entry.
        cache.plan(&g, 1);
        cache.plan(&g, 3); // evicts f = 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // f = 1 survived (recently used): hitting it is free.
        let hits = cache.hits();
        cache.plan(&g, 1);
        assert_eq!(cache.hits(), hits + 1);
        // f = 2 was evicted: it is a miss again, and still correct.
        let misses = cache.misses();
        let again = cache.plan(&g, 2);
        assert_eq!(cache.misses(), misses + 1);
        assert_eq!(*again, compute_plan(&g, 2));
    }

    #[test]
    fn corrupted_entry_is_evicted_and_recomputed() {
        let g = gen::chain_with_feedback(6, 3);
        let cache = SweepCache::new();
        let original = cache.plan(&g, 2);
        assert!(cache.corrupt_entry_for_test(&g, 2));
        // The next lookup must detect the checksum mismatch, evict, and
        // recompute — never serve the corrupted entry silently.
        let healed = cache.plan(&g, 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(*healed, *original, "healed entry is the true plan");
        // Entry is healthy again afterwards.
        let hits = cache.hits();
        cache.plan(&g, 2);
        assert_eq!(cache.hits(), hits + 1);
    }

    #[test]
    fn budgeted_plan_reports_degradation_instead_of_failing() {
        let g = gen::chain_with_feedback(7, 3);
        // A 0-unit work budget exhausts inside the first SPFA probe; the
        // ladder must fall back to the reference solver and say so.
        let budget = Budget::unlimited().with_work_limit(0);
        let cache = SweepCache::new();
        let (plan, source) = cache.plan_budgeted(&g, 2, &budget).unwrap();
        match &source {
            PlanSource::Reference(event) => {
                assert!(
                    matches!(
                        event.cause,
                        DegradeCause::Exhausted(Exhausted::WorkUnits { .. })
                    ),
                    "{event}"
                );
            }
            PlanSource::Solver => panic!("0-unit budget cannot finish the fast path"),
        }
        // Degraded, but bit-identical to the unconstrained plan.
        assert_eq!(*plan, compute_plan(&g, 2));
        // And the *cached* plan now serves fast-path hits.
        let (_, source) = cache.plan_budgeted(&g, 2, &budget).unwrap();
        assert!(source.is_fast(), "cache hit must not re-degrade");
    }

    #[test]
    fn cancellation_propagates_without_fallback() {
        let g = gen::chain_with_feedback(5, 2);
        let tok = cred_resilience::CancelToken::new();
        tok.cancel();
        let budget = Budget::unlimited().with_cancel(tok);
        let cache = SweepCache::new();
        assert_eq!(
            cache.plan_budgeted(&g, 1, &budget).unwrap_err(),
            Exhausted::Cancelled
        );
        assert!(cache.is_empty(), "cancelled lookups store nothing");
    }

    #[test]
    fn capacity_derives_a_sane_shard_layout() {
        // Small caches stay single-sharded so the LRU is global...
        assert_eq!(SweepCache::with_capacity(2).shard_count(), 1);
        assert_eq!(SweepCache::with_capacity(15).shard_count(), 1);
        // ...larger ones spread, always keeping >= 8 entries per shard.
        for cap in [16, 100, 1024, 4096] {
            let cache = SweepCache::with_capacity(cap);
            let shards = cache.shard_count();
            assert!(shards.is_power_of_two(), "cap {cap}: {shards} shards");
            assert!(shards <= DEFAULT_SHARDS);
            assert!(cap / shards >= 8, "cap {cap}: {shards} shards");
        }
        assert_eq!(SweepCache::with_capacity(1024).shard_count(), 16);
    }

    #[test]
    fn shard_counters_roll_up_to_the_totals() {
        let cache = SweepCache::with_layout(8, None);
        assert_eq!(cache.shard_count(), 8);
        // A handful of structurally distinct kernels spread across
        // shards; every getter must equal the sum over shard_stats.
        let graphs: Vec<_> = (3..9).map(|k| gen::chain_with_feedback(k, 2)).collect();
        for g in &graphs {
            cache.plan(g, 1);
            cache.plan(g, 2);
            cache.plan(g, 1); // hit
        }
        let (mut hits, mut misses, mut evictions, mut len) = (0, 0, 0, 0);
        for i in 0..cache.shard_count() {
            let s = cache.shard_stats(i);
            hits += s.hits;
            misses += s.misses;
            evictions += s.evictions;
            len += s.len;
        }
        assert_eq!(hits, cache.hits());
        assert_eq!(misses, cache.misses());
        assert_eq!(evictions, cache.evictions());
        assert_eq!(len, cache.len());
        assert_eq!(misses, 2 * graphs.len() as u64);
        assert_eq!(hits, graphs.len() as u64);
    }

    #[test]
    fn factors_of_one_kernel_share_a_shard() {
        // Sharding is by fingerprint alone, so a kernel's whole factor
        // range colocates: exactly one shard is non-empty.
        let cache = SweepCache::with_layout(16, None);
        let g = gen::chain_with_feedback(6, 3);
        for f in 1..=4 {
            cache.plan(&g, f);
        }
        let occupied = (0..cache.shard_count())
            .filter(|&i| cache.shard_stats(i).len > 0)
            .count();
        assert_eq!(occupied, 1);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn single_shard_layout_matches_the_unsharded_lru() {
        // with_layout(1, cap) is the pre-sharding cache: one lock, one
        // global LRU order (the with_capacity LRU test above exercises
        // the same layout via capacity derivation).
        let g = gen::chain_with_feedback(6, 3);
        let cache = SweepCache::with_layout(1, Some(2));
        assert_eq!(cache.shard_count(), 1);
        cache.plan(&g, 1);
        cache.plan(&g, 2);
        cache.plan(&g, 1);
        cache.plan(&g, 3); // evicts the LRU entry, f = 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let hits = cache.hits();
        cache.plan(&g, 1);
        assert_eq!(cache.hits(), hits + 1, "f = 1 must have survived");
    }

    #[test]
    fn checksum_is_content_determined() {
        let g = gen::chain_with_feedback(6, 3);
        let a = compute_plan(&g, 2);
        let b = compute_plan(&g, 2);
        assert_eq!(a.checksum(), b.checksum());
        let c = compute_plan(&g, 3);
        assert_ne!(a.checksum(), c.checksum(), "distinct plans, distinct sums");
    }
}
