//! Batch exploration over a directory of `.loop` kernels.
//!
//! [`explore_suite`] runs the parallel, memoized sweep over every bundled
//! benchmark in one call and returns a [`SuiteReport`] that serializes to
//! machine-readable JSON — the format consumed by CI and recorded in
//! `BENCH_explore.json`. One [`SweepCache`] is shared across the whole
//! suite; the structural fingerprint in the cache key keeps the kernels'
//! entries apart.

use std::io;
use std::path::Path;

use cred_codegen::DecMode;
use cred_dfg::Dfg;

use crate::api::{point_json, ExploreOptions, ExploreRequest};
use crate::cache::SweepCache;
use crate::ParetoPoint;

/// JSON schema version stamped into [`SuiteReport::to_json`] and into
/// every `cred-service` response. Bump only with a compat plan: v2 adds
/// the optional `machine` request parameter and the `exact` response
/// object (absent unless a machine was named, so v1 readers that ignore
/// unknown keys keep working); v3 replaces the flat per-point fields
/// with a nested `objectives` object (adding `maxlive`) and renames the
/// response's `pareto` array to `frontier` (now non-dominated over four
/// axes) — v2 readers keep working through the service's compatibility
/// path, which answers `"schema_version": 2` requests byte-identically
/// to a v2 server; the committed golden files replay against both.
pub const SCHEMA_VERSION: u32 = 3;

/// The sweep of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelReport {
    /// Kernel name (the `.loop` file stem).
    pub name: String,
    /// Nodes in the kernel's DFG.
    pub nodes: usize,
    /// One point per unfolding factor `1..=max_f`.
    pub points: Vec<ParetoPoint>,
}

/// The full suite run: inputs, per-kernel sweeps, and cache statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteReport {
    /// Largest unfolding factor swept.
    pub max_f: usize,
    /// Iteration count used for the measured program sizes.
    pub n: u64,
    /// Decrement placement mode.
    pub mode: DecMode,
    /// Worker threads per sweep.
    pub threads: usize,
    /// Per-kernel results, in input order.
    pub kernels: Vec<KernelReport>,
    /// Plan lookups answered from the shared memo table.
    pub cache_hits: u64,
    /// Plan lookups that ran the solver.
    pub cache_misses: u64,
}

/// Load every `*.loop` file in `dir`, sorted by file name so the suite
/// order is stable across platforms. Parse failures surface as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn load_kernels(dir: &Path) -> io::Result<Vec<(String, Dfg)>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    paths.sort();
    let mut kernels = Vec::with_capacity(paths.len());
    for p in paths {
        let name = p
            .file_stem()
            .expect("filtered on extension")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&p)?;
        let g = cred_lang::parse(&src).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", p.display()))
        })?;
        kernels.push((name, g));
    }
    Ok(kernels)
}

/// Sweep every kernel through one [`ExploreRequest`] per kernel, sharing
/// one cache across the whole suite.
pub fn explore_suite(
    kernels: &[(String, Dfg)],
    max_f: usize,
    n: u64,
    mode: DecMode,
    threads: usize,
) -> SuiteReport {
    let cache = SweepCache::new();
    let opts = ExploreOptions {
        max_f,
        n,
        mode,
        threads,
        ..ExploreOptions::default()
    };
    let reports = kernels
        .iter()
        .map(|(name, g)| {
            let resp = ExploreRequest::new(g.clone())
                .options(opts.clone())
                .run_with(&cache)
                .expect("an unlimited-budget suite sweep cannot exhaust");
            KernelReport {
                name: name.clone(),
                nodes: g.node_count(),
                points: resp.points,
            }
        })
        .collect();
    SuiteReport {
        max_f,
        n,
        mode,
        threads,
        kernels: reports,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    }
}

impl SuiteReport {
    /// Serialize to JSON (two-space indent, stable key order). The format
    /// is hand-rolled — the workspace builds hermetically, without serde.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", SCHEMA_VERSION));
        out.push_str(&format!("  \"max_f\": {},\n", self.max_f));
        out.push_str(&format!("  \"n\": {},\n", self.n));
        let mode = match self.mode {
            DecMode::PerCopy => "per-copy",
            DecMode::Bulk => "bulk",
        };
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
            self.cache_hits, self.cache_misses
        ));
        out.push_str("  \"kernels\": [");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&k.name)));
            out.push_str(&format!("      \"nodes\": {},\n", k.nodes));
            out.push_str("      \"points\": [");
            for (j, p) in k.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                out.push_str(&point_json(p));
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string encoder (kernel names are file stems, but escape
/// defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::gen;

    #[test]
    fn suite_covers_every_kernel_and_factor() {
        let kernels = vec![
            ("a".to_string(), gen::chain_with_feedback(5, 2)),
            ("b".to_string(), gen::chain_with_feedback(6, 3)),
        ];
        let report = explore_suite(&kernels, 3, 60, DecMode::Bulk, 2);
        assert_eq!(report.kernels.len(), 2);
        for k in &report.kernels {
            assert_eq!(k.points.len(), 3);
        }
        // Every plan solved exactly once: 2 kernels * 3 factors.
        assert_eq!(report.cache_misses, 6);
    }

    #[test]
    fn suite_points_match_serial_sweep() {
        let kernels = vec![("k".to_string(), gen::chain_with_feedback(6, 3))];
        let report = explore_suite(&kernels, 4, 60, DecMode::PerCopy, 4);
        let serial = crate::sweep_reference(&kernels[0].1, 4, 60, DecMode::PerCopy);
        assert_eq!(report.kernels[0].points, serial);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let kernels = vec![("k\"1".to_string(), gen::chain_with_feedback(4, 2))];
        let report = explore_suite(&kernels, 2, 31, DecMode::Bulk, 1);
        let j = report.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"k\\\"1\""));
        assert!(j.contains("\"cache\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn load_kernels_reads_the_bundled_suite() {
        // CARGO_MANIFEST_DIR = crates/explore; kernels/ sits at the root.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
        let kernels = load_kernels(&dir).expect("bundled kernels parse");
        assert_eq!(kernels.len(), 10, "the paper suite has ten kernels");
        let names: Vec<_> = kernels.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "kernels are returned in stable name order");
        assert!(names.contains(&"elliptic") && names.contains(&"volterra"));
    }
}
