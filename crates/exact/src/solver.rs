//! The branch-and-bound exact scheduler and its optimality certificates.
//!
//! ## Problem
//!
//! Find the smallest initiation interval `II` for which the kernel admits
//! a *no-wrap* modulo schedule `sigma(v) = stage(v) * II + slot(v)` on
//! the given [`MachineModel`]:
//!
//! * **window** — `0 <= slot(v)` and `slot(v) + t(v) <= II` (every op
//!   runs inside one II window; `t` is the machine-effective time),
//! * **dependences** — for every edge `e(u -> v)` with `d(e)` delays,
//!   `sigma(v) >= sigma(u) + t(u) - II * d(e)`,
//! * **resources** — at most `units(c)` ops of class `c` in flight in
//!   any cycle (an op occupies one unit of its class for slots
//!   `slot(v) .. slot(v) + t(v)`), and at most `issue_width` ops with
//!   the same `slot` (one VLIW word issues per cycle).
//!
//! On the unconstrained machine the no-wrap model is *equivalent* to
//! retiming: a retiming with period `<= c` yields a no-wrap schedule at
//! `II = c` (take `stage = -r`, `slot =` ASAP start in the retimed
//! graph), and conversely `stage(v) = floor(sigma(v) / II)` turns any
//! no-wrap schedule into a legal retiming with period `<= II` (for an
//! edge, `II * d_r(e) >= slot(u) + t(u) - slot(v) > -II` forces
//! `d_r(e) >= 0`, and `d_r(e) = 0` forces `slot(v) >= slot(u) + t(u)`).
//! Hence the minimal `II` here equals `RetimeSolver::min_period` exactly
//! — the headline differential-test invariant.
//!
//! ## Search
//!
//! The solver walks the II ladder from 1 upward. Each rung is first
//! screened by arithmetic bounds (window, per-class occupancy, issue
//! width — each rejection is a closed-form [`Infeasible`] witness), then
//! searched exhaustively: branch on `slot(v)` per node (on-cycle nodes
//! first), check the modulo reservation table incrementally, and assert
//! the induced stage constraint `stage(v) - stage(u) >= q(e) - d(e)`
//! (where `q(e) = 1` iff `slot(v) < slot(u) + t(u)`, the exact value of
//! `ceil((slot(u) + t(u) - slot(v)) / II)` under the window bounds) into
//! a [`DiffEngine`] — DPLL-style propagation with trail rollback on
//! backtrack. A conflict returns a positive stage-constraint cycle; if
//! the underlying dependence cycle already proves `total_time > II *
//! total_delay`, the whole rung is rejected with a [checkable
//! certificate](Infeasible::CriticalCycle) without finishing the search.
//! The ladder terminates: `II = sum_v t(v)` always admits the sequential
//! schedule (distinct slots in zero-delay topological order).
//!
//! Branch-and-bound work charges the [`Budget`] one unit per slot trial
//! and passes the `exact.branch` fail-point, so exhaustion and chaos
//! testing compose the same way as in the retiming solver.

use cred_dfg::{algo, Dfg, NodeId, OpClass, OP_CLASSES};
use cred_resilience::failpoint::{self, sites};
use cred_resilience::{Budget, Exhausted};
use cred_retime::diff::DiffEngine;
use cred_retime::Retiming;
use std::fmt;

use crate::machine::MachineModel;

/// Why one rung of the II ladder admits no schedule. Every variant is a
/// certificate: the first four are closed-form arithmetic facts
/// re-checkable without running the solver (see
/// [`check_witness`](crate::check::check_witness)), the last records
/// that a complete search exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Infeasible {
    /// Node `node`'s machine-effective time exceeds the II window:
    /// `time > ii`.
    OpExceedsWindow {
        /// Node index.
        node: u32,
        /// Machine-effective computation time of that node.
        time: u32,
    },
    /// Class `class` needs more unit-cycles per iteration than the
    /// machine has: `occupancy > ii * units`.
    ResourceCap {
        /// The oversubscribed class.
        class: OpClass,
        /// `sum` of machine-effective times over ops of the class.
        occupancy: u64,
        /// Units of the class per cycle.
        units: u32,
    },
    /// More ops than issue slots: `ops > ii * width`.
    IssueWidth {
        /// Total op count.
        ops: u64,
        /// VLIW issue width.
        width: u32,
    },
    /// A dependence cycle (as graph edge ids, consecutive and closing)
    /// needs more time than its delays buy: `total_time > ii *
    /// total_delay`, where `total_time` sums the machine-effective time
    /// of each edge's source.
    CriticalCycle {
        /// Edge ids forming the closed walk.
        edges: Vec<u32>,
        /// Sum of source-node times along the walk.
        total_time: u64,
        /// Sum of edge delays along the walk.
        total_delay: u64,
    },
    /// The branch-and-bound search visited the entire slot space and
    /// found no schedule (certificate by exhaustion).
    Exhausted {
        /// Slot trials performed on this rung.
        branches: u64,
    },
}

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasible::OpExceedsWindow { node, time } => {
                write!(f, "op-window n{node} time {time}")
            }
            Infeasible::ResourceCap {
                class,
                occupancy,
                units,
            } => write!(
                f,
                "resource-cap {class} occupancy {occupancy} units {units}"
            ),
            Infeasible::IssueWidth { ops, width } => {
                write!(f, "issue-width ops {ops} width {width}")
            }
            Infeasible::CriticalCycle {
                edges,
                total_time,
                total_delay,
            } => {
                write!(f, "critical-cycle edges ")?;
                for (i, e) in edges.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "e{e}")?;
                }
                write!(f, " time {total_time} delay {total_delay}")
            }
            Infeasible::Exhausted { branches } => {
                write!(f, "exhausted after {branches} branches")
            }
        }
    }
}

/// One rejected rung of the II ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedII {
    /// The initiation interval that was proven infeasible.
    pub ii: u64,
    /// The certificate.
    pub witness: Infeasible,
}

/// The product of the exact scheduler: the minimal-II schedule plus the
/// proof of minimality (one witness per rejected rung below `ii`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSchedule {
    /// The achieved (minimal) initiation interval.
    pub ii: u64,
    /// Issue slot per node, `0 <= slot(v) <= ii - t(v)`.
    pub slot: Vec<u32>,
    /// Pipeline stage per node (the difference-constraint solution).
    pub stage: Vec<i64>,
    /// Witnesses for every II in `1 .. ii`, in ladder order.
    pub rejected: Vec<RejectedII>,
    /// Total slot trials across all rungs.
    pub branches: u64,
}

impl ExactSchedule {
    /// The absolute schedule time `sigma(v) = stage(v) * ii + slot(v)`.
    pub fn sigma(&self, v: NodeId) -> i64 {
        self.stage[v.index()] * self.ii as i64 + self.slot[v.index()] as i64
    }

    /// The retiming this schedule's stages induce (normalized): delays
    /// pushed forward through ops of later stages. Legal for the graph
    /// whenever the schedule's dependences are legal, which is what
    /// plugs the exact scheduler into the CRED code generators and the
    /// VM oracle.
    pub fn stage_retiming(&self) -> Retiming {
        Retiming::from_stages(&self.stage)
    }
}

/// Schedule `g` on `m` with no budget. Panics only if a chaos plan
/// injects a fault (mirrors `RetimeSolver`'s unbudgeted entry points).
pub fn exact_schedule(g: &Dfg, m: &MachineModel) -> ExactSchedule {
    exact_schedule_budgeted(g, m, &Budget::unlimited())
        .unwrap_or_else(|e| panic!("unbudgeted exact schedule interrupted: {e}"))
}

/// Schedule `g` on `m`, charging one budget unit per branch-and-bound
/// slot trial. On `Err` no partial schedule is returned — exhaustion is
/// all-or-nothing, the caller's state is untouched, and the solver
/// scratch is reusable.
pub fn exact_schedule_budgeted(
    g: &Dfg,
    m: &MachineModel,
    budget: &Budget,
) -> Result<ExactSchedule, Exhausted> {
    Searcher::new(g, m).run(budget)
}

#[cfg(feature = "mutation-hooks")]
pub mod hooks {
    //! Test-only mutation hooks. Compiled in only with the
    //! `mutation-hooks` feature and inert (zero) until a test flips
    //! them; mutation tests use them to verify the verification layers
    //! actually catch solver bugs.

    use std::sync::atomic::AtomicU32;

    /// Extra phantom units the reservation-table conflict check believes
    /// every class has. `0` = correct behavior; `1` re-creates the
    /// classic off-by-one (`<=` where `<` belongs), letting one too many
    /// ops share a class-slot.
    pub static RESERVATION_SLACK: AtomicU32 = AtomicU32::new(0);
}

#[cfg(feature = "mutation-hooks")]
#[inline]
fn reservation_slack() -> u32 {
    hooks::RESERVATION_SLACK.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(not(feature = "mutation-hooks"))]
#[inline]
fn reservation_slack() -> u32 {
    0
}

/// Per-run search state. The graph-shaped vectors are sized once; the
/// II-shaped tables are resized per rung.
struct Searcher<'g> {
    g: &'g Dfg,
    m: &'g MachineModel,
    /// Machine-effective time per node.
    t: Vec<u32>,
    /// Class index per node.
    class: Vec<usize>,
    /// Branch order: on-cycle nodes first, zero-delay topological
    /// within each half (cycle nodes are where conflicts live; off-cycle
    /// nodes never force backtracking on unconstrained machines).
    order: Vec<u32>,
    /// Assigned slot per node; `-1` = unassigned.
    slot: Vec<i64>,
    /// Stage difference constraints (DPLL(T)-style theory core).
    engine: DiffEngine,
    /// Modulo reservation table: `occ[c * ii + s]` ops of class `c`
    /// in flight at slot `s`.
    occ: Vec<u32>,
    /// Ops issued per slot.
    issue: Vec<u32>,
    /// Slot trials on the current rung / across the run.
    rung_branches: u64,
    total_branches: u64,
    /// Certificate found mid-search (aborts the rung).
    cert: Option<Infeasible>,
    /// The schedule found at a leaf.
    found: Option<(Vec<u32>, Vec<i64>)>,
}

impl<'g> Searcher<'g> {
    fn new(g: &'g Dfg, m: &'g MachineModel) -> Self {
        let n = g.node_count();
        let t: Vec<u32> = g.node_ids().map(|v| m.op_time(g, v)).collect();
        let class: Vec<usize> = g.node_ids().map(|v| g.node(v).op.class().index()).collect();
        let topo = algo::topo::zero_delay_topo_order(g)
            .expect("exact scheduling requires a well-formed DFG");
        let sccs = algo::scc::strongly_connected_components(g);
        let mut order: Vec<u32> = topo
            .iter()
            .filter(|&&v| algo::scc::is_on_cycle(g, &sccs, v))
            .map(|v| v.0)
            .collect();
        order.extend(
            topo.iter()
                .filter(|&&v| !algo::scc::is_on_cycle(g, &sccs, v))
                .map(|v| v.0),
        );
        debug_assert_eq!(order.len(), n);
        Searcher {
            g,
            m,
            t,
            class,
            order,
            slot: vec![-1; n],
            engine: DiffEngine::new(n),
            occ: Vec::new(),
            issue: Vec::new(),
            rung_branches: 0,
            total_branches: 0,
            cert: None,
            found: None,
        }
    }

    fn run(mut self, budget: &Budget) -> Result<ExactSchedule, Exhausted> {
        let n = self.g.node_count();
        assert!(n > 0, "exact scheduling requires a non-empty DFG");
        // Guaranteed-feasible ceiling: the sequential schedule.
        let ii_max: u64 = self.t.iter().map(|&t| t as u64).sum();
        let mut rejected = Vec::new();
        for ii in 1..=ii_max {
            match self.try_rung(ii, budget)? {
                Ok((slot, stage)) => {
                    return Ok(ExactSchedule {
                        ii,
                        slot,
                        stage,
                        rejected,
                        branches: self.total_branches,
                    });
                }
                Err(witness) => rejected.push(RejectedII { ii, witness }),
            }
        }
        unreachable!("II = sum of op times always admits the sequential schedule");
    }

    /// One rung: static screens, then exhaustive search. The outer
    /// `Result` is budget exhaustion; the inner is rung feasibility.
    #[allow(clippy::type_complexity)]
    fn try_rung(
        &mut self,
        ii: u64,
        budget: &Budget,
    ) -> Result<Result<(Vec<u32>, Vec<i64>), Infeasible>, Exhausted> {
        // Window screen.
        if let Some(v) = (0..self.t.len()).max_by_key(|&v| self.t[v]) {
            if self.t[v] as u64 > ii {
                return Ok(Err(Infeasible::OpExceedsWindow {
                    node: v as u32,
                    time: self.t[v],
                }));
            }
        }
        // Per-class occupancy screen.
        for class in OpClass::ALL {
            if let Some(units) = self.m.units(class) {
                let occupancy: u64 = (0..self.t.len())
                    .filter(|&v| self.class[v] == class.index())
                    .map(|v| self.t[v] as u64)
                    .sum();
                if occupancy > ii * units as u64 {
                    return Ok(Err(Infeasible::ResourceCap {
                        class,
                        occupancy,
                        units,
                    }));
                }
            }
        }
        // Issue-width screen.
        if let Some(width) = self.m.issue_width {
            let ops = self.t.len() as u64;
            if ops > ii * width as u64 {
                return Ok(Err(Infeasible::IssueWidth { ops, width }));
            }
        }
        // Self-loop screen (the smallest critical cycles, caught without
        // searching).
        for e in self.g.edge_ids() {
            let ed = self.g.edge(e);
            if ed.src == ed.dst {
                let time = self.t[ed.src.index()] as u64;
                let delay = ed.delay as u64;
                if time > ii * delay {
                    return Ok(Err(Infeasible::CriticalCycle {
                        edges: vec![e.0],
                        total_time: time,
                        total_delay: delay,
                    }));
                }
            }
        }
        // Exhaustive search.
        let n = self.g.node_count();
        self.slot.iter_mut().for_each(|s| *s = -1);
        self.engine.reset(n);
        self.occ.clear();
        self.occ.resize(OP_CLASSES * ii as usize, 0);
        self.issue.clear();
        self.issue.resize(ii as usize, 0);
        self.rung_branches = 0;
        self.cert = None;
        self.found = None;
        let feasible = self.dfs(0, ii, budget)?;
        self.total_branches += self.rung_branches;
        if feasible {
            return Ok(Ok(self.found.take().expect("dfs success records a leaf")));
        }
        if let Some(w) = self.cert.take() {
            return Ok(Err(w));
        }
        Ok(Err(Infeasible::Exhausted {
            branches: self.rung_branches,
        }))
    }

    fn dfs(&mut self, depth: usize, ii: u64, budget: &Budget) -> Result<bool, Exhausted> {
        if depth == self.order.len() {
            self.found = Some((
                self.slot.iter().map(|&s| s as u32).collect(),
                self.engine.values().to_vec(),
            ));
            return Ok(true);
        }
        let v = self.order[depth] as usize;
        let tv = self.t[v] as i64;
        for s in 0..=(ii as i64 - tv) {
            failpoint::hit(sites::EXACT_BRANCH)
                .map_err(|f| Exhausted::Injected { site: f.site })?;
            budget.charge(1)?;
            self.rung_branches += 1;
            if !self.reserve(v, s, ii) {
                continue;
            }
            let cp = self.engine.checkpoint();
            if self.assert_edges(v, s, ii) {
                self.slot[v] = s;
                if self.dfs(depth + 1, ii, budget)? {
                    return Ok(true);
                }
                self.slot[v] = -1;
            }
            self.engine.rollback(cp);
            self.release(v, s);
            if self.cert.is_some() {
                // A rung-level certificate was found below; unwind.
                return Ok(false);
            }
        }
        Ok(false)
    }

    /// Try to reserve the modulo reservation table for `v` at slot `s`:
    /// one unit of `v`'s class for `s .. s + t(v)` plus one issue slot
    /// at `s`. Returns false (table untouched) on conflict.
    fn reserve(&mut self, v: usize, s: i64, ii: u64) -> bool {
        let ci = self.class[v];
        let t = self.t[v] as i64;
        // `reservation_slack` is 0 unless a mutation test armed the
        // test-only hook; see `hooks`.
        if let Some(units) = self.m.units(OpClass::ALL[ci]) {
            let cap = units + reservation_slack();
            let base = ci * ii as usize;
            for q in s..s + t {
                if self.occ[base + q as usize] + 1 > cap {
                    return false;
                }
            }
        }
        if let Some(width) = self.m.issue_width {
            if self.issue[s as usize] + 1 > width {
                return false;
            }
        }
        let base = ci * ii as usize;
        for q in s..s + t {
            self.occ[base + q as usize] += 1;
        }
        self.issue[s as usize] += 1;
        true
    }

    fn release(&mut self, v: usize, s: i64) {
        let base = self.class[v] * self.issue.len();
        for q in s..s + self.t[v] as i64 {
            self.occ[base + q as usize] -= 1;
        }
        self.issue[s as usize] -= 1;
    }

    /// Assert the stage constraints of every edge between `v` (slot `s`)
    /// and an already-assigned endpoint. On conflict, rolls back its own
    /// partial asserts' effects via the caller's checkpoint contract
    /// (caller always rolls back to its checkpoint on `false`), tries to
    /// promote the conflict cycle to a rung-level certificate, and
    /// returns false.
    fn assert_edges(&mut self, v: usize, s: i64, ii: u64) -> bool {
        for &e in self.g.in_edges(NodeId(v as u32)) {
            let ed = self.g.edge(e);
            let u = ed.src.index();
            let su = if u == v { s } else { self.slot[u] };
            if su < 0 {
                continue;
            }
            let q = i64::from(s < su + self.t[u] as i64);
            if let Err(cy) = self.engine.assert_ge(u, v, q - ed.delay as i64) {
                self.try_promote(ii, &cy.nodes);
                return false;
            }
        }
        for &e in self.g.out_edges(NodeId(v as u32)) {
            let ed = self.g.edge(e);
            let w = ed.dst.index();
            if w == v {
                continue; // self-loop handled above
            }
            let sw = self.slot[w];
            if sw < 0 {
                continue;
            }
            let q = i64::from(sw < s + self.t[v] as i64);
            if let Err(cy) = self.engine.assert_ge(v, w, q - ed.delay as i64) {
                self.try_promote(ii, &cy.nodes);
                return false;
            }
        }
        true
    }

    /// A stage-constraint conflict names a dependence cycle of the
    /// graph. If that cycle (taking the minimum-delay edge per hop) is
    /// critical at this II — `total_time > ii * total_delay` — then no
    /// slot assignment can ever work and the whole rung is certified
    /// infeasible, not just this branch.
    fn try_promote(&mut self, ii: u64, nodes: &[u32]) {
        if self.cert.is_some() {
            return;
        }
        let k = nodes.len();
        let mut edges = Vec::with_capacity(k);
        let mut total_time = 0u64;
        let mut total_delay = 0u64;
        for i in 0..k {
            let a = NodeId(nodes[i]);
            let b = nodes[(i + 1) % k];
            let best = self
                .g
                .out_edges(a)
                .iter()
                .filter(|&&e| self.g.edge(e).dst.0 == b)
                .min_by_key(|&&e| self.g.edge(e).delay)
                .expect("conflict cycle hops are graph edges");
            edges.push(best.0);
            total_time += self.t[a.index()] as u64;
            total_delay += self.g.edge(*best).delay as u64;
        }
        if total_time > ii * total_delay {
            self.cert = Some(Infeasible::CriticalCycle {
                edges,
                total_time,
                total_delay,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::{DfgBuilder, OpKind};

    /// Figure 1(a): A -> B (0 delays), B -> A (2 delays), unit times.
    fn two_node() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let bb = b.node("B", 1, OpKind::Mul(2));
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn unconstrained_matches_retiming_min_period() {
        let g = two_node();
        let m = MachineModel::unconstrained();
        let s = exact_schedule(&g, &m);
        let opt = cred_retime::min_period_retiming(&g);
        assert_eq!(s.ii, opt.period as u64);
        assert_eq!(s.ii, 1);
        assert!(s.rejected.is_empty());
        crate::check::check_schedule(&g, &m, &s).unwrap();
    }

    #[test]
    fn scalar_machine_serializes_the_two_ops() {
        // One ALU + one MAC but issue width 1: the two ops cannot issue
        // in the same cycle, so II = 1 is impossible and II = 2 works.
        let g = two_node();
        let m = MachineModel::builtin("scalar").unwrap();
        let s = exact_schedule(&g, &m);
        assert_eq!(s.ii, 2);
        assert_eq!(s.rejected.len(), 1);
        assert_eq!(
            s.rejected[0].witness,
            Infeasible::IssueWidth { ops: 2, width: 1 }
        );
        crate::check::check_schedule(&g, &m, &s).unwrap();
    }

    #[test]
    fn resource_cap_witnessed() {
        // Three independent MACs on one MAC unit with unlimited issue.
        let mut b = DfgBuilder::new();
        for i in 0..3 {
            let v = b.node(format!("M{i}"), 1, OpKind::Mul(0));
            b.edge(v, v, 1);
        }
        let g = b.build().unwrap();
        let mut m = MachineModel::unconstrained();
        m.set_units(OpClass::Mac, Some(1));
        let s = exact_schedule(&g, &m);
        assert_eq!(s.ii, 3);
        for r in &s.rejected {
            assert!(matches!(
                r.witness,
                Infeasible::ResourceCap {
                    class: OpClass::Mac,
                    occupancy: 3,
                    units: 1,
                }
            ));
            crate::check::check_witness(&g, &m, r).unwrap();
        }
        crate::check::check_schedule(&g, &m, &s).unwrap();
    }

    #[test]
    fn critical_cycle_witnessed_without_exhaustion() {
        // Self-loop with time 4, one delay: II < 4 is cycle-infeasible.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 4, OpKind::Add(0));
        b.edge(a, a, 1);
        let g = b.build().unwrap();
        let m = MachineModel::unconstrained();
        let s = exact_schedule(&g, &m);
        assert_eq!(s.ii, 4);
        for r in &s.rejected {
            // II 1..3 reject via the window screen (time 4 > II) — the
            // self-loop screen never gets a chance; force it with a
            // second node instead.
            crate::check::check_witness(&g, &m, r).unwrap();
        }
        // A two-node cycle with total time 4, one delay: II 2..3 reject
        // via the cycle, not the window.
        let mut b = DfgBuilder::new();
        let x = b.node("X", 2, OpKind::Add(0));
        let y = b.node("Y", 2, OpKind::Add(0));
        b.edge(x, y, 0);
        b.edge(y, x, 1);
        let g = b.build().unwrap();
        let s = exact_schedule(&g, &m);
        assert_eq!(s.ii, 4);
        assert_eq!(s.rejected.len(), 3);
        for r in &s.rejected[1..] {
            assert!(
                matches!(
                    r.witness,
                    Infeasible::CriticalCycle {
                        total_time: 4,
                        total_delay: 1,
                        ..
                    }
                ),
                "ii {} got {:?}",
                r.ii,
                r.witness
            );
            crate::check::check_witness(&g, &m, r).unwrap();
        }
        crate::check::check_schedule(&g, &m, &s).unwrap();
    }

    #[test]
    fn latency_override_lengthens_mac_ops() {
        // vliw2 gives MACs latency 2; a single MAC self-loop with 1
        // delay then needs II = 2 even though the node claims time 1.
        let mut b = DfgBuilder::new();
        let v = b.node("M", 1, OpKind::Mac(0));
        b.edge(v, v, 1);
        let g = b.build().unwrap();
        let m = MachineModel::builtin("vliw2").unwrap();
        let s = exact_schedule(&g, &m);
        assert_eq!(s.ii, 2);
        crate::check::check_schedule(&g, &m, &s).unwrap();
    }

    #[test]
    fn budget_exhaustion_is_all_or_nothing() {
        let g = two_node();
        let m = MachineModel::builtin("scalar").unwrap();
        let full = exact_schedule(&g, &m);
        // Find the exact trial count, then starve one unit below it.
        // (A fully unlimited budget skips the counter, so set a limit.)
        let need = {
            let b = Budget::unlimited().with_work_limit(u64::MAX);
            exact_schedule_budgeted(&g, &m, &b).unwrap();
            b.work_used()
        };
        assert_eq!(need, full.branches);
        for limit in [0, 1, need - 1] {
            let b = Budget::unlimited().with_work_limit(limit);
            match exact_schedule_budgeted(&g, &m, &b) {
                Err(Exhausted::WorkUnits { limit: l }) => assert_eq!(l, limit),
                other => panic!("expected WorkUnits exhaustion, got {other:?}"),
            }
        }
        let b = Budget::unlimited().with_work_limit(need);
        assert_eq!(exact_schedule_budgeted(&g, &m, &b).unwrap(), full);
    }

    #[test]
    fn stage_retiming_is_legal_and_matches_period() {
        let g = two_node();
        let s = exact_schedule(&g, &MachineModel::unconstrained());
        let r = s.stage_retiming();
        assert!(r.is_legal(&g));
        let gr = r.apply(&g);
        assert!(algo::cycle_period(&gr).unwrap() <= s.ii);
    }
}
