//! Independent validation of schedules and infeasibility witnesses.
//!
//! Everything here is written straight from the definitions in the
//! [`solver`](crate::solver) docs — no shared code with the search, no
//! reservation tables, no difference engine — so `cred-verify` can use
//! it as the fifth oracle layer without inheriting solver bugs (the
//! mutation tests depend on this independence).

use cred_dfg::{Dfg, EdgeId, NodeId, OpClass, OP_CLASSES};

use crate::machine::MachineModel;
use crate::solver::{ExactSchedule, Infeasible, RejectedII};

/// Check that `sched` is a legal schedule of `g` on `m`: window bounds,
/// per-class and issue-width resource limits, and every dependence.
/// Returns a human-readable description of the first violation.
pub fn check_schedule(g: &Dfg, m: &MachineModel, sched: &ExactSchedule) -> Result<(), String> {
    let n = g.node_count();
    let ii = sched.ii;
    if ii < 1 {
        return Err("ii must be at least 1".into());
    }
    if sched.slot.len() != n || sched.stage.len() != n {
        return Err(format!(
            "schedule covers {} slots / {} stages for {n} nodes",
            sched.slot.len(),
            sched.stage.len()
        ));
    }
    // Window bounds.
    for v in g.node_ids() {
        let t = m.op_time(g, v) as u64;
        let s = sched.slot[v.index()] as u64;
        if s + t > ii {
            return Err(format!(
                "node {v} at slot {s} with time {t} overflows the II window {ii}"
            ));
        }
    }
    // Resources, rebuilt from scratch.
    let mut occ = vec![0u32; OP_CLASSES * ii as usize];
    let mut issue = vec![0u32; ii as usize];
    for v in g.node_ids() {
        let ci = g.node(v).op.class().index();
        let s = sched.slot[v.index()] as usize;
        for q in s..s + m.op_time(g, v) as usize {
            occ[ci * ii as usize + q] += 1;
        }
        issue[s] += 1;
    }
    for class in OpClass::ALL {
        if let Some(units) = m.units(class) {
            for s in 0..ii as usize {
                let used = occ[class.index() * ii as usize + s];
                if used > units {
                    return Err(format!("slot {s} runs {used} {class} ops on {units} units"));
                }
            }
        }
    }
    if let Some(width) = m.issue_width {
        for (s, &used) in issue.iter().enumerate() {
            if used > width {
                return Err(format!("slot {s} issues {used} ops on width {width}"));
            }
        }
    }
    // Dependences: sigma(v) >= sigma(u) + t(u) - ii * d(e).
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let su = sched.sigma(ed.src);
        let sv = sched.sigma(ed.dst);
        let t = m.op_time(g, ed.src) as i64;
        if sv < su + t - ii as i64 * ed.delay as i64 {
            return Err(format!(
                "edge {e} ({} -> {}) violated: sigma {sv} < {su} + {t} - {ii} * {}",
                ed.src, ed.dst, ed.delay
            ));
        }
    }
    Ok(())
}

/// Check one rejected rung's certificate arithmetically. Closed-form
/// witnesses are fully re-derived from the graph and machine; an
/// [`Infeasible::Exhausted`] witness is certificate-by-search and only
/// its plausibility (at least one trial) is checkable.
pub fn check_witness(g: &Dfg, m: &MachineModel, rejected: &RejectedII) -> Result<(), String> {
    let ii = rejected.ii;
    match &rejected.witness {
        Infeasible::OpExceedsWindow { node, time } => {
            let v = NodeId(*node);
            if *node as usize >= g.node_count() {
                return Err(format!("witness node n{node} out of range"));
            }
            if m.op_time(g, v) != *time {
                return Err(format!(
                    "witness time {time} != machine time {} of {v}",
                    m.op_time(g, v)
                ));
            }
            if u64::from(*time) <= ii {
                return Err(format!("time {time} fits the II window {ii}"));
            }
            Ok(())
        }
        Infeasible::ResourceCap {
            class,
            occupancy,
            units,
        } => {
            if m.units(*class) != Some(*units) {
                return Err(format!("machine has {:?} {class} units", m.units(*class)));
            }
            let actual: u64 = g
                .node_ids()
                .filter(|&v| g.node(v).op.class() == *class)
                .map(|v| m.op_time(g, v) as u64)
                .sum();
            if actual != *occupancy {
                return Err(format!(
                    "witness occupancy {occupancy} != actual {actual} for {class}"
                ));
            }
            if *occupancy <= ii * u64::from(*units) {
                return Err(format!(
                    "occupancy {occupancy} fits {ii} cycles of {units} {class} units"
                ));
            }
            Ok(())
        }
        Infeasible::IssueWidth { ops, width } => {
            if m.issue_width != Some(*width) {
                return Err(format!("machine issue width is {:?}", m.issue_width));
            }
            if *ops != g.node_count() as u64 {
                return Err(format!("witness ops {ops} != {} nodes", g.node_count()));
            }
            if *ops <= ii * u64::from(*width) {
                return Err(format!("{ops} ops fit {ii} cycles of width {width}"));
            }
            Ok(())
        }
        Infeasible::CriticalCycle {
            edges,
            total_time,
            total_delay,
        } => {
            if edges.is_empty() {
                return Err("empty critical cycle".into());
            }
            let mut time = 0u64;
            let mut delay = 0u64;
            for (i, &e) in edges.iter().enumerate() {
                if e as usize >= g.edge_count() {
                    return Err(format!("witness edge e{e} out of range"));
                }
                let ed = g.edge(EdgeId(e));
                let next = g.edge(EdgeId(edges[(i + 1) % edges.len()]));
                if ed.dst != next.src {
                    return Err(format!(
                        "cycle broken: e{e} ends at {} but the next edge starts at {}",
                        ed.dst, next.src
                    ));
                }
                time += m.op_time(g, ed.src) as u64;
                delay += ed.delay as u64;
            }
            if time != *total_time || delay != *total_delay {
                return Err(format!(
                    "witness sums ({total_time}, {total_delay}) != actual ({time}, {delay})"
                ));
            }
            if *total_time <= ii * *total_delay {
                return Err(format!(
                    "cycle time {total_time} fits {ii} * {total_delay} delays"
                ));
            }
            Ok(())
        }
        Infeasible::Exhausted { branches } => {
            if *branches == 0 {
                return Err("exhausted search performed no trials".into());
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::exact_schedule;
    use cred_dfg::{DfgBuilder, OpKind};

    fn two_node() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let bb = b.node("B", 1, OpKind::Mul(2));
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn checker_rejects_tampered_schedules() {
        let g = two_node();
        let m = MachineModel::builtin("scalar").unwrap();
        let good = exact_schedule(&g, &m);
        check_schedule(&g, &m, &good).unwrap();

        // Same slot for both ops: issue width 1 violated.
        let mut bad = good.clone();
        bad.slot = vec![0, 0];
        assert!(check_schedule(&g, &m, &bad).is_err());

        // Slot past the window.
        let mut bad = good.clone();
        bad.slot[0] = bad.ii as u32;
        assert!(check_schedule(&g, &m, &bad).is_err());

        // Stage tampering that breaks the zero-delay dependence.
        let mut bad = good.clone();
        bad.stage[1] -= 1;
        assert!(check_schedule(&g, &m, &bad).is_err());
    }

    #[test]
    fn checker_rejects_tampered_witnesses() {
        let g = two_node();
        let m = MachineModel::builtin("scalar").unwrap();
        let s = exact_schedule(&g, &m);
        let good = &s.rejected[0];
        check_witness(&g, &m, good).unwrap();

        // Claiming the same witness one rung higher must fail (2 ops fit
        // two cycles of width 1).
        let mut bad = good.clone();
        bad.ii = 2;
        assert!(check_witness(&g, &m, &bad).is_err());

        // Lying about the machine.
        let wrong = MachineModel::builtin("vliw4").unwrap();
        assert!(check_witness(&g, &wrong, good).is_err());

        // A fabricated critical cycle with wrong sums.
        let bad = RejectedII {
            ii: 1,
            witness: Infeasible::CriticalCycle {
                edges: vec![0, 1],
                total_time: 99,
                total_delay: 2,
            },
        };
        assert!(check_witness(&g, &m, &bad).is_err());
        // The honest version of that cycle: time 2, delay 2, which fits
        // II = 1, so it is not a certificate either.
        let honest = RejectedII {
            ii: 1,
            witness: Infeasible::CriticalCycle {
                edges: vec![0, 1],
                total_time: 2,
                total_delay: 2,
            },
        };
        assert!(check_witness(&g, &m, &honest).is_err());
    }
}
