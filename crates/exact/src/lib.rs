//! # cred-exact — exact resource-constrained modulo scheduling
//!
//! The retiming solvers in `cred-retime` find the rate-optimal schedule
//! of a kernel assuming the machine can issue everything at once. Real
//! DSP datapaths cannot: they have a handful of functional units per
//! class and a fixed VLIW issue width, so the retiming-only period is an
//! optimistic lower bound. This crate solves the resource-constrained
//! problem *exactly*, in the style of SMT-based software pipelining
//! (Roorda's "Optimal Software Pipelining using an SMT-Solver") but with
//! a hand-rolled core — branch-and-bound over modulo reservation tables
//! for the resource side, incremental difference-constraint propagation
//! ([`cred_retime::diff`]) for the dependence side — and proves the
//! achieved initiation interval minimal by exhausting the II ladder with
//! a certified [`Infeasible`] witness per rejected rung.
//!
//! * [`MachineModel`] — per-op-class slot counts, VLIW issue width,
//!   optional per-class latency overrides; parsed from a small textual
//!   format (committed machine files live in `machines/`);
//! * [`exact_schedule`] / [`exact_schedule_budgeted`] — the solver;
//!   budgeted search charges one work unit per slot trial and exhausts
//!   all-or-nothing like every other budgeted pass;
//! * [`ExactSchedule`] — the product: `(ii, slot, stage)` plus the
//!   per-rung witnesses; [`ExactSchedule::stage_retiming`] adapts the
//!   stages into a legal [`cred_retime::Retiming`], which is how exact
//!   schedules flow into the CRED code generators and VM oracle;
//! * [`check`] — independent re-validation of schedules and witnesses,
//!   used by `cred-verify`'s fifth oracle layer.
//!
//! On [`MachineModel::unconstrained`] the solver degenerates to the
//! retiming problem and is differentially tested bit-identical in period
//! to `RetimeSolver` (see `tests/unconstrained_prop.rs`).

pub mod check;
pub mod machine;
pub mod solver;

pub use machine::{MachineModel, MachineParseError};
#[cfg(feature = "mutation-hooks")]
pub use solver::hooks;
pub use solver::{exact_schedule, exact_schedule_budgeted, ExactSchedule, Infeasible, RejectedII};
