//! Machine models and their textual description format.
//!
//! A [`MachineModel`] captures the resource side of a VLIW DSP datapath
//! at the granularity the exact scheduler needs:
//!
//! * per-[`OpClass`] **slot counts** — how many ops of a class may be in
//!   flight in the same cycle (an op occupies one unit of its class for
//!   its whole computation time); `unlimited` removes the cap,
//! * a VLIW **issue width** — how many ops may *start* in the same cycle
//!   (one long instruction word per cycle), and
//! * optional per-class **latency overrides** — replace every node's
//!   computation time of that class, modeling a machine whose multiplier
//!   (say) takes 2 cycles regardless of what the kernel claims.
//!
//! The textual format is line-oriented, in the style of the
//! `tests/corpus` case files:
//!
//! ```text
//! # cred machine v1
//! name scalar
//! issue-width 1
//! class alu units 1
//! class mac units 1 latency 2
//! ```
//!
//! Every directive is optional except the header; an unmentioned class
//! has unlimited units and no latency override, and an absent
//! `issue-width` means unlimited issue. `units`/`issue-width` accept
//! `unlimited`. The committed machine files live in `machines/` and are
//! pinned to the [built-in models](MachineModel::builtin) by test.

use cred_dfg::{Dfg, NodeId, OpClass, OP_CLASSES};
use std::fmt;

/// A machine description: the resource constraints the exact scheduler
/// solves under. See the module docs for the textual format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineModel {
    /// Display name (from the `name` directive; not part of the
    /// [fingerprint](MachineModel::fingerprint), like DFG node names).
    pub name: String,
    /// Max ops issued per cycle; `None` = unlimited.
    pub issue_width: Option<u32>,
    units: [Option<u32>; OP_CLASSES],
    latency: [Option<u32>; OP_CLASSES],
}

impl MachineModel {
    /// The machine with no constraints at all: unlimited units of every
    /// class, unlimited issue width, no latency overrides. On this model
    /// the exact scheduler must agree bit-identically with the retiming
    /// solvers (the headline differential-test surface).
    pub fn unconstrained() -> Self {
        MachineModel {
            name: "unconstrained".into(),
            issue_width: None,
            units: [None; OP_CLASSES],
            latency: [None; OP_CLASSES],
        }
    }

    /// Names of the built-in models, in a stable order.
    pub const BUILTIN_NAMES: [&'static str; 4] = ["unconstrained", "scalar", "vliw2", "vliw4"];

    /// A built-in model by name. The same models are committed as
    /// `machines/<name>.mach`; a test pins the two representations
    /// together.
    pub fn builtin(name: &str) -> Option<MachineModel> {
        let mut m = MachineModel::unconstrained();
        m.name = name.into();
        match name {
            "unconstrained" => {}
            // A single-issue DSP core: one ALU, one MAC, one op per cycle.
            "scalar" => {
                m.issue_width = Some(1);
                m.units = [Some(1), Some(1)];
            }
            // A 2-wide VLIW with a 2-cycle multiplier pipeline.
            "vliw2" => {
                m.issue_width = Some(2);
                m.units = [Some(1), Some(1)];
                m.latency[OpClass::Mac.index()] = Some(2);
            }
            // A 4-wide VLIW with duplicated units.
            "vliw4" => {
                m.issue_width = Some(4);
                m.units = [Some(2), Some(2)];
            }
            _ => return None,
        }
        Some(m)
    }

    /// Every built-in model, in [`MachineModel::BUILTIN_NAMES`] order.
    pub fn builtins() -> Vec<MachineModel> {
        Self::BUILTIN_NAMES
            .iter()
            .map(|n| Self::builtin(n).expect("builtin name"))
            .collect()
    }

    /// Units available for `class`; `None` = unlimited.
    #[inline]
    pub fn units(&self, class: OpClass) -> Option<u32> {
        self.units[class.index()]
    }

    /// Set the unit count for `class` (`None` = unlimited).
    ///
    /// # Panics
    /// Panics on `Some(0)` — nothing of that class could ever run.
    pub fn set_units(&mut self, class: OpClass, units: Option<u32>) {
        assert!(units != Some(0), "unit count must be at least 1");
        self.units[class.index()] = units;
    }

    /// Latency override for `class`; `None` = use each node's own time.
    #[inline]
    pub fn latency_override(&self, class: OpClass) -> Option<u32> {
        self.latency[class.index()]
    }

    /// Set the latency override for `class`.
    ///
    /// # Panics
    /// Panics on `Some(0)` — computation times are `>= 1`.
    pub fn set_latency(&mut self, class: OpClass, latency: Option<u32>) {
        assert!(latency != Some(0), "latency override must be at least 1");
        self.latency[class.index()] = latency;
    }

    /// The computation time of node `v` *on this machine*: the class
    /// latency override if present, the node's own time otherwise.
    #[inline]
    pub fn op_time(&self, g: &Dfg, v: NodeId) -> u32 {
        let n = g.node(v);
        self.latency[n.op.class().index()].unwrap_or(n.time)
    }

    /// True if this model constrains nothing (and therefore the exact
    /// scheduler degenerates to the retiming solvers).
    pub fn is_unconstrained(&self) -> bool {
        self.issue_width.is_none()
            && self.units.iter().all(Option::is_none)
            && self.latency.iter().all(Option::is_none)
    }

    /// Structural 64-bit fingerprint (FNV-1a over every constraint,
    /// ignoring the name), for cache/coalescing keys alongside
    /// `Dfg::fingerprint`.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut word = |w: u64| {
            for byte in w.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        let enc = |o: Option<u32>| o.map_or(u64::MAX, |v| v as u64);
        word(enc(self.issue_width));
        for i in 0..OP_CLASSES {
            word(enc(self.units[i]));
            word(enc(self.latency[i]));
        }
        h
    }

    /// Parse the textual machine-description format. See module docs.
    pub fn parse(text: &str) -> Result<MachineModel, MachineParseError> {
        let err = |line: usize, msg: String| Err(MachineParseError { line, msg });
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == "# cred machine v1" => {}
            _ => return err(1, "missing header line \"# cred machine v1\"".into()),
        }
        let mut m = MachineModel::unconstrained();
        m.name = "anonymous".into();
        let mut seen_class = [false; OP_CLASSES];
        let mut seen_width = false;
        let mut seen_name = false;
        for (i, raw) in lines {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let parse_count =
                |word: Option<&str>, what: &str| -> Result<Option<u32>, MachineParseError> {
                    match word {
                        Some("unlimited") => Ok(None),
                        Some(w) => match w.parse::<u32>() {
                            Ok(n) if n >= 1 => Ok(Some(n)),
                            Ok(_) => Err(MachineParseError {
                                line: lineno,
                                msg: format!("{what} must be at least 1"),
                            }),
                            Err(_) => Err(MachineParseError {
                                line: lineno,
                                msg: format!("bad {what} {w:?}"),
                            }),
                        },
                        None => Err(MachineParseError {
                            line: lineno,
                            msg: format!("missing {what}"),
                        }),
                    }
                };
            match tok.next() {
                Some("name") => {
                    if seen_name {
                        return err(lineno, "duplicate name directive".into());
                    }
                    seen_name = true;
                    match tok.next() {
                        Some(n) => m.name = n.to_string(),
                        None => return err(lineno, "missing machine name".into()),
                    }
                }
                Some("issue-width") => {
                    if seen_width {
                        return err(lineno, "duplicate issue-width directive".into());
                    }
                    seen_width = true;
                    m.issue_width = parse_count(tok.next(), "issue width")?;
                }
                Some("class") => {
                    let class = match tok.next().and_then(OpClass::parse) {
                        Some(c) => c,
                        None => return err(lineno, "expected a class name (alu, mac)".into()),
                    };
                    if seen_class[class.index()] {
                        return err(lineno, format!("duplicate class {class} directive"));
                    }
                    seen_class[class.index()] = true;
                    match tok.next() {
                        Some("units") => {}
                        _ => return err(lineno, "expected \"units\" after the class name".into()),
                    }
                    m.units[class.index()] = parse_count(tok.next(), "unit count")?;
                    match tok.next() {
                        None => {}
                        Some("latency") => {
                            let lat = parse_count(tok.next(), "latency")?;
                            if lat.is_none() {
                                return err(lineno, "latency cannot be unlimited".into());
                            }
                            m.latency[class.index()] = lat;
                        }
                        Some(w) => return err(lineno, format!("unexpected token {w:?}")),
                    }
                }
                Some(d) => return err(lineno, format!("unknown directive {d:?}")),
                None => unreachable!("blank lines are skipped"),
            }
            if let Some(extra) = tok.next() {
                return err(lineno, format!("trailing token {extra:?}"));
            }
        }
        Ok(m)
    }

    /// Canonical textual form; `parse(to_text(m))` round-trips `m`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("# cred machine v1\n");
        let _ = writeln!(s, "name {}", self.name);
        match self.issue_width {
            Some(w) => {
                let _ = writeln!(s, "issue-width {w}");
            }
            None => {
                let _ = writeln!(s, "issue-width unlimited");
            }
        }
        for class in OpClass::ALL {
            let _ = write!(s, "class {class} units ");
            match self.units[class.index()] {
                Some(u) => {
                    let _ = write!(s, "{u}");
                }
                None => {
                    let _ = write!(s, "unlimited");
                }
            }
            if let Some(l) = self.latency[class.index()] {
                let _ = write!(s, " latency {l}");
            }
            s.push('\n');
        }
        s
    }
}

/// Error from [`MachineModel::parse`], with the 1-based offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine description line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for MachineParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse_round_trip() {
        for m in MachineModel::builtins() {
            let text = m.to_text();
            assert_eq!(MachineModel::parse(&text).unwrap(), m, "{text}");
        }
    }

    #[test]
    fn unconstrained_is_unconstrained() {
        assert!(MachineModel::unconstrained().is_unconstrained());
        for name in ["scalar", "vliw2", "vliw4"] {
            assert!(!MachineModel::builtin(name).unwrap().is_unconstrained());
        }
        assert_eq!(MachineModel::builtin("tms320"), None);
    }

    #[test]
    fn fingerprint_ignores_name_sees_structure() {
        let mut a = MachineModel::builtin("scalar").unwrap();
        let b = MachineModel::builtin("scalar").unwrap();
        a.name = "renamed".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = b.clone();
        c.set_units(OpClass::Alu, Some(2));
        assert_ne!(b.fingerprint(), c.fingerprint());
        let mut d = b.clone();
        d.set_latency(OpClass::Mac, Some(2));
        assert_ne!(b.fingerprint(), d.fingerprint());
        assert_ne!(MachineModel::unconstrained().fingerprint(), b.fingerprint());
    }

    #[test]
    fn op_time_prefers_override() {
        use cred_dfg::{DfgBuilder, OpKind};
        let mut b = DfgBuilder::new();
        let a = b.node("A", 3, OpKind::Add(0));
        let m1 = b.node("M", 3, OpKind::Mul(0));
        b.edge(a, m1, 1);
        let g = b.build().unwrap();
        let vliw2 = MachineModel::builtin("vliw2").unwrap();
        assert_eq!(vliw2.op_time(&g, a), 3); // no alu override
        assert_eq!(vliw2.op_time(&g, m1), 2); // mac latency 2
        let un = MachineModel::unconstrained();
        assert_eq!(un.op_time(&g, m1), 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        let cases = [
            ("no header", "name x\n"),
            ("unknown directive", "# cred machine v1\nwidgets 3\n"),
            ("bad class", "# cred machine v1\nclass fpu units 1\n"),
            ("zero units", "# cred machine v1\nclass alu units 0\n"),
            ("missing units kw", "# cred machine v1\nclass alu 1\n"),
            (
                "dup class",
                "# cred machine v1\nclass alu units 1\nclass alu units 2\n",
            ),
            (
                "dup width",
                "# cred machine v1\nissue-width 1\nissue-width 2\n",
            ),
            (
                "unlimited latency",
                "# cred machine v1\nclass mac units 1 latency unlimited\n",
            ),
            ("trailing", "# cred machine v1\nissue-width 2 cores\n"),
        ];
        for (what, text) in cases {
            assert!(MachineModel::parse(text).is_err(), "{what} should fail");
        }
    }

    #[test]
    fn parse_accepts_comments_and_defaults() {
        let m =
            MachineModel::parse("# cred machine v1\n\n# a comment\nclass mac units 1\n").unwrap();
        assert_eq!(m.name, "anonymous");
        assert_eq!(m.issue_width, None);
        assert_eq!(m.units(OpClass::Alu), None);
        assert_eq!(m.units(OpClass::Mac), Some(1));
        assert_eq!(m.latency_override(OpClass::Mac), None);
    }
}
