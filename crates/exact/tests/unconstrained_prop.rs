//! The headline differential test: on [`MachineModel::unconstrained`]
//! the exact scheduler must degenerate to the retiming problem and
//! agree **bit-identically in period** with both retiming paths —
//! the warm incremental [`RetimeSolver`] (via `min_period_retiming_with`)
//! and the dense [`ConstraintSystem`] reference
//! (`min_period_retiming_reference`). On top of period identity we
//! demand a legality-equivalent schedule: the exact slots/stages pass
//! the independent checker, the extracted stage retiming is legal and
//! realizes the same period, and the rejected-II ladder is contiguous
//! with an arithmetically checked witness on every rung.
//!
//! A deterministic sweep covers 1000+ generated DFGs (the ISSUE's
//! acceptance floor) regardless of proptest configuration; a proptest
//! block rides along for shrinking when something does break.

use cred_dfg::algo::{cycle_period, WdMatrices};
use cred_dfg::{gen, Dfg};
use cred_exact::{check, exact_schedule, MachineModel};
use cred_retime::min_period_retiming_with;
use cred_retime::minperiod::min_period_retiming_reference;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_from(seed: u64, nodes: usize) -> Dfg {
    let cfg = gen::RandomDfgConfig {
        nodes,
        forward_edge_prob: 0.35,
        back_edges: (nodes / 2).max(1),
        max_delay: 3,
        max_time: 3,
    };
    gen::random_dfg(&mut StdRng::seed_from_u64(seed), &cfg)
}

/// The full agreement predicate for one graph. Returns a description of
/// the first violation so both the sweep and the proptest can report it.
fn agree_on(g: &Dfg) -> Result<(), String> {
    let m = MachineModel::unconstrained();
    let ex = exact_schedule(g, &m);

    let wd = WdMatrices::compute(g);
    let fast = min_period_retiming_with(g, &wd);
    let dense = min_period_retiming_reference(g, &wd);
    if fast.period != dense.period {
        return Err(format!(
            "retiming paths disagree: solver {} vs dense {}",
            fast.period, dense.period
        ));
    }
    if ex.ii != fast.period {
        return Err(format!(
            "exact II {} != retiming min period {}",
            ex.ii, fast.period
        ));
    }

    // The schedule itself is legal per the independent checker.
    check::check_schedule(g, &m, &ex).map_err(|e| format!("schedule check: {e}"))?;

    // Ladder contiguity: every II below the optimum was rejected, in
    // order, with a witness that re-checks arithmetically.
    if ex.rejected.len() as u64 != ex.ii - 1 {
        return Err(format!(
            "ladder has {} rungs below II {}",
            ex.rejected.len(),
            ex.ii
        ));
    }
    for (i, rung) in ex.rejected.iter().enumerate() {
        if rung.ii != i as u64 + 1 {
            return Err(format!("rung {i} claims II {}", rung.ii));
        }
        check::check_witness(g, &m, rung)
            .map_err(|e| format!("witness for II {}: {e}", rung.ii))?;
    }

    // Legality equivalence: the stage retiming extracted from the exact
    // schedule is a legal retiming realizing the same period, i.e. it is
    // interchangeable with the RetimeSolver product downstream.
    let r = ex.stage_retiming();
    if !r.is_legal(g) {
        return Err("stage retiming is not legal".into());
    }
    let retimed_period = cycle_period(&r.apply(g));
    if retimed_period > Some(ex.ii) {
        return Err(format!(
            "stage retiming realizes period {retimed_period:?} > II {}",
            ex.ii
        ));
    }
    Ok(())
}

/// Deterministic sweep: 1100 fuzzed DFGs across the 2..=10 node range,
/// every one held bit-identical in period to both retiming paths.
#[test]
fn unconstrained_matches_retiming_on_1000_plus_dfgs() {
    let mut checked = 0u32;
    for seed in 0..1100u64 {
        let nodes = 2 + (seed % 9) as usize; // 2..=10
        let g = graph_from(seed, nodes);
        if let Err(e) = agree_on(&g) {
            panic!("seed {seed} ({nodes} nodes): {e}");
        }
        checked += 1;
    }
    assert!(checked >= 1000, "sweep shrank below the acceptance floor");
}

/// Structured generators too: rings, chains with feedback, and layered
/// graphs exercise degenerate shapes the random generator rarely emits.
#[test]
fn unconstrained_matches_retiming_on_structured_graphs() {
    for n in 1..=8usize {
        let times: Vec<u32> = (0..n).map(|i| 1 + (i as u32 % 3)).collect();
        let mut delays = vec![0u32; n];
        delays[n - 1] = 2;
        agree_on(&gen::ring(&times, &delays)).unwrap_or_else(|e| panic!("ring({n}): {e}"));
    }
    for n in 2..=8 {
        agree_on(&gen::chain_with_feedback(n, 2))
            .unwrap_or_else(|e| panic!("chain_with_feedback({n}): {e}"));
    }
    for (width, depth) in [(2, 2), (2, 3), (3, 2), (2, 4)] {
        agree_on(&gen::layered(width, depth, 2))
            .unwrap_or_else(|e| panic!("layered({width},{depth}): {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shrinking companion to the sweep: same predicate, proptest-driven
    /// inputs, so a regression minimizes itself.
    #[test]
    fn unconstrained_agreement_shrinks(seed in any::<u64>(), nodes in 2..10usize) {
        let g = graph_from(seed, nodes);
        prop_assert!(agree_on(&g).is_ok(), "{:?}", agree_on(&g));
    }
}
