//! The committed machine description files in `machines/` are the
//! on-disk form of the compiled-in builtins. This test pins them
//! together: editing one without the other fails here, so `credc
//! verify --machine machines/scalar.mach` and `--machine scalar` can
//! never drift apart.

use std::fs;
use std::path::Path;

use cred_exact::MachineModel;

#[test]
fn committed_machine_files_match_builtins() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../machines");
    for name in MachineModel::BUILTIN_NAMES {
        let path = dir.join(format!("{name}.mach"));
        let text =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let parsed = MachineModel::parse(&text)
            .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        let builtin = MachineModel::builtin(name).unwrap();
        assert_eq!(
            parsed, builtin,
            "machines/{name}.mach drifted from MachineModel::builtin({name:?})"
        );
    }
}

#[test]
fn machine_files_round_trip_through_canonical_text() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../machines");
    for name in MachineModel::BUILTIN_NAMES {
        let text = fs::read_to_string(dir.join(format!("{name}.mach"))).unwrap();
        let parsed = MachineModel::parse(&text).unwrap();
        let reparsed = MachineModel::parse(&parsed.to_text()).unwrap();
        assert_eq!(parsed, reparsed);
    }
}
