//! Hand-rolled tokenizer with line tracking and `//` comments.

use std::fmt;

/// Lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier (`A`, `loop`, `i`, ...). Keywords are identified by the
    /// parser.
    Ident(String),
    /// Non-negative integer literal.
    Int(i64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `;`
    Semi,
    /// `@`
    At,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Eq => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Semi => write!(f, ";"),
            Token::At => write!(f, "@"),
        }
    }
}

/// Tokenization failure with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: u32,
    /// Offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character '{}'", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`, returning `(token, line)` pairs.
pub fn tokenize(src: &str) -> Result<Vec<(Token, u32)>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError { line, ch: '/' });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(s), line));
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n * 10 + d as i64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Int(n), line));
            }
            _ => {
                chars.next();
                let tok = match c {
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '=' => Token::Eq,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    ';' => Token::Semi,
                    '@' => Token::At,
                    ch => return Err(LexError { line, ch }),
                };
                out.push((tok, line));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            toks("A[i] = B[i-3]*3;"),
            vec![
                Token::Ident("A".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Eq,
                Token::Ident("B".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::Minus,
                Token::Int(3),
                Token::RBracket,
                Token::Star,
                Token::Int(3),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = tokenize("loop { // header\n  x_1[i] = 5; }\n").unwrap();
        assert_eq!(ts[0], (Token::Ident("loop".into()), 1));
        // x_1 appears on line 2.
        assert_eq!(ts[2], (Token::Ident("x_1".into()), 2));
    }

    #[test]
    fn at_annotation() {
        assert!(toks("@ 3").contains(&Token::At));
    }

    #[test]
    fn rejects_garbage() {
        let err = tokenize("A[i] = ?;").unwrap_err();
        assert_eq!(err.ch, '?');
        assert_eq!(err.line, 1);
    }

    #[test]
    fn lone_slash_rejected() {
        assert!(tokenize("a / b").is_err());
    }
}
