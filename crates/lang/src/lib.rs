//! # cred-lang — a textual loop-kernel language
//!
//! The paper presents its loops as code listings (`A[i] = E[i-4] + 9; ...`);
//! this crate parses that notation into `cred-dfg` graphs so the framework
//! can be driven from source text (see the `credc` CLI), and un-parses
//! graphs back for display.
//!
//! ## Syntax
//!
//! ```text
//! // y'' example — one statement per DFG node
//! loop {
//!     A[i] = E[i-4] + 9;
//!     B[i] = A[i] * 5;
//!     C[i] = A[i] + B[i-2];
//!     D[i] = A[i] * C[i];
//!     E[i] = D[i] + 30;        @ 2   // optional computation time
//! }
//! ```
//!
//! * every statement defines one array (= one DFG node); arrays are
//!   defined exactly once;
//! * references `Name[i-k]` with `k >= 1` are inter-iteration dependencies
//!   (k delays); `Name[i]` is an intra-iteration dependence;
//! * supported expression shapes mirror [`cred_dfg::OpKind`]:
//!   sums (`Add`), a leading term minus others (`Sub`), products (`Mul`),
//!   a two-factor product plus addends (`Mac`), and a bare constant with
//!   no references (`Input`, which evaluates iteration-dependently);
//! * integer literals fold into the operation constant;
//! * `//` comments and `@ t` time annotations are allowed.
//!
//! Round trip: [`parse`] -> [`cred_dfg::Dfg`] -> [`unparse`].

mod ast;
mod lexer;
mod lower;
mod parser;
mod unparse;

pub use ast::{Expr, LoopKernel, Ref, Stmt, Term};
pub use lexer::{LexError, Token};
pub use lower::{lower, LowerError};
pub use parser::{parse_kernel, ParseError};
pub use unparse::unparse;

/// Parse source text directly into a validated DFG.
///
/// ```
/// let g = cred_lang::parse("loop { A[i] = A[i-1] + 1; }").unwrap();
/// assert_eq!(g.node_count(), 1);
/// ```
pub fn parse(src: &str) -> Result<cred_dfg::Dfg, Error> {
    let kernel = parse_kernel(src)?;
    Ok(lower(&kernel)?)
}

/// Any front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Tokenization or syntax failure.
    Parse(ParseError),
    /// Semantic failure while building the DFG.
    Lower(LowerError),
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<LowerError> for Error {
    fn from(e: LowerError) -> Self {
        Error::Lower(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}
