//! Abstract syntax of the loop-kernel language.

/// A reference `Name[i - delay]` (delay 0 means `Name[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ref {
    /// Array (node) name.
    pub name: String,
    /// Delay `k` in `Name[i-k]`, `k >= 0`.
    pub delay: u32,
}

/// One multiplicative term: a product of references and an integer
/// coefficient (folded from literal factors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// `+1` or `-1`, from the additive context.
    pub sign: i64,
    /// Folded product of integer literal factors.
    pub coeff: i64,
    /// Reference factors, in source order.
    pub refs: Vec<Ref>,
}

/// A sum of terms (the right-hand side of a statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Terms in source order.
    pub terms: Vec<Term>,
}

/// `Name[i] = expr ;` with an optional `@ time` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Defined array.
    pub name: String,
    /// Right-hand side.
    pub expr: Expr,
    /// Computation time (default 1).
    pub time: u32,
    /// 1-based source line, for diagnostics.
    pub line: u32,
}

/// A whole `loop { ... }` kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopKernel {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_construct() {
        let r = Ref {
            name: "A".into(),
            delay: 2,
        };
        let t = Term {
            sign: 1,
            coeff: 3,
            refs: vec![r],
        };
        let e = Expr { terms: vec![t] };
        let s = Stmt {
            name: "B".into(),
            expr: e,
            time: 1,
            line: 1,
        };
        let k = LoopKernel { stmts: vec![s] };
        assert_eq!(k.stmts.len(), 1);
        assert_eq!(k.stmts[0].expr.terms[0].refs[0].delay, 2);
    }
}
