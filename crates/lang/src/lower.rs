//! Lowering: classify each statement's expression shape onto a
//! [`cred_dfg::OpKind`] and build the DFG.

use crate::ast::{LoopKernel, Stmt, Term};
use cred_dfg::{Dfg, DfgBuilder, NodeId, OpKind};
use std::collections::BTreeMap;
use std::fmt;

/// Semantic lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// An array is defined more than once.
    Redefinition {
        /// Array name.
        name: String,
        /// Line of the second definition.
        line: u32,
    },
    /// A reference names an array no statement defines.
    Undefined {
        /// Referenced name.
        name: String,
        /// Line of the reference.
        line: u32,
    },
    /// The expression does not match any supported operation shape.
    UnsupportedShape {
        /// Defining array.
        name: String,
        /// Line of the statement.
        line: u32,
        /// Explanation.
        detail: String,
    },
    /// The resulting graph has a zero-delay dependence cycle.
    ZeroDelayCycle,
    /// The kernel has no statements.
    EmptyKernel,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Redefinition { name, line } => {
                write!(f, "line {line}: array '{name}' defined twice")
            }
            LowerError::Undefined { name, line } => {
                write!(f, "line {line}: reference to undefined array '{name}'")
            }
            LowerError::UnsupportedShape { name, line, detail } => {
                write!(
                    f,
                    "line {line}: unsupported expression for '{name}': {detail}"
                )
            }
            LowerError::ZeroDelayCycle => {
                write!(
                    f,
                    "the loop has a zero-delay dependence cycle (no legal schedule)"
                )
            }
            LowerError::EmptyKernel => write!(f, "the loop body has no statements"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Classified operation plus ordered operand references.
fn classify(stmt: &Stmt) -> Result<(OpKind, Vec<crate::ast::Ref>), LowerError> {
    let unsupported = |detail: &str| LowerError::UnsupportedShape {
        name: stmt.name.clone(),
        line: stmt.line,
        detail: detail.to_string(),
    };
    let (consts, refs): (Vec<&Term>, Vec<&Term>) =
        stmt.expr.terms.iter().partition(|t| t.refs.is_empty());
    let c: i64 = consts.iter().map(|t| t.sign * t.coeff).sum();
    let operands: Vec<crate::ast::Ref> = refs.iter().flat_map(|t| t.refs.iter().cloned()).collect();
    match refs.as_slice() {
        [] => Ok((OpKind::Input(c), operands)),
        [t] => {
            let k = t.sign * t.coeff;
            match (t.refs.len(), k) {
                (1, 1) => Ok((OpKind::Add(c), operands)),
                (1, _) => Ok((OpKind::Scale(k, c), operands)),
                (_, 1) => Ok((OpKind::Mul(c), operands)),
                (_, _) => Ok((OpKind::ScaledMul(k, c), operands)),
            }
        }
        [first, rest @ ..] => {
            let plain = |t: &Term| t.refs.len() == 1 && t.coeff == 1;
            if first.sign != 1 {
                return Err(unsupported("leading term must be positive"));
            }
            if plain(first) && rest.iter().all(|t| plain(t) && t.sign == 1) {
                return Ok((OpKind::Add(c), operands));
            }
            if plain(first) && rest.iter().all(|t| plain(t) && t.sign == -1) {
                return Ok((OpKind::Sub(c), operands));
            }
            if first.refs.len() == 2
                && first.coeff == 1
                && rest.iter().all(|t| plain(t) && t.sign == 1)
            {
                return Ok((OpKind::Mac(c), operands));
            }
            Err(unsupported(
                "mixing scaled products with other terms (split the statement)",
            ))
        }
    }
}

/// Lower a parsed kernel to a validated DFG. Statement order becomes node
/// order; operand order becomes in-edge order (which [`OpKind::Sub`] and
/// [`OpKind::Mac`] depend on).
pub fn lower(kernel: &LoopKernel) -> Result<Dfg, LowerError> {
    let mut b = DfgBuilder::new();
    let mut ids: BTreeMap<&str, NodeId> = BTreeMap::new();
    let mut classified = Vec::with_capacity(kernel.stmts.len());
    for stmt in &kernel.stmts {
        let (op, operands) = classify(stmt)?;
        if ids.contains_key(stmt.name.as_str()) {
            return Err(LowerError::Redefinition {
                name: stmt.name.clone(),
                line: stmt.line,
            });
        }
        let id = b.node(stmt.name.clone(), stmt.time, op);
        ids.insert(stmt.name.as_str(), id);
        classified.push((id, operands, stmt.line));
    }
    for (id, operands, line) in classified {
        for r in operands {
            let src = *ids
                .get(r.name.as_str())
                .ok_or_else(|| LowerError::Undefined {
                    name: r.name.clone(),
                    line,
                })?;
            b.edge(src, id, r.delay);
        }
    }
    b.build().map_err(|e| match e {
        cred_dfg::DfgError::Empty => LowerError::EmptyKernel,
        // Times are validated by the parser and node ids by construction,
        // so the only other reachable failure is a zero-delay cycle.
        _ => LowerError::ZeroDelayCycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn lower_src(src: &str) -> Result<Dfg, LowerError> {
        lower(&parse_kernel(src).unwrap())
    }

    #[test]
    fn figure4_lowers() {
        let g = lower_src(
            "loop {
                A[i] = B[i-3] * 3;
                B[i] = A[i] + 7;
                C[i] = B[i] * 2;
            }",
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let a = g.find_node("A").unwrap();
        assert_eq!(g.node(a).op, OpKind::Scale(3, 0));
        let b2 = g.find_node("B").unwrap();
        assert_eq!(g.node(b2).op, OpKind::Add(7));
        assert_eq!(g.in_edges(a).len(), 1);
        assert_eq!(g.edge(g.in_edges(a)[0]).delay, 3);
    }

    #[test]
    fn classification_matrix() {
        let cases = [
            ("A[i] = 7;", OpKind::Input(7)),
            ("A[i] = B[i-1];", OpKind::Add(0)),
            ("A[i] = B[i-1] + 9;", OpKind::Add(9)),
            ("A[i] = 4 * B[i-1];", OpKind::Scale(4, 0)),
            ("A[i] = -B[i-1] + 1;", OpKind::Scale(-1, 1)),
            ("A[i] = B[i-1] * C[i-1];", OpKind::Mul(0)),
            ("A[i] = B[i-1] * C[i-1] + 2;", OpKind::Mul(2)),
            ("A[i] = 3 * B[i-1] * C[i-1];", OpKind::ScaledMul(3, 0)),
            ("A[i] = B[i-1] + C[i-1];", OpKind::Add(0)),
            ("A[i] = B[i-1] - C[i-1];", OpKind::Sub(0)),
            ("A[i] = B[i-1] - C[i-1] - D[i-1];", OpKind::Sub(0)),
            ("A[i] = B[i-1] * C[i-1] + D[i-1];", OpKind::Mac(0)),
            ("A[i] = B[i-1] * C[i-1] + D[i-1] + 5;", OpKind::Mac(5)),
        ];
        for (stmt, want) in cases {
            let src = format!("loop {{ {stmt} B[i] = 1; C[i] = 2; D[i] = 3; }}");
            let g = lower_src(&src).unwrap_or_else(|e| panic!("{stmt}: {e}"));
            let a = g.find_node("A").unwrap();
            assert_eq!(g.node(a).op, want, "{stmt}");
        }
    }

    #[test]
    fn sub_operand_order_preserved() {
        let g = lower_src("loop { A[i] = B[i-1] - C[i-2]; B[i] = 1; C[i] = 2; }").unwrap();
        let a = g.find_node("A").unwrap();
        let srcs: Vec<(String, u32)> = g
            .in_edges(a)
            .iter()
            .map(|&e| {
                let ed = g.edge(e);
                (g.node(ed.src).name.clone(), ed.delay)
            })
            .collect();
        assert_eq!(srcs, vec![("B".into(), 1), ("C".into(), 2)]);
    }

    #[test]
    fn semantics_match_hand_built_graph() {
        // The lowered figure-4 kernel computes the same streams as the
        // hand-built one in cred-kernels' style.
        let g = lower_src(
            "loop {
                A[i] = B[i-3] * 3;
                B[i] = A[i] + 7;
                C[i] = B[i] * 2;
            }",
        )
        .unwrap();
        let vals = g.reference_execution(6);
        // A[1] = 0*3 = 0; B[1] = 7; C[1] = 7*2? Mul over one input is the
        // input itself; C uses Scale(2). A = Scale(3,0).
        let a = g.find_node("A").unwrap().index();
        let b2 = g.find_node("B").unwrap().index();
        let c = g.find_node("C").unwrap().index();
        assert_eq!(vals[a][0], 0);
        assert_eq!(vals[b2][0], 7);
        assert_eq!(vals[c][0], 14);
        // A[4] = B[1]*3 = 21; B[4] = 28; C[4] = 56.
        assert_eq!(vals[a][3], 21);
        assert_eq!(vals[b2][3], 28);
        assert_eq!(vals[c][3], 56);
    }

    #[test]
    fn redefinition_rejected() {
        let e = lower_src("loop { A[i] = 1; A[i] = 2; }").unwrap_err();
        assert!(matches!(e, LowerError::Redefinition { .. }));
    }

    #[test]
    fn undefined_reference_rejected() {
        let e = lower_src("loop { A[i] = Z[i-1]; }").unwrap_err();
        assert!(matches!(e, LowerError::Undefined { .. }));
    }

    #[test]
    fn empty_kernel_rejected_with_specific_error() {
        let e = lower_src("loop { }").unwrap_err();
        assert_eq!(e, LowerError::EmptyKernel);
        assert!(e.to_string().contains("no statements"));
    }

    #[test]
    fn zero_delay_cycle_rejected() {
        let e = lower_src("loop { A[i] = B[i]; B[i] = A[i]; }").unwrap_err();
        assert_eq!(e, LowerError::ZeroDelayCycle);
    }

    #[test]
    fn unsupported_shapes_rejected() {
        for src in [
            "loop { A[i] = B[i-1] + 2 * C[i-1]; B[i] = 1; C[i] = 1; }",
            "loop { A[i] = -B[i-1] - C[i-1]; B[i] = 1; C[i] = 1; }",
            "loop { A[i] = B[i-1] * C[i-1] - D[i-1]; B[i] = 1; C[i] = 1; D[i] = 1; }",
        ] {
            assert!(
                matches!(lower_src(src), Err(LowerError::UnsupportedShape { .. })),
                "{src}"
            );
        }
    }

    #[test]
    fn time_annotations_carried() {
        let g = lower_src("loop { A[i] = A[i-1] + 1 @ 7; }").unwrap();
        assert_eq!(g.node(g.find_node("A").unwrap()).time, 7);
    }
}
