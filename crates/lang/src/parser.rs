//! Recursive-descent parser: `loop { stmt* }` with
//! `stmt := Ident "[" "i" "]" "=" expr ("@" Int)? ";"`,
//! `expr := ("-")? term (("+"|"-") term)*`,
//! `term := factor ("*" factor)*`,
//! `factor := Int | Ident "[" "i" ("-" Int)? "]"`.

use crate::ast::{Expr, LoopKernel, Ref, Stmt, Term};
use crate::lexer::{tokenize, Token};
use std::fmt;

/// Syntax error with location and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line (0 for end-of-input).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "unexpected end of input: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<(Token, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected '{want}', found '{t}'"),
            }),
            None => Err(self.err(format!("expected '{want}'"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected identifier, found '{t}'"),
            }),
            None => Err(self.err("expected identifier")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(n),
            Some(t) => Err(ParseError {
                line: self.toks[self.pos - 1].1,
                message: format!("expected integer, found '{t}'"),
            }),
            None => Err(self.err("expected integer")),
        }
    }

    /// `Ident "[" "i" ("-" Int)? "]"` after the identifier was consumed.
    fn finish_ref(&mut self, name: String) -> Result<Ref, ParseError> {
        self.expect(&Token::LBracket)?;
        let ivar = self.expect_ident()?;
        if ivar != "i" {
            return Err(self.err(format!("index variable must be 'i', found '{ivar}'")));
        }
        let delay = if self.peek() == Some(&Token::Minus) {
            self.next();
            let d = self.expect_int()?;
            if d < 0 {
                return Err(self.err("negative delay"));
            }
            d as u32
        } else if self.peek() == Some(&Token::Plus) {
            return Err(self.err("forward references 'Name[i+k]' are not allowed"));
        } else {
            0
        };
        self.expect(&Token::RBracket)?;
        Ok(Ref { name, delay })
    }

    fn term(&mut self, sign: i64) -> Result<Term, ParseError> {
        let mut coeff: i64 = 1;
        let mut refs = Vec::new();
        loop {
            match self.next() {
                Some(Token::Int(n)) => coeff = coeff.wrapping_mul(n),
                Some(Token::Ident(name)) => refs.push(self.finish_ref(name)?),
                Some(t) => {
                    return Err(ParseError {
                        line: self.toks[self.pos - 1].1,
                        message: format!("expected factor, found '{t}'"),
                    })
                }
                None => return Err(self.err("expected factor")),
            }
            if self.peek() == Some(&Token::Star) {
                self.next();
            } else {
                break;
            }
        }
        Ok(Term { sign, coeff, refs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut terms = Vec::new();
        let first_sign = if self.peek() == Some(&Token::Minus) {
            self.next();
            -1
        } else {
            1
        };
        terms.push(self.term(first_sign)?);
        loop {
            let sign = match self.peek() {
                Some(Token::Plus) => 1,
                Some(Token::Minus) => -1,
                _ => break,
            };
            self.next();
            terms.push(self.term(sign)?);
        }
        Ok(Expr { terms })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let name = self.expect_ident()?;
        // Destination must be Name[i] (no delay).
        let dest = self.finish_ref(name)?;
        if dest.delay != 0 {
            return Err(self.err("destination must be indexed by plain 'i'"));
        }
        self.expect(&Token::Eq)?;
        let expr = self.expr()?;
        let time = if self.peek() == Some(&Token::At) {
            self.next();
            let t = self.expect_int()?;
            if t < 1 {
                return Err(self.err("computation time must be >= 1"));
            }
            t as u32
        } else {
            1
        };
        self.expect(&Token::Semi)?;
        Ok(Stmt {
            name: dest.name,
            expr,
            time,
            line,
        })
    }

    fn kernel(&mut self) -> Result<LoopKernel, ParseError> {
        let kw = self.expect_ident()?;
        if kw != "loop" {
            return Err(self.err(format!("expected 'loop', found '{kw}'")));
        }
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated loop body"));
            }
            stmts.push(self.stmt()?);
        }
        self.next(); // consume '}'
        if let Some(t) = self.peek() {
            let t = t.clone();
            return Err(self.err(format!("trailing input after loop body: '{t}'")));
        }
        Ok(LoopKernel { stmts })
    }
}

/// Parse a full `loop { ... }` kernel.
pub fn parse_kernel(src: &str) -> Result<LoopKernel, ParseError> {
    let toks = tokenize(src).map_err(|e| ParseError {
        line: e.line,
        message: e.to_string(),
    })?;
    Parser { toks, pos: 0 }.kernel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure4() {
        let k = parse_kernel(
            "loop {
                A[i] = B[i-3] * 3;
                B[i] = A[i] + 7;
                C[i] = B[i] * 2;
            }",
        )
        .unwrap();
        assert_eq!(k.stmts.len(), 3);
        assert_eq!(k.stmts[0].name, "A");
        assert_eq!(k.stmts[0].expr.terms.len(), 1);
        assert_eq!(k.stmts[0].expr.terms[0].refs[0].delay, 3);
        assert_eq!(k.stmts[0].expr.terms[0].coeff, 3);
        assert_eq!(k.stmts[1].expr.terms.len(), 2);
    }

    #[test]
    fn parses_time_annotation() {
        let k = parse_kernel("loop { A[i] = A[i-1] + 1 @ 4; }").unwrap();
        assert_eq!(k.stmts[0].time, 4);
    }

    #[test]
    fn parses_subtraction_and_products() {
        let k =
            parse_kernel("loop { U[i] = U[i-1] - 3 * X[i] * U[i-2]; X[i] = X[i-1] + 1; }").unwrap();
        let t = &k.stmts[0].expr.terms[1];
        assert_eq!(t.sign, -1);
        assert_eq!(t.coeff, 3);
        assert_eq!(t.refs.len(), 2);
    }

    #[test]
    fn parses_leading_minus() {
        let k = parse_kernel("loop { A[i] = -B[i-1] + 2; }").unwrap();
        assert_eq!(k.stmts[0].expr.terms[0].sign, -1);
    }

    #[test]
    fn rejects_forward_reference() {
        let e = parse_kernel("loop { A[i] = B[i+1]; }").unwrap_err();
        assert!(e.message.contains("forward references"));
    }

    #[test]
    fn rejects_delayed_destination() {
        let e = parse_kernel("loop { A[i-1] = B[i]; }").unwrap_err();
        assert!(e.message.contains("destination"));
    }

    #[test]
    fn rejects_wrong_index_variable() {
        let e = parse_kernel("loop { A[j] = 1; }").unwrap_err();
        assert!(e.message.contains("index variable"));
    }

    #[test]
    fn rejects_missing_loop_keyword() {
        let e = parse_kernel("{ A[i] = 1; }").unwrap_err();
        assert!(e.message.contains("expected identifier") || e.message.contains("loop"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_kernel("loop { A[i] = 1; } extra").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_kernel("loop {\n A[i] = 1;\n B[i] = ;\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_zero_time() {
        let e = parse_kernel("loop { A[i] = 1 @ 0; }").unwrap_err();
        assert!(e.message.contains("time"));
    }
}
