//! Un-parsing: render a DFG back as loop-kernel source. Inverse of
//! [`crate::parse`] for every graph whose node names are identifiers and
//! whose operations came from the supported shapes.

use cred_dfg::{Dfg, NodeId, OpKind};
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn render_ref(g: &Dfg, v: NodeId, delay: u32) -> String {
    if delay == 0 {
        format!("{}[i]", sanitize(&g.node(v).name))
    } else {
        format!("{}[i-{delay}]", sanitize(&g.node(v).name))
    }
}

fn const_tail(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Greater => format!(" + {c}"),
        std::cmp::Ordering::Less => format!(" - {}", -c),
        std::cmp::Ordering::Equal => String::new(),
    }
}

/// Render `g` as `loop { ... }` source text.
pub fn unparse(g: &Dfg) -> String {
    let mut out = String::from("loop {\n");
    for v in g.node_ids() {
        let nd = g.node(v);
        let srcs: Vec<String> = g
            .in_edges(v)
            .iter()
            .map(|&e| {
                let ed = g.edge(e);
                render_ref(g, ed.src, ed.delay)
            })
            .collect();
        let rhs = match nd.op {
            OpKind::Input(c) => format!("{c}"),
            OpKind::Add(c) => {
                if srcs.is_empty() {
                    format!("{c}")
                } else {
                    format!("{}{}", srcs.join(" + "), const_tail(c))
                }
            }
            OpKind::Sub(c) => format!("{}{}", srcs.join(" - "), const_tail(c)),
            OpKind::Mul(c) => format!("{}{}", srcs.join(" * "), const_tail(c)),
            OpKind::Mac(c) => {
                if srcs.len() >= 2 {
                    let mut s = format!("{} * {}", srcs[0], srcs[1]);
                    for r in &srcs[2..] {
                        let _ = write!(s, " + {r}");
                    }
                    s.push_str(&const_tail(c));
                    s
                } else {
                    format!("{}{}", srcs.join(" + "), const_tail(c))
                }
            }
            OpKind::Scale(k, c) => format!("{k} * {}{}", srcs.join(" + "), const_tail(c)),
            OpKind::ScaledMul(k, c) => {
                format!("{k} * {}{}", srcs.join(" * "), const_tail(c))
            }
        };
        let time = if nd.time == 1 {
            String::new()
        } else {
            format!(" @ {}", nd.time)
        };
        let _ = writeln!(out, "    {}[i] = {rhs}{time};", sanitize(&nd.name));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let g1 = parse(src).unwrap();
        let text = unparse(&g1);
        let g2 = parse(&text).unwrap_or_else(|e| panic!("unparse output rejected: {e}\n{text}"));
        assert_eq!(g1.node_count(), g2.node_count(), "{text}");
        assert_eq!(g1.edge_count(), g2.edge_count(), "{text}");
        for v in g1.node_ids() {
            assert_eq!(g1.node(v).op, g2.node(v).op, "{text}");
            assert_eq!(g1.node(v).time, g2.node(v).time, "{text}");
        }
        for e in g1.edge_ids() {
            assert_eq!(g1.edge(e), g2.edge(e), "{text}");
        }
        // Same semantics, too.
        assert_eq!(g1.reference_execution(9), g2.reference_execution(9));
    }

    #[test]
    fn roundtrip_figure4() {
        roundtrip(
            "loop {
                A[i] = B[i-3] * 3;
                B[i] = A[i] + 7;
                C[i] = B[i] * 2;
            }",
        );
    }

    #[test]
    fn roundtrip_figure3() {
        roundtrip(
            "loop {
                A[i] = E[i-4] + 9;
                B[i] = 5 * A[i];
                C[i] = A[i] + B[i-2];
                D[i] = A[i] * C[i];
                E[i] = D[i] + 30;
            }",
        );
    }

    #[test]
    fn roundtrip_all_shapes() {
        roundtrip(
            "loop {
                X[i] = 11;
                A[i] = X[i] + 2 @ 3;
                S[i] = A[i] - X[i-1] - X[i-2];
                M[i] = A[i] * S[i-1] + 4;
                K[i] = 7 * A[i-1];
                P[i] = 3 * A[i-1] * S[i-1] - 2;
                Q[i] = A[i] * S[i] + K[i-1] + P[i-2] + 1;
            }",
        );
    }

    #[test]
    fn sanitizes_awkward_names() {
        let mut b = cred_dfg::DfgBuilder::new();
        let a = b.node("A.0", 1, OpKind::Add(1));
        b.edge(a, a, 1);
        let g = b.build().unwrap();
        let text = unparse(&g);
        assert!(text.contains("A_0[i]"));
        assert!(crate::parse(&text).is_ok());
    }

    #[test]
    fn negative_constant_renders_as_subtraction() {
        let g = parse("loop { A[i] = A[i-1] - 5; }").unwrap();
        let text = unparse(&g);
        assert!(text.contains("A[i-1] - 5"), "{text}");
    }
}
