//! Deterministic fail points (`fail-rs` style, vendored and minimal).
//!
//! Library crates mark interesting spots in their hot paths with
//! [`hit`] / [`hit_infallible`] under a **named site**. In a normal build
//! the calls compile to an inlined `Ok(())` — the `failpoints` cargo
//! feature is off and no registry exists. With the feature on (enabled by
//! `cred-verify` for the chaos harness and through it by the CLI), a
//! [`ChaosPlan`] can be [`install`]ed that trips chosen sites with one of
//! three [`FaultAction`]s:
//!
//! * `Panic` — unwind from the site (tests worker isolation and lock
//!   poisoning);
//! * `Delay` — sleep briefly (tests deadlines and the absence of hangs);
//! * `Error` — surface a typed [`InjectedFault`] through the site's error
//!   channel (tests the degradation ladder). Sites without an error
//!   channel use [`hit_infallible`], which escalates `Error` to a panic.
//!
//! Plans are generated deterministically from a seed
//! ([`ChaosPlan::sample`]), so a failing chaos case reproduces from its
//! `(seed, case index)` alone. Installation is process-global and
//! serialized: [`install`] holds an exclusive guard for the plan's
//! lifetime, so concurrent tests cannot interleave plans.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// What an armed fail point does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Return a typed [`InjectedFault`] from [`hit`].
    Error,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Delay(d) => write!(f, "delay {d:?}"),
            FaultAction::Error => write!(f, "error"),
        }
    }
}

/// The typed error an `Error`-armed site surfaces through its caller's
/// error channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault injected at {}", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// The catalog of named sites threaded through the workspace. A site not
/// in this list can still be tripped by name; the catalog is what
/// [`ChaosPlan::sample`] draws from, and what DESIGN.md documents.
pub mod sites {
    /// Inside the warm-started SPFA relaxation loop (`cred-retime`).
    pub const RETIME_SPFA: &str = "retime.spfa";
    /// Entry of the period binary search (`cred-retime`).
    pub const RETIME_MIN_PERIOD: &str = "retime.min_period";
    /// Before the fast (solver) path of a plan computation
    /// (`cred-explore`).
    pub const EXPLORE_PLAN_FAST: &str = "explore.plan.fast";
    /// Before the reference fallback of a plan computation
    /// (`cred-explore`).
    pub const EXPLORE_PLAN_REFERENCE: &str = "explore.plan.reference";
    /// Inside the sweep cache's locked insert section (`cred-explore`) —
    /// a panic here poisons the cache mutex on purpose.
    pub const EXPLORE_CACHE_INSERT: &str = "explore.cache.insert";
    /// Entry of CRED code generation (`cred-codegen`; no error channel).
    pub const CODEGEN_CRED: &str = "codegen.cred";
    /// Entry of retime+unfold code generation (`cred-codegen`; no error
    /// channel).
    pub const CODEGEN_UNFOLD: &str = "codegen.unfold";
    /// Once per loop iteration of the VM interpreter (`cred-vm`).
    pub const VM_EXEC: &str = "vm.exec";
    /// Entry of the tape compiler lowering a program (`cred-vm`).
    pub const VM_COMPILE: &str = "vm.compile";
    /// Once per branch-and-bound decision of the exact resource-
    /// constrained scheduler (`cred-exact`).
    pub const EXACT_BRANCH: &str = "exact.branch";

    /// Every site above, for plan sampling and documentation.
    pub const ALL: &[&str] = &[
        RETIME_SPFA,
        RETIME_MIN_PERIOD,
        EXPLORE_PLAN_FAST,
        EXPLORE_PLAN_REFERENCE,
        EXPLORE_CACHE_INSERT,
        CODEGEN_CRED,
        CODEGEN_UNFOLD,
        VM_EXEC,
        VM_COMPILE,
        EXACT_BRANCH,
    ];
}

/// A set of armed sites. Deterministic: iteration order is the site
/// name's, and sampling is a pure function of the seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    actions: BTreeMap<String, FaultAction>,
}

impl ChaosPlan {
    /// An empty plan (no site fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `site` with `action` (builder style).
    pub fn trip(mut self, site: &str, action: FaultAction) -> Self {
        self.actions.insert(site.to_string(), action);
        self
    }

    /// The action armed for `site`, if any.
    pub fn action_for(&self, site: &str) -> Option<&FaultAction> {
        self.actions.get(site)
    }

    /// Number of armed sites.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no site is armed.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Armed `(site, action)` pairs in site-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FaultAction)> {
        self.actions.iter().map(|(s, a)| (s.as_str(), a))
    }

    /// Draw a random plan: each site in `catalog` is armed independently
    /// with probability `trip_percent`/100, with a uniformly chosen
    /// action (delays are 1..=`max_delay_ms` ms). Pure in `seed`.
    pub fn sample(seed: u64, catalog: &[&str], trip_percent: u32, max_delay_ms: u64) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64 — deterministic and dependency-free.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut plan = ChaosPlan::new();
        for &site in catalog {
            if next() % 100 >= trip_percent as u64 {
                continue;
            }
            let action = match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Delay(Duration::from_millis(1 + next() % max_delay_ms.max(1))),
                _ => FaultAction::Error,
            };
            plan = plan.trip(site, action);
        }
        plan
    }
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{ChaosPlan, FaultAction, InjectedFault};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Fast-path flag: `hit` is a single relaxed load unless a plan is
    /// installed.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    /// The installed plan plus the log of sites that actually fired.
    static STATE: Mutex<State> = Mutex::new(State {
        plan: None,
        fired: Vec::new(),
    });
    /// Serializes installations: the guard of the current plan holds this
    /// lock, so two tests (or threads) cannot interleave plans.
    static INSTALL: Mutex<()> = Mutex::new(());

    struct State {
        plan: Option<ChaosPlan>,
        fired: Vec<(String, FaultAction)>,
    }

    fn state() -> MutexGuard<'static, State> {
        // A panicking fail point cannot poison STATE (panics are raised
        // after the guard is dropped), but be tolerant anyway.
        STATE.lock().unwrap_or_else(|p| {
            STATE.clear_poison();
            p.into_inner()
        })
    }

    /// Exclusive handle to the installed plan; dropping it disarms every
    /// site and releases the installation lock.
    pub struct ChaosGuard {
        _install: MutexGuard<'static, ()>,
    }

    impl Drop for ChaosGuard {
        fn drop(&mut self) {
            ACTIVE.store(false, Ordering::SeqCst);
            state().plan = None;
        }
    }

    /// Install `plan` process-wide until the returned guard drops.
    pub fn install(plan: ChaosPlan) -> ChaosGuard {
        let install = INSTALL.lock().unwrap_or_else(|p| {
            INSTALL.clear_poison();
            p.into_inner()
        });
        {
            let mut st = state();
            st.plan = Some(plan);
            st.fired.clear();
        }
        ACTIVE.store(true, Ordering::SeqCst);
        ChaosGuard { _install: install }
    }

    /// Sites that fired since the last [`install`], in firing order.
    pub fn take_fired() -> Vec<(String, FaultAction)> {
        std::mem::take(&mut state().fired)
    }

    pub(super) fn is_armed(site: &'static str) -> bool {
        ACTIVE.load(Ordering::Relaxed)
            && state()
                .plan
                .as_ref()
                .is_some_and(|p| p.action_for(site).is_some())
    }

    pub(super) fn consult(site: &'static str) -> Result<(), InjectedFault> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return Ok(());
        }
        let action = {
            let mut st = state();
            let Some(action) = st.plan.as_ref().and_then(|p| p.action_for(site)).cloned() else {
                return Ok(());
            };
            st.fired.push((site.to_string(), action.clone()));
            action
        };
        match action {
            FaultAction::Panic => panic!("fail point '{site}': injected panic"),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::Error => Err(InjectedFault { site }),
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{install, take_fired, ChaosGuard};

/// Reach the named site. Fires the installed plan's action, if any:
/// `Err(InjectedFault)` for `Error`, a panic for `Panic`, a sleep for
/// `Delay`. Compiles to an inlined `Ok(())` without the `failpoints`
/// feature.
#[inline]
pub fn hit(site: &'static str) -> Result<(), InjectedFault> {
    #[cfg(feature = "failpoints")]
    {
        registry::consult(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// Whether the installed plan (if any) arms `site`. Reaching a site the
/// plan does not arm has no observable effect at all — no log entry, no
/// action — so a hot loop that checks `armed` once up front may legally
/// skip its [`hit`] calls when this returns `false`. Always `false`
/// without the `failpoints` feature.
#[inline]
pub fn armed(site: &'static str) -> bool {
    #[cfg(feature = "failpoints")]
    {
        registry::is_armed(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        false
    }
}

/// [`hit`] for sites without an error channel: an `Error` action is
/// escalated to a panic (documented in the site catalog), so no injection
/// is ever silently swallowed.
#[inline]
pub fn hit_infallible(site: &'static str) {
    if let Err(f) = hit(site) {
        panic!("fail point '{site}': {f} (no error channel; escalated)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_respects_probability() {
        let a = ChaosPlan::sample(7, sites::ALL, 50, 3);
        let b = ChaosPlan::sample(7, sites::ALL, 50, 3);
        assert_eq!(a, b);
        assert!(ChaosPlan::sample(1, sites::ALL, 0, 3).is_empty());
        assert_eq!(
            ChaosPlan::sample(1, sites::ALL, 100, 3).len(),
            sites::ALL.len()
        );
    }

    #[test]
    fn plan_builder_arms_sites() {
        let p = ChaosPlan::new()
            .trip("a.b", FaultAction::Error)
            .trip("c.d", FaultAction::Panic);
        assert_eq!(p.len(), 2);
        assert_eq!(p.action_for("a.b"), Some(&FaultAction::Error));
        assert_eq!(p.action_for("nope"), None);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn installed_plan_fires_and_disarms_on_drop() {
        {
            let _g = install(ChaosPlan::new().trip("t.error", FaultAction::Error));
            assert_eq!(hit("t.error"), Err(InjectedFault { site: "t.error" }));
            assert_eq!(hit("t.other"), Ok(()));
            let fired = take_fired();
            assert_eq!(fired.len(), 1);
            assert_eq!(fired[0].0, "t.error");
        }
        // Guard dropped: site is disarmed again.
        assert_eq!(hit("t.error"), Ok(()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn panic_action_unwinds_with_recognizable_message() {
        let _g = install(ChaosPlan::new().trip("t.panic", FaultAction::Panic));
        let err = std::panic::catch_unwind(|| hit("t.panic")).unwrap_err();
        let msg = crate::panic_message(err.as_ref());
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn uninstalled_sites_are_free() {
        assert_eq!(hit("never.installed"), Ok(()));
        hit_infallible("never.installed");
    }
}
