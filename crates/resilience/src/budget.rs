//! Execution budgets: deadline + work units + cooperative cancellation.
//!
//! A [`Budget`] is shared by reference (`&Budget`) between every stage of
//! one logical operation — all the probes of a period search, all the
//! workers of a parallel sweep — so the limits apply to the operation as
//! a whole, not per stage. The work-unit counter is the *deterministic*
//! limit: the same input under the same limit exhausts at the same point
//! on every run, which is what the exhaustion-soundness property tests
//! rely on. The deadline and the cancel token are the *wall-clock* limits
//! for production callers (`credc explore --deadline-ms`).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in work units) the deadline clock is sampled. Work-limit
/// and cancellation checks are exact; reading `Instant::now` per unit
/// would dominate the SPFA inner loop, so the deadline is polled every
/// `DEADLINE_STRIDE` units (and at every [`Budget::check`] call).
const DEADLINE_STRIDE: u64 = 64;

/// Cooperative cancellation flag, cloned freely across threads.
///
/// Cancelling is a request, not preemption: budgeted loops observe it at
/// their next [`Budget::charge`]/[`Budget::check`] and return
/// [`Exhausted::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Typed budget exhaustion. A budgeted path that returns this delivered
/// *no* answer — never a partial or wrong one; the caller decides whether
/// to fail, retry bigger, or degrade to a fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exhausted {
    /// The wall-clock deadline passed.
    Deadline {
        /// The deadline that was configured.
        limit: Duration,
    },
    /// The deterministic work-unit limit was reached.
    WorkUnits {
        /// The configured limit.
        limit: u64,
    },
    /// The operation's [`CancelToken`] was tripped.
    Cancelled,
    /// A fail-point injected a fault at a budget-aware site (chaos
    /// testing only; see [`crate::failpoint`]).
    Injected {
        /// The fail-point site that fired.
        site: &'static str,
    },
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Deadline { limit } => write!(f, "deadline of {limit:?} exceeded"),
            Exhausted::WorkUnits { limit } => write!(f, "work limit of {limit} units exceeded"),
            Exhausted::Cancelled => write!(f, "cancelled"),
            Exhausted::Injected { site } => write!(f, "fault injected at {site}"),
        }
    }
}

impl std::error::Error for Exhausted {}

/// An execution budget. Construct with [`Budget::unlimited`] and tighten
/// with the `with_*` builders; pass by reference into budgeted APIs.
///
/// The counter lives in the budget itself, so one budget shared by many
/// threads bounds their *combined* work.
#[derive(Debug, Default)]
pub struct Budget {
    deadline: Option<InstantDeadline>,
    work_limit: Option<u64>,
    cancel: Option<CancelToken>,
    used: AtomicU64,
}

/// A deadline stored as (start, limit) so exhaustion errors can report
/// the configured limit rather than an absolute instant.
#[derive(Debug, Clone, Copy)]
struct InstantDeadline {
    at: Instant,
    limit: Duration,
}

impl Budget {
    /// A budget with no limits: every check passes, at the cost of one
    /// predictable branch.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Add a wall-clock deadline of `limit` from now.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(InstantDeadline {
            at: Instant::now() + limit,
            limit,
        });
        self
    }

    /// Add a deterministic work-unit limit.
    pub fn with_work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(limit);
        self
    }

    /// Attach a cancellation token (clone it for the cancelling side).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True when no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work_limit.is_none() && self.cancel.is_none()
    }

    /// Work units charged so far.
    pub fn work_used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Charge `units` of work and verify every limit that is due.
    ///
    /// The work limit and the cancel token are checked on every call; the
    /// deadline is sampled every [`DEADLINE_STRIDE`] units. Returns
    /// `Err` the moment any limit is exceeded.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), Exhausted> {
        if self.is_unlimited() {
            return Ok(());
        }
        let used = self.used.fetch_add(units, Ordering::Relaxed) + units;
        if let Some(limit) = self.work_limit {
            if used > limit {
                return Err(Exhausted::WorkUnits { limit });
            }
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(Exhausted::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            // Sample the clock when the counter crosses a stride boundary
            // (always true for charges of a stride or more).
            if used % DEADLINE_STRIDE < units && Instant::now() > d.at {
                return Err(Exhausted::Deadline { limit: d.limit });
            }
        }
        Ok(())
    }

    /// Check the deadline and cancel token *now*, without charging work.
    /// Call at stage boundaries so a blown deadline is observed before
    /// starting more work.
    pub fn check(&self) -> Result<(), Exhausted> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(Exhausted::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d.at {
                return Err(Exhausted::Deadline { limit: d.limit });
            }
        }
        if let Some(limit) = self.work_limit {
            if self.work_used() > limit {
                return Err(Exhausted::WorkUnits { limit });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            b.charge(10).unwrap();
        }
        b.check().unwrap();
        // Unlimited budgets skip even the counter.
        assert_eq!(b.work_used(), 0);
    }

    #[test]
    fn work_limit_is_deterministic_and_exact() {
        let b = Budget::unlimited().with_work_limit(5);
        for _ in 0..5 {
            b.charge(1).unwrap();
        }
        assert_eq!(b.charge(1).unwrap_err(), Exhausted::WorkUnits { limit: 5 });
        // Once exhausted, it stays exhausted.
        assert!(b.charge(1).is_err());
        assert!(b.check().is_err());
        assert_eq!(b.work_used(), 7);
    }

    #[test]
    fn cancel_token_trips_charge_and_check() {
        let tok = CancelToken::new();
        let b = Budget::unlimited().with_cancel(tok.clone());
        b.charge(1).unwrap();
        b.check().unwrap();
        tok.cancel();
        assert!(tok.is_cancelled());
        assert_eq!(b.charge(1).unwrap_err(), Exhausted::Cancelled);
        assert_eq!(b.check().unwrap_err(), Exhausted::Cancelled);
    }

    #[test]
    fn deadline_in_the_past_fails_check_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        // A zero deadline must be observed by the next stage boundary.
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(b.check().unwrap_err(), Exhausted::Deadline { .. }));
        // And by charge() within one stride of work.
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let mut tripped = false;
        for _ in 0..128 {
            if b.charge(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline never sampled within two strides");
    }

    #[test]
    fn shared_budget_bounds_combined_work() {
        let b = Budget::unlimited().with_work_limit(1000);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut charged = 0u64;
                        while b.charge(1).is_ok() {
                            charged += 1;
                        }
                        charged
                    })
                })
                .collect();
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(total <= 1000, "combined work {total} exceeds the limit");
        });
    }

    #[test]
    fn errors_render_one_line() {
        assert_eq!(Exhausted::Cancelled.to_string(), "cancelled");
        assert_eq!(
            Exhausted::WorkUnits { limit: 9 }.to_string(),
            "work limit of 9 units exceeded"
        );
        assert!(Exhausted::Injected { site: "x.y" }
            .to_string()
            .contains("x.y"));
    }
}
