//! # cred-resilience — budgets, typed degradation, fault injection
//!
//! The exploration pipeline (retime → unfold → collapse) is built from
//! optimal searches whose worst cases are far from their common cases: a
//! pathological DFG can keep the SPFA solver relaxing for a long time, and
//! a single panicking sweep worker used to poison the shared plan cache
//! for the whole process. This crate is the cross-cutting layer that makes
//! those paths *interruptible* and their failures *typed*:
//!
//! * [`Budget`] — a wall-clock deadline plus a deterministic work-unit
//!   counter plus a cooperative [`CancelToken`], shared by reference
//!   across threads. Hot loops call [`Budget::charge`] once per unit of
//!   work; an unlimited budget reduces to a single branch.
//! * [`Exhausted`] — the typed error every budgeted path returns instead
//!   of a partial answer. Exhaustion is a *resource* outcome, never a
//!   wrong result: callers either retry with a bigger budget or degrade.
//! * [`DegradationEvent`] / [`DegradeCause`] — the record a caller emits
//!   when it falls back to a slower-but-sound path (the degradation
//!   ladder in `cred-explore` falls from the warm-started SPFA solver to
//!   the dense Bellman–Ford reference solver). Degradations are reported,
//!   never silent.
//! * [`failpoint`] — a deterministic, feature-gated fail-point framework
//!   (`fail-rs` style): named sites in retime/explore/codegen/vm that a
//!   seeded [`failpoint::ChaosPlan`] can trip with a panic, a delay, or a
//!   typed error. The chaos harness in `cred-verify` replays the
//!   differential oracle under random plans and asserts that every
//!   injected fault surfaces as a typed degradation or an isolated
//!   failure — no hangs, no silent corruption.

pub mod budget;
pub mod failpoint;

pub use budget::{Budget, CancelToken, Exhausted};

use std::fmt;

/// Why a caller abandoned its fast path and degraded to a fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeCause {
    /// The fast path ran out of budget.
    Exhausted(Exhausted),
    /// The fast path panicked (payload rendered when it was a string).
    Panicked(String),
    /// A cached artifact failed its integrity check and was evicted.
    Corrupted(String),
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeCause::Exhausted(e) => write!(f, "budget exhausted: {e}"),
            DegradeCause::Panicked(p) => write!(f, "panicked: {p}"),
            DegradeCause::Corrupted(what) => write!(f, "integrity check failed: {what}"),
        }
    }
}

/// One recorded fall-back: where it happened and why. Degradation is the
/// middle rung of the ladder — the result delivered afterwards is still
/// *correct* (the fallback is a sound reference implementation), just
/// obtained more slowly; the event exists so no degradation is silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The operation that degraded (e.g. `"explore.plan f=3"`).
    pub site: String,
    /// What went wrong on the fast path.
    pub cause: DegradeCause,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} degraded ({})", self.site, self.cause)
    }
}

/// Render a caught panic payload (`Box<dyn Any>`) for diagnostics.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
