//! Benchmarks beyond the paper's six — used by ablations, scalability
//! benches, and as additional end-to-end workloads.

use cred_dfg::{Dfg, DfgBuilder, NodeId, OpKind};

/// One radix-2 FFT butterfly column of `pairs` butterflies with a delayed
/// twiddle-update recurrence. Each butterfly: `t = w * b; a' = a + t;
/// b' = a - t`, with `w` updated from the previous iteration.
pub fn fft_butterflies(pairs: usize) -> Dfg {
    assert!(pairs >= 1);
    let mut b = DfgBuilder::new();
    let w = b.node("W", 1, OpKind::Scale(3, 1)); // twiddle update
    b.edge(w, w, 1);
    for k in 0..pairs {
        let a_in = b.node(format!("Ain{k}"), 1, OpKind::Input(k as i64));
        let b_in = b.node(format!("Bin{k}"), 1, OpKind::Input(-(k as i64)));
        let t = b.node(format!("T{k}"), 1, OpKind::Mul(0));
        b.edge(w, t, 1);
        b.edge(b_in, t, 0);
        let a_out = b.node(format!("Aout{k}"), 1, OpKind::Add(0));
        b.edge(a_in, a_out, 0);
        b.edge(t, a_out, 0);
        let b_out = b.node(format!("Bout{k}"), 1, OpKind::Sub(0));
        b.edge(a_in, b_out, 0);
        b.edge(t, b_out, 0);
    }
    b.build().expect("FFT butterflies are well-formed")
}

/// An LMS adaptive FIR filter with `taps` taps:
/// `y = sum w_k * x[i-k]`, `e = d - y`, `w_k' = w_k + mu * e * x[i-k]`
/// (the weight update closes a recurrence through every tap).
pub fn lms_adaptive(taps: usize) -> Dfg {
    assert!(taps >= 1);
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(5));
    let d = b.node("D", 1, OpKind::Input(-3));
    // Weights (delayed self-recurrences) and products.
    let mut prods: Vec<NodeId> = Vec::new();
    let mut weights: Vec<NodeId> = Vec::new();
    for k in 0..taps {
        let wk = b.node(format!("W{k}"), 1, OpKind::Add(0));
        weights.push(wk);
        let p = b.node(format!("P{k}"), 1, OpKind::Mul(0));
        b.edge(wk, p, 1); // use last iteration's weight
        b.edge(x, p, k as u32);
        prods.push(p);
    }
    // y = sum of products (chain).
    let mut acc = prods[0];
    for (j, &p) in prods[1..].iter().enumerate() {
        let s = b.node(format!("S{j}"), 1, OpKind::Add(0));
        b.edge(acc, s, 0);
        b.edge(p, s, 0);
        acc = s;
    }
    let e = b.node("E", 1, OpKind::Sub(0));
    b.edge(d, e, 0);
    b.edge(acc, e, 0);
    let mu_e = b.node("MU", 1, OpKind::Scale(2, 0));
    b.edge(e, mu_e, 0);
    // Weight updates: w_k = w_k[i-1] + mu*e * x[i-k].
    for (k, &wk) in weights.iter().enumerate() {
        let u = b.node(format!("U{k}"), 1, OpKind::Mul(0));
        b.edge(mu_e, u, 0);
        b.edge(x, u, k as u32);
        b.edge(wk, wk, 1);
        b.edge(u, wk, 0);
    }
    b.build().expect("LMS filter is well-formed")
}

/// A correlator bank: `cor_k[i] = cor_k[i-1] + x[i] * ref[i-k]` for
/// `lags` lags — independent accumulating recurrences over a shared input.
pub fn correlator(lags: usize) -> Dfg {
    assert!(lags >= 1);
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(2));
    let r = b.node("R", 1, OpKind::Input(9));
    for k in 0..lags {
        let p = b.node(format!("P{k}"), 1, OpKind::Mul(0));
        b.edge(x, p, 0);
        b.edge(r, p, k as u32 + 1);
        let c = b.node(format!("C{k}"), 1, OpKind::Add(0));
        b.edge(c, c, 1);
        b.edge(p, c, 0);
    }
    b.build().expect("correlator is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::algo;

    #[test]
    fn fft_structure() {
        let g = fft_butterflies(4);
        assert_eq!(g.node_count(), 1 + 4 * 5);
        assert!(g.validate().is_ok());
        // Only the twiddle self-loop is a recurrence: bound 1.
        assert_eq!(algo::iteration_bound(&g), Some(cred_dfg::Ratio::integer(1)));
    }

    #[test]
    fn lms_structure() {
        let g = lms_adaptive(4);
        assert!(g.validate().is_ok());
        // Recurrence: w -> p -> y-chain -> e -> mu -> u -> w with 2 delays
        // (weight read is delayed, weight write closes the loop).
        let b = algo::iteration_bound(&g).unwrap();
        assert!(b > cred_dfg::Ratio::integer(1));
    }

    #[test]
    fn correlator_structure() {
        let g = correlator(8);
        assert_eq!(g.node_count(), 2 + 16);
        assert_eq!(algo::iteration_bound(&g), Some(cred_dfg::Ratio::integer(1)));
    }

    #[test]
    fn extras_execute_and_reduce() {
        for g in [fft_butterflies(3), lms_adaptive(3), correlator(4)] {
            let vals = g.reference_execution(8);
            assert_eq!(vals.len(), g.node_count());
            let opt = cred_retime::min_period_retiming(&g);
            assert!(opt.retiming.is_legal(&g));
        }
    }
}
