//! Benchmark DFG constructions.
//!
//! Delays encode where the original filter reads previous-iteration state;
//! zero-delay edges are the intra-iteration dataflow. Each constructor
//! documents the recurrence it implements. Node operations are executable
//! (`cred-vm` runs every benchmark end-to-end).

use cred_dfg::{Dfg, DfgBuilder, NodeId, OpKind};

/// Second-order IIR (biquad, direct form II), 8 instructions:
///
/// ```text
/// w[i] = (a1*w[i-1]) + (a2*w[i-2]) + c      (M1, M2, A1, W)
/// y[i] = (b0*w[i]) + (b1*w[i-1]) + c'       (M3, M4, A2, Y)
/// ```
pub fn iir_filter() -> Dfg {
    let mut b = DfgBuilder::new();
    let m1 = b.node("M1", 1, OpKind::Mul(0));
    let m2 = b.node("M2", 1, OpKind::Mul(1));
    let a1 = b.node("A1", 1, OpKind::Add(0));
    let w = b.node("W", 1, OpKind::Add(3));
    let m3 = b.node("M3", 1, OpKind::Mul(0));
    let m4 = b.node("M4", 1, OpKind::Mul(2));
    let a2 = b.node("A2", 1, OpKind::Add(0));
    let y = b.node("Y", 1, OpKind::Add(1));
    b.edge(w, m1, 1);
    b.edge(w, m2, 2);
    b.edge(m1, a1, 0);
    b.edge(m2, a1, 0);
    b.edge(a1, w, 0);
    b.edge(w, m3, 0);
    b.edge(w, m4, 1);
    b.edge(m3, a2, 0);
    b.edge(m4, a2, 0);
    b.edge(a2, y, 0);
    b.build().expect("IIR filter is well-formed")
}

/// The HAL differential-equation solver (`y'' + 3xy' + 3y = 0`), 11
/// instructions. The leapfrog discretization reads `u` from two steps
/// back on the main product chain:
///
/// ```text
/// x1 = x + dx                       (X1, self-recurrence)
/// u1 = (u - 3*x*u[i-2]*dx) - 3*y*dx (M1, M3, M4, S1, M5, M6, U1)
/// y1 = y + u*dx                     (M2, Y1)
/// c  = x1 < a                       (C, modeled as an ALU op)
/// ```
pub fn differential_equation() -> Dfg {
    let mut b = DfgBuilder::new();
    let x1 = b.node("X1", 1, OpKind::Add(1)); // x += dx
    let m1 = b.node("M1", 1, OpKind::Mul(2)); // 3*x
    let m2 = b.node("M2", 1, OpKind::Mul(0)); // u*dx
    let m3 = b.node("M3", 1, OpKind::Mul(1)); // (3*x)*u
    let m4 = b.node("M4", 1, OpKind::Mul(0)); // ..*dx
    let m5 = b.node("M5", 1, OpKind::Mul(2)); // 3*y
    let m6 = b.node("M6", 1, OpKind::Mul(0)); // ..*dx
    let s1 = b.node("S1", 1, OpKind::Sub(0)); // u - M4
    let u1 = b.node("U1", 1, OpKind::Sub(0)); // S1 - M6
    let y1 = b.node("Y1", 1, OpKind::Add(0)); // y + M2
    let c = b.node("C", 1, OpKind::Add(5)); // x1 < a
    b.edge(x1, x1, 1);
    b.edge(x1, m1, 1);
    b.edge(u1, m2, 1);
    b.edge(m1, m3, 0);
    b.edge(u1, m3, 2); // leapfrog tap: u[i-2]
    b.edge(m3, m4, 0);
    b.edge(y1, m5, 2); // leapfrog tap: y[i-2]
    b.edge(m5, m6, 0);
    b.edge(u1, s1, 1);
    b.edge(m4, s1, 0);
    b.edge(s1, u1, 0);
    b.edge(m6, u1, 0);
    b.edge(y1, y1, 1);
    b.edge(m2, y1, 0);
    b.edge(x1, c, 0);
    b.build().expect("differential equation is well-formed")
}

/// Three cascaded all-pole sections plus input/output scaling, 15
/// instructions. Section `k`:
///
/// ```text
/// a_k[i] = (g_{k-1}) + (c1*a_k[i-1]) + (c2*a_k[i-2])   (M1k, M2k, Ak)
/// g_k    = s_k * a_k                                   (G1, G2)
/// ```
///
/// Section 2 additionally takes a three-iteration tap of section 1
/// (`M31`), and the output is scaled (`O1`) and accumulated (`Y`).
pub fn all_pole_filter() -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(3));
    let sect = |b: &mut DfgBuilder, k: usize, prev: NodeId| -> NodeId {
        let m1 = b.node(format!("M1{k}"), 1, OpKind::Mul(0));
        let m2 = b.node(format!("M2{k}"), 1, OpKind::Mul(1));
        let a = b.node(format!("A{k}"), 1, OpKind::Add(0));
        b.edge(a, m1, 1);
        b.edge(a, m2, 2);
        b.edge(m1, a, 0);
        b.edge(m2, a, 0);
        b.edge(prev, a, 0);
        a
    };
    let a1 = sect(&mut b, 1, x);
    let g1 = b.node("G1", 1, OpKind::Mul(0));
    b.edge(a1, g1, 0);
    let a2 = sect(&mut b, 2, g1);
    let m31 = b.node("M31", 1, OpKind::Mul(2));
    b.edge(a1, m31, 3);
    b.edge(m31, a2, 0);
    let g2 = b.node("G2", 1, OpKind::Mul(0));
    b.edge(a2, g2, 0);
    let a3 = sect(&mut b, 3, g2);
    let o1 = b.node("O1", 1, OpKind::Mul(0));
    b.edge(a3, o1, 0);
    let y = b.node("Y", 1, OpKind::Add(2));
    b.edge(o1, y, 0);
    b.build().expect("all-pole filter is well-formed")
}

/// Fifth-order elliptic wave filter, 34 instructions (26 ALU ops, 8
/// multiplications): a 14-deep adder spine `X -> C1 -> ... -> C14`, eight
/// multiplier taps `M_j = coeff * C_{j+3}` re-injected one iteration later
/// (`M_j -> C_j` with one delay, forming the T=5/D=1 recurrences of the
/// wave adaptors), and eleven delayed side accumulators `T_j`.
pub fn elliptic_filter() -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(1));
    let c: Vec<NodeId> = (1..=14)
        .map(|j| b.node(format!("C{j}"), 1, OpKind::Add(j)))
        .collect();
    b.edge(x, c[0], 0);
    for w in c.windows(2) {
        b.edge(w[0], w[1], 0);
    }
    for j in 0..8usize {
        let m = b.node(format!("M{}", j + 1), 1, OpKind::Mul(0));
        b.edge(c[j + 3], m, 0);
        b.edge(m, c[j], 1);
    }
    for j in 0..11usize {
        let t = b.node(format!("T{}", j + 1), 1, OpKind::Add(-(j as i64)));
        b.edge(c[j], t, 1);
        b.edge(c[j + 1], t, 2);
    }
    b.build().expect("elliptic filter is well-formed")
}

/// 4-stage all-pole lattice filter, 26 instructions. Stage `k` (from the
/// output side inward):
///
/// ```text
/// f_{k-1} = f_k - kappa_k * b_{k-1}[i-1]    (Mk, Ak)
/// b_k     = b_{k-1}[i-1] + kappa_k * f_{k-1} (M'k, Bk)
/// ```
///
/// with `b_0 = f_0` closing the innermost recurrence, plus a 5-tap output
/// combination (`O1..O4, Y`).
pub fn lattice_filter() -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(2));
    // f_4 = x; stages k = 4..1 compute f_{k-1}; b-chain runs outward.
    let mut f = x;
    let mut stage_m: Vec<NodeId> = Vec::new();
    let mut stage_a: Vec<NodeId> = Vec::new();
    let mut stage_b: Vec<NodeId> = Vec::new();
    for k in (1..=4).rev() {
        let m = b.node(format!("M{k}"), 1, OpKind::Mul(0));
        let a = b.node(format!("A{k}"), 1, OpKind::Sub(0));
        b.edge(f, a, 0);
        b.edge(m, a, 0);
        let mp = b.node(format!("N{k}"), 1, OpKind::Mul(1));
        b.edge(a, mp, 0);
        let bk = b.node(format!("B{k}"), 1, OpKind::Add(0));
        b.edge(mp, bk, 0);
        stage_m.push(m);
        stage_a.push(a);
        stage_b.push(bk);
        f = a;
    }
    // Wire the b-chain: b_0 = f_0 (the innermost A), each M_k reads
    // b_{k-1}[i-1], each B_k reads b_{k-1}[i-1].
    // stage_m/stage_a/stage_b are ordered k = 4, 3, 2, 1.
    let f0 = *stage_a.last().unwrap(); // f_0 = b_0
    for (idx, k) in (1..=4).rev().enumerate() {
        // b_{k-1} is: f0 when k = 1, else B_{k-1} (which sits at position
        // idx+1 in stage_b since ordering is 4..1).
        let bprev = if k == 1 { f0 } else { stage_b[idx + 1] };
        b.edge(bprev, stage_m[idx], 1);
        b.edge(bprev, stage_b[idx], 1);
    }
    // Output combination: a serialized scale-accumulate ladder (one gain
    // multiplier S_j and one accumulating adder O_j per stage, in series,
    // as a ladder realization computes the tap outputs).
    let mut acc = f0;
    for j in 1..=4 {
        let s = b.node(format!("S{j}"), 1, OpKind::Mul(j as i64));
        b.edge(acc, s, 0);
        let o = b.node(format!("O{j}"), 1, OpKind::Add(j as i64));
        b.edge(s, o, 0);
        b.edge(stage_b[4 - j], o, 1);
        acc = o;
    }
    let y = b.node("Y", 1, OpKind::Add(0));
    b.edge(acc, y, 0);
    b.build().expect("lattice filter is well-formed")
}

/// Quadratic Volterra filter with memory 3, 27 instructions:
///
/// ```text
/// y[i] = sum_k a_k * x[i-k]  +  sum_{j<=k} b_jk * x[i-j] * x[i-k]
///        + c * y[i-1]
/// ```
///
/// `X` is the input tap; `L1..L3` the linear terms, `Q11..Q33` the six
/// quadratic products with their scalings `S11..S33`, summed by an adder
/// chain `P1..P9` with a first-order feedback (`F`, `Y`).
pub fn volterra_filter() -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(7));
    let lin: Vec<NodeId> = (1..=3)
        .map(|k| {
            let l = b.node(format!("L{k}"), 1, OpKind::Mul(k as i64));
            b.edge(x, l, k as u32);
            l
        })
        .collect();
    let pairs = [(1u32, 1u32), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)];
    let mut quads = Vec::new();
    for (idx, &(j, k)) in pairs.iter().enumerate() {
        let q = b.node(format!("Q{j}{k}"), 1, OpKind::Mul(0));
        b.edge(x, q, j);
        b.edge(x, q, k);
        let s = b.node(format!("S{j}{k}"), 1, OpKind::Mul(idx as i64));
        b.edge(q, s, 0);
        quads.push(s);
    }
    // Balanced adder tree over the 9 terms (7 internal adds; the root sum
    // merges into Y together with the feedback).
    let mut terms = lin;
    terms.extend(quads);
    let mut level = terms;
    let mut padd = 0usize;
    while level.len() > 2 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                padd += 1;
                let p = b.node(format!("P{padd}"), 1, OpKind::Add(0));
                b.edge(pair[0], p, 0);
                b.edge(pair[1], p, 0);
                next.push(p);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    // Second-order output feedback: y = tree + c1*y[i-1] + c2*y[i-2].
    let f1 = b.node("F1", 1, OpKind::Mul(1));
    let f2 = b.node("F2", 1, OpKind::Mul(3));
    let fa = b.node("FA", 1, OpKind::Add(0));
    b.edge(f1, fa, 0);
    b.edge(f2, fa, 0);
    let y = b.node("Y", 1, OpKind::Add(0));
    for t in level {
        b.edge(t, y, 0);
    }
    b.edge(fa, y, 0);
    b.edge(y, f1, 1);
    b.edge(y, f2, 2);
    b.build().expect("Volterra filter is well-formed")
}

/// A plain `taps`-tap FIR filter (feed-forward except a single delayed
/// output accumulator) — not in the paper's tables; used by tests and
/// ablations as a retiming-friendly extreme.
pub fn fir_filter(taps: usize) -> Dfg {
    assert!(taps >= 1);
    let mut b = DfgBuilder::new();
    let x = b.node("X", 1, OpKind::Input(1));
    let mut acc: Option<NodeId> = None;
    for k in 0..taps {
        let m = b.node(format!("M{k}"), 1, OpKind::Mul(k as i64));
        b.edge(x, m, k as u32);
        acc = Some(match acc {
            None => m,
            Some(prev) => {
                let a = b.node(format!("A{k}"), 1, OpKind::Add(0));
                b.edge(prev, a, 0);
                b.edge(m, a, 0);
                a
            }
        });
    }
    let y = b.node("Y", 1, OpKind::Add(0));
    b.edge(acc.unwrap(), y, 0);
    b.edge(y, y, 1);
    b.build().expect("FIR filter is well-formed")
}

/// The Figure 8 example from Chao–Sha: five nodes with non-unit
/// computation times `1, 4, 5, 7, 10` on a single cycle carrying two
/// delays — iteration bound `27/2 = 13.5`, matching Table 3's rate-optimal
/// row at `uf = 4`. (The paper's figure image is unavailable; this is the
/// documented reconstruction, see DESIGN.md.)
pub fn chao_sha_fig8() -> Dfg {
    let mut b = DfgBuilder::new();
    let times = [1u32, 4, 5, 7, 10];
    let names = ["A", "B", "C", "D", "E"];
    let nodes: Vec<NodeId> = times
        .iter()
        .zip(names)
        .map(|(&t, nm)| b.node(nm, t, OpKind::Add(t as i64)))
        .collect();
    let delays = [0u32, 0, 1, 0, 1];
    for i in 0..5 {
        b.edge(nodes[i], nodes[(i + 1) % 5], delays[i]);
    }
    b.build().expect("Figure 8 DFG is well-formed")
}

/// The Table 1/2 suite, in paper order: name and graph.
pub fn all_benchmarks() -> Vec<(&'static str, Dfg)> {
    vec![
        ("IIR Filter", iir_filter()),
        ("Differential Equation", differential_equation()),
        ("All-pole Filter", all_pole_filter()),
        ("Elliptic Filter", elliptic_filter()),
        ("4-stage Lattice Filter", lattice_filter()),
        ("Volterra Filter", volterra_filter()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_dfg::algo;

    #[test]
    fn node_counts_match_paper() {
        let expected = [8usize, 11, 15, 34, 26, 27];
        for ((name, g), &l) in all_benchmarks().iter().zip(&expected) {
            assert_eq!(g.node_count(), l, "{name}");
        }
    }

    #[test]
    fn all_benchmarks_are_well_formed_and_cyclic() {
        for (name, g) in all_benchmarks() {
            assert!(g.validate().is_ok(), "{name}");
            assert!(
                algo::iteration_bound(&g).is_some(),
                "{name} must contain a recurrence"
            );
            assert!(g.is_unit_time(), "{name} is a unit-time benchmark");
        }
    }

    #[test]
    fn benchmarks_execute() {
        for (name, g) in all_benchmarks() {
            let vals = g.reference_execution(16);
            assert_eq!(vals.len(), g.node_count(), "{name}");
            // Iteration-dependent inputs make consecutive values differ
            // somewhere — a sanity check that the recurrences are alive.
            let distinct: std::collections::BTreeSet<i64> =
                vals.iter().flat_map(|col| col.iter().copied()).collect();
            assert!(distinct.len() > 4, "{name} executes non-trivially");
        }
    }

    #[test]
    fn fig8_iteration_bound() {
        let g = chao_sha_fig8();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.total_time(), 27);
        assert_eq!(algo::iteration_bound(&g), Some(cred_dfg::Ratio::new(27, 2)));
    }

    #[test]
    fn fir_is_feed_forward_except_output() {
        let g = fir_filter(8);
        assert_eq!(g.node_count(), 1 + 8 + 7 + 1);
        assert_eq!(algo::iteration_bound(&g), Some(cred_dfg::Ratio::integer(1)));
    }
}
