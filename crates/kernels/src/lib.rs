//! # cred-kernels — the paper's DSP benchmark suite
//!
//! The paper evaluates on six classic DSP loop kernels (Tables 1–2) plus a
//! non-unit-time example from Chao–Sha (Figure 8, Table 3). It publishes
//! only node counts, not netlists, so each benchmark here is reconstructed
//! as the canonical filter structure of that name with the paper's exact
//! instruction count `L`:
//!
//! | benchmark | `L` | construction |
//! |---|---|---|
//! | [`iir_filter`] | 8 | second-order (biquad) direct-form II section |
//! | [`differential_equation`] | 11 | the HAL `y'' + 3xy' + 3y = 0` solver |
//! | [`all_pole_filter`] | 15 | three cascaded all-pole sections |
//! | [`elliptic_filter`] | 34 | fifth-order elliptic wave filter (26 add / 8 mul) |
//! | [`lattice_filter`] | 26 | 4-stage normalized lattice |
//! | [`volterra_filter`] | 27 | quadratic Volterra kernel, memory 3 |
//! | [`chao_sha_fig8`] | 5 | 5-node cycle, times summing 27 over 2 delays |
//!
//! All code-size results depend only on `(L, M_r, P_r, f, n)`; the measured
//! `M_r`/`P_r` of these reconstructions are compared cell-by-cell with the
//! paper in EXPERIMENTS.md.
//!
//! [`all_benchmarks`] returns the Table 1/2 suite in paper order.

mod extra;
mod filters;

pub use extra::{correlator, fft_butterflies, lms_adaptive};
pub use filters::{
    all_benchmarks, all_pole_filter, chao_sha_fig8, differential_equation, elliptic_filter,
    fir_filter, iir_filter, lattice_filter, volterra_filter,
};
