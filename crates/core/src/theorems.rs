//! The paper's theorems as executable, checked propositions.
//!
//! Each function instantiates its theorem on a concrete `(G, r, f, n)` and
//! verifies the claim mechanically (by tracing and executing the generated
//! programs), returning `Err(diagnostic)` if the claim fails. The
//! integration tests run these across the benchmark suite and random
//! graphs — this is what "we reproduce the theory" means operationally.

use cred_codegen::cred::{cred_pipelined, cred_retime_unfold};
use cred_codegen::unfolded::{retime_unfold_program, unfold_retime_program};
use cred_codegen::{DecMode, LoopProgram};
use cred_dfg::Dfg;
use cred_retime::{min_period_retiming, Retiming};
use cred_unfold::orders::{project_retiming, retime_then_unfold};
use cred_unfold::unfold;
use cred_vm::{check_against_reference, trace_loop};
use std::collections::BTreeMap;

type Check = Result<(), String>;

fn enabled_counts_in(
    p: &LoopProgram,
    pred: impl Fn(i64) -> bool,
) -> BTreeMap<String, (u64, Option<i64>)> {
    // name -> (enabled count, first enabled loop index)
    let mut out: BTreeMap<String, (u64, Option<i64>)> = BTreeMap::new();
    for e in trace_loop(p) {
        if !pred(e.i) {
            continue;
        }
        let name = e.dest.split('[').next().unwrap_or_default().to_string();
        let entry = out.entry(name).or_insert((0, None));
        if e.enabled {
            entry.0 += 1;
            entry.1.get_or_insert(e.i);
        }
    }
    out
}

/// **Theorem 4.1** — the prologue can be replaced by conditionally
/// executing the loop body of `G_r` for `M_r` iterations, node `v`
/// executing `r(v)` times starting from the `(M_r - r(v) + 1)`-th of them.
pub fn theorem_4_1(g: &Dfg, r: &Retiming, n: u64) -> Check {
    let p = cred_pipelined(g, r, n);
    let m = r.max_value();
    let lo = p.body.as_ref().expect("cred has a loop").lo;
    debug_assert_eq!(lo, 1 - m);
    // The first M_r loop iterations are those with i <= 0.
    let counts = enabled_counts_in(&p, |i| i <= 0);
    for v in g.node_ids() {
        let name = &g.node(v).name;
        let rv = r.get(v).min(n as i64); // tiny n clips the window
        let (count, first) = counts.get(name).copied().unwrap_or((0, None));
        if count != rv as u64 {
            return Err(format!(
                "Thm 4.1: {name} executed {count} times in the prologue window, expected r(v) = {rv}"
            ));
        }
        if rv > 0 {
            // (M_r - r(v) + 1)-th iteration is loop index 1 - r(v).
            let expect_first = 1 - r.get(v);
            if first != Some(expect_first) {
                return Err(format!(
                    "Thm 4.1: {name} first fired at {first:?}, expected {expect_first}"
                ));
            }
        }
    }
    Ok(())
}

/// **Theorem 4.2** — the epilogue can be replaced by conditionally
/// executing the loop body for `M_r` more iterations, node `v` executing
/// `M_r - r(v)` times in them.
pub fn theorem_4_2(g: &Dfg, r: &Retiming, n: u64) -> Check {
    let p = cred_pipelined(g, r, n);
    let m = r.max_value();
    let n_i = n as i64;
    // The last M_r loop iterations are those with i > n - M_r.
    let counts = enabled_counts_in(&p, |i| i > n_i - m);
    for v in g.node_ids() {
        let name = &g.node(v).name;
        let expect = (m - r.get(v)).min(n_i);
        let (count, _) = counts.get(name).copied().unwrap_or((0, None));
        if count != expect as u64 {
            return Err(format!(
                "Thm 4.2: {name} executed {count} times in the epilogue window, expected M_r - r(v) = {expect}"
            ));
        }
    }
    Ok(())
}

/// **Theorem 4.3 (Total Code Reduction for Retimed Loop)** — `|N_r|`
/// conditional registers suffice to remove the prologue and epilogue
/// completely: the CRED program uses exactly `|N_r|` registers, has code
/// size `L + 2|N_r|`, and computes the same results.
pub fn theorem_4_3(g: &Dfg, r: &Retiming, n: u64) -> Check {
    let p = cred_pipelined(g, r, n);
    let want_regs = r.register_count();
    if p.register_count() != want_regs {
        return Err(format!(
            "Thm 4.3: program uses {} registers, |N_r| = {want_regs}",
            p.register_count()
        ));
    }
    let want_size = g.node_count() + 2 * want_regs;
    if p.code_size() != want_size {
        return Err(format!(
            "Thm 4.3: code size {} != L + 2 P = {want_size}",
            p.code_size()
        ));
    }
    check_against_reference(g, &p).map_err(|e| format!("Thm 4.3: {e}"))?;
    Ok(())
}

/// **Theorem 4.4** — the unfold-then-retime code size is
/// `(M_{f,r} + 1) * L * f + Q_f`.
pub fn theorem_4_4(g: &Dfg, f: usize, n: u64) -> Check {
    let u = unfold(g, f);
    let r_f = min_period_retiming(&u.graph).retiming;
    let p = unfold_retime_program(g, &u, &r_f, n);
    let l = g.node_count() as i64;
    let m = r_f.max_value();
    let big_n = (n as i64) / f as i64;
    if big_n - m < 1 {
        // Degenerate windows (pipeline at least as deep as the unfolded
        // trip count): no kernel is emitted and the whole schedule is
        // straight-line, so the closed form does not apply. The `m == N`
        // boundary case was found by cred-verify fuzzing.
        return Ok(());
    }
    let expect = (m + 1) * l * f as i64 + (n as i64 % f as i64) * l;
    if p.code_size() as i64 != expect {
        return Err(format!(
            "Thm 4.4: measured {} != (M+1)*L*f + Q_f = {expect} (M={m}, f={f}, n={n})",
            p.code_size()
        ));
    }
    Ok(())
}

/// **Theorem 4.5** — the projected retime-then-unfold code size is
/// `(max_u r_f(u) + f) * L + Q'` and never exceeds the unfold-then-retime
/// size at the same cycle period.
pub fn theorem_4_5(g: &Dfg, f: usize, n: u64) -> Check {
    let u = unfold(g, f);
    let ur = min_period_retiming(&u.graph);
    let projected = project_retiming(&u, &ur.retiming);
    if !projected.is_legal(g) {
        return Err("Thm 4.5: projected retiming must be legal".into());
    }
    let ru = retime_then_unfold(g, &projected, f);
    if ru.period != ur.period {
        return Err(format!(
            "Thm 4.5: projected period {} != optimum {}",
            ru.period, ur.period
        ));
    }
    let m = projected.max_value();
    let n_i = n as i64;
    if n_i - m < f as i64 {
        // Degenerate window: either the pipeline is deeper than the trip
        // count (m > n) or no full kernel chunk fits (n - m < f), so the
        // generator emits straight-line code of size n * L and the closed
        // form does not apply. (Found by cred-verify fuzzing.)
        return Ok(());
    }
    let l = g.node_count() as i64;
    let p = retime_unfold_program(g, &projected, f, n);
    let expect = (m + f as i64) * l + ((n_i - m).rem_euclid(f as i64)) * l;
    if p.code_size() as i64 != expect {
        return Err(format!(
            "Thm 4.5: measured {} != (M_r + f)*L + Q' = {expect}",
            p.code_size()
        ));
    }
    // S_{r,f} <= S_{f,r} modulo the (bounded) remainder-term difference.
    let s_fr = (ur.retiming.max_value() + 1) * l * f as i64;
    let s_rf = (m + f as i64) * l;
    if s_rf > s_fr {
        return Err(format!("Thm 4.5: S_rf = {s_rf} > S_fr = {s_fr}"));
    }
    Ok(())
}

/// **Theorem 4.6** — in the CRED retimed-unfolded loop, the prologue is
/// hidden in the first `(M_r + Q_head)/f` iterations: node `v` fires
/// exactly `r(v)` times before the steady-state slots begin.
pub fn theorem_4_6(g: &Dfg, r: &Retiming, f: usize, n: u64) -> Check {
    if r.max_value() > n as i64 {
        return Ok(()); // window clipped by a tiny trip count
    }
    let p = cred_retime_unfold(g, r, f, n, DecMode::Bulk);
    // Pre-steady iterations have base slot <= 0 (they contain all slots
    // s <= 0 plus up to f-1 steady slots; count only enabled instances at
    // slots <= 0 by checking the destination index against r(v)).
    let mut fired: BTreeMap<String, u64> = BTreeMap::new();
    for e in trace_loop(&p) {
        if !e.enabled {
            continue;
        }
        let (name, idx) = e
            .dest
            .split_once('[')
            .map(|(a, b)| {
                (
                    a.to_string(),
                    b.trim_end_matches(']').parse::<i64>().unwrap(),
                )
            })
            .expect("dest format");
        // Slot of this instance is idx - r(v); pre-steady means slot <= 0.
        let v = g.find_node(&name).expect("known node");
        if idx - r.get(v) <= 0 {
            *fired.entry(name).or_insert(0) += 1;
        }
    }
    for v in g.node_ids() {
        let name = &g.node(v).name;
        let got = fired.get(name).copied().unwrap_or(0);
        if got != r.get(v) as u64 {
            return Err(format!(
                "Thm 4.6: {name} fired {got} times in hidden-prologue slots, expected {}",
                r.get(v)
            ));
        }
    }
    check_against_reference(g, &p).map_err(|e| format!("Thm 4.6: {e}"))?;
    Ok(())
}

/// **Theorem 4.7 (Total Code Reduction for Retimed and Unfolded Loop)** —
/// CRED on the retimed-unfolded loop needs exactly as many conditional
/// registers as CRED on the retimed loop: `P_{r,f} = P_r`.
pub fn theorem_4_7(g: &Dfg, r: &Retiming, f: usize, n: u64) -> Check {
    let single = cred_pipelined(g, r, n);
    let combined = cred_retime_unfold(g, r, f, n, DecMode::Bulk);
    if single.register_count() != combined.register_count() {
        return Err(format!(
            "Thm 4.7: P_r = {} but P_r,f = {}",
            single.register_count(),
            combined.register_count()
        ));
    }
    check_against_reference(g, &combined).map_err(|e| format!("Thm 4.7: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_kernels::all_benchmarks;
    use cred_retime::span::{compact_values, min_span_retiming};

    fn tuned(g: &Dfg) -> Retiming {
        let opt = min_period_retiming(g);
        let r = min_span_retiming(g, opt.period).unwrap();
        compact_values(g, opt.period, &r)
    }

    #[test]
    fn theorems_hold_on_all_benchmarks() {
        for (name, g) in all_benchmarks() {
            let r = tuned(&g);
            for n in [1u64, 7, 101] {
                theorem_4_1(&g, &r, n).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
                theorem_4_2(&g, &r, n).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
                theorem_4_3(&g, &r, n).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            }
            for f in [2usize, 3] {
                theorem_4_4(&g, f, 101).unwrap_or_else(|e| panic!("{name} f={f}: {e}"));
                theorem_4_5(&g, f, 101).unwrap_or_else(|e| panic!("{name} f={f}: {e}"));
                theorem_4_6(&g, &r, f, 101).unwrap_or_else(|e| panic!("{name} f={f}: {e}"));
                theorem_4_7(&g, &r, f, 101).unwrap_or_else(|e| panic!("{name} f={f}: {e}"));
            }
        }
    }

    #[test]
    fn theorem_4_1_rejects_wrong_retiming_claim() {
        // A deliberately different retiming must change the prologue
        // counts: feed the checker inconsistent inputs and expect Err.
        let (_, g) = &all_benchmarks()[0];
        let r = tuned(g);
        if r.max_value() == 0 {
            return;
        }
        // Claim the zero retiming while the program uses `r`: the checker
        // itself generates from the given retiming, so instead corrupt by
        // comparing against a shifted copy.
        let mut wrong = r.clone();
        // Shift one node's value within legality if possible; otherwise skip.
        for v in g.node_ids() {
            let mut cand = wrong.clone();
            cand.set(v, cand.get(v) + 1);
            if cand.is_legal(g) && cand.normalized() != r {
                wrong = cand.normalized();
                break;
            }
        }
        if wrong == r {
            return;
        }
        // The theorem must hold for `wrong` itself (it is a legal
        // retiming!) — what fails is cross-claiming r's counts. So check
        // the *property*: counts follow whichever retiming generated the
        // program.
        theorem_4_1(g, &wrong, 23).unwrap();
    }
}
