//! # cred-core — the CRED framework as a library
//!
//! The paper's primary contribution packaged behind one type:
//! [`CodeSizeReducer`] takes a DFG and produces, in one call, the whole
//! family of transformed loop programs (software-pipelined, unfolded,
//! combined, and their CRED-reduced forms), each one *verified* against
//! the DFG recurrence by `cred-vm`, together with a code-size report.
//!
//! [`theorems`] contains the paper's seven theorems as executable, checked
//! propositions: each function validates its theorem's claim on a concrete
//! `(G, r, f, n)` instance and returns a diagnostic error if the claim
//! fails — the integration tests run them across benchmark and random
//! graphs.

pub mod theorems;

use cred_codegen::cred::{cred_pipelined, cred_retime_unfold, cred_unfolded};
use cred_codegen::pipeline::{original_program, pipelined_program};
use cred_codegen::unfolded::{retime_unfold_program, unfolded_program};
use cred_codegen::{DecMode, LoopProgram};
use cred_dfg::Dfg;
use cred_retime::span::{compact_values, min_span_retiming};
use cred_retime::{min_period_retiming, Retiming};
use cred_vm::{check_against_reference, ExecError};

/// Configuration for [`CodeSizeReducer`].
#[derive(Debug, Clone)]
pub struct ReducerConfig {
    /// Unfolding factor (`1` = software pipelining only).
    pub unfold_factor: usize,
    /// Trip count the programs are generated and verified for.
    pub trip_count: u64,
    /// Decrement placement (see [`DecMode`]).
    pub dec_mode: DecMode,
    /// Verify every generated program against the DFG recurrence
    /// (recommended; costs `O(n * L)` per program).
    pub verify: bool,
}

impl Default for ReducerConfig {
    fn default() -> Self {
        ReducerConfig {
            unfold_factor: 1,
            trip_count: 101,
            dec_mode: DecMode::Bulk,
            verify: true,
        }
    }
}

/// The produced program family and its measurements.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The retiming used (rate-optimal period, minimized span, compacted
    /// register set).
    pub retiming: Retiming,
    /// The rate-optimal cycle period achieved by retiming alone.
    pub period: u64,
    /// The untransformed loop.
    pub original: LoopProgram,
    /// Software-pipelined loop (prologue + kernel + epilogue).
    pub pipelined: LoopProgram,
    /// CRED-reduced software-pipelined loop.
    pub cred: LoopProgram,
    /// Plain unfolded loop (present when `unfold_factor > 1`).
    pub unfolded: Option<LoopProgram>,
    /// Retimed-and-unfolded loop (present when `unfold_factor > 1`).
    pub retime_unfold: Option<LoopProgram>,
    /// CRED-reduced retimed-and-unfolded loop (when `unfold_factor > 1`).
    pub cred_retime_unfold: Option<LoopProgram>,
}

impl Reduction {
    /// Summarize code sizes: `(name, size)` for every generated program.
    pub fn sizes(&self) -> Vec<(String, usize)> {
        let mut out = vec![
            (self.original.name.clone(), self.original.code_size()),
            (self.pipelined.name.clone(), self.pipelined.code_size()),
            (self.cred.name.clone(), self.cred.code_size()),
        ];
        for p in [
            &self.unfolded,
            &self.retime_unfold,
            &self.cred_retime_unfold,
        ]
        .into_iter()
        .flatten()
        {
            out.push((p.name.clone(), p.code_size()));
        }
        out
    }

    /// The paper's headline metric: reduction from the pipelined (and
    /// unfolded) baseline to its CRED form, in percent.
    pub fn reduction_percent(&self) -> f64 {
        let (before, after) = match (&self.retime_unfold, &self.cred_retime_unfold) {
            (Some(b), Some(a)) => (b.code_size(), a.code_size()),
            _ => (self.pipelined.code_size(), self.cred.code_size()),
        };
        cred_codegen::size::reduction_percent(before as u64, after as u64)
    }
}

/// The façade: run the full CRED pipeline on a DFG.
///
/// ```
/// use cred_core::{CodeSizeReducer, ReducerConfig};
/// use cred_kernels::iir_filter;
///
/// let red = CodeSizeReducer::new(iir_filter())
///     .with_config(ReducerConfig { unfold_factor: 3, ..Default::default() })
///     .run()
///     .expect("all generated programs verify");
/// assert!(red.cred.code_size() < red.pipelined.code_size());
/// ```
#[derive(Debug, Clone)]
pub struct CodeSizeReducer {
    graph: Dfg,
    config: ReducerConfig,
}

impl CodeSizeReducer {
    /// Start from a well-formed DFG.
    ///
    /// # Panics
    /// Panics if the graph fails validation.
    pub fn new(graph: Dfg) -> Self {
        graph
            .validate()
            .expect("CodeSizeReducer requires a well-formed DFG");
        CodeSizeReducer {
            graph,
            config: ReducerConfig::default(),
        }
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: ReducerConfig) -> Self {
        assert!(config.unfold_factor >= 1);
        self.config = config;
        self
    }

    /// Access the graph.
    pub fn graph(&self) -> &Dfg {
        &self.graph
    }

    /// Run retiming, code generation, CRED, and (optionally) verification.
    pub fn run(&self) -> Result<Reduction, ExecError> {
        let g = &self.graph;
        let cfg = &self.config;
        let opt = min_period_retiming(g);
        let r = min_span_retiming(g, opt.period).expect("optimal period is feasible");
        let r = compact_values(g, opt.period, &r);
        let n = cfg.trip_count;
        let f = cfg.unfold_factor;

        let original = original_program(g, n);
        let pipelined = pipelined_program(g, &r, n);
        let cred = cred_pipelined(g, &r, n);
        let (unfolded, retime_unfold, cred_ru) = if f > 1 {
            (
                Some(unfolded_program(g, f, n)),
                Some(retime_unfold_program(g, &r, f, n)),
                Some(cred_retime_unfold(g, &r, f, n, cfg.dec_mode)),
            )
        } else {
            (None, None, None)
        };
        if cfg.verify {
            for p in [Some(&original), Some(&pipelined), Some(&cred)]
                .into_iter()
                .flatten()
                .chain([&unfolded, &retime_unfold, &cred_ru].into_iter().flatten())
            {
                check_against_reference(g, p)?;
            }
        }
        Ok(Reduction {
            retiming: r,
            period: opt.period,
            original,
            pipelined,
            cred,
            unfolded,
            retime_unfold,
            cred_retime_unfold: cred_ru,
        })
    }

    /// Convenience: CRED the plain unfolded loop (§3.3) without retiming.
    pub fn unfold_only(&self) -> Result<(LoopProgram, LoopProgram), ExecError> {
        let cfg = &self.config;
        let plain = unfolded_program(&self.graph, cfg.unfold_factor, cfg.trip_count);
        let reduced = cred_unfolded(&self.graph, cfg.unfold_factor, cfg.trip_count, cfg.dec_mode);
        if cfg.verify {
            check_against_reference(&self.graph, &plain)?;
            check_against_reference(&self.graph, &reduced)?;
        }
        Ok((plain, reduced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_kernels::{all_benchmarks, iir_filter};

    #[test]
    fn facade_runs_on_all_benchmarks() {
        for (name, g) in all_benchmarks() {
            let red = CodeSizeReducer::new(g)
                .with_config(ReducerConfig {
                    trip_count: 31,
                    ..Default::default()
                })
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                red.cred.code_size() <= red.pipelined.code_size(),
                "{name}: CRED must never be larger"
            );
        }
    }

    #[test]
    fn facade_with_unfolding() {
        let red = CodeSizeReducer::new(iir_filter())
            .with_config(ReducerConfig {
                unfold_factor: 3,
                trip_count: 50,
                ..Default::default()
            })
            .run()
            .unwrap();
        let ru = red.retime_unfold.as_ref().unwrap();
        let cr = red.cred_retime_unfold.as_ref().unwrap();
        assert!(cr.code_size() < ru.code_size());
        assert!(red.reduction_percent() > 0.0);
        assert_eq!(red.sizes().len(), 6);
    }

    #[test]
    fn unfold_only_reduces_remainder() {
        let red = CodeSizeReducer::new(iir_filter()).with_config(ReducerConfig {
            unfold_factor: 3,
            trip_count: 101, // 101 mod 3 = 2 remainder iterations
            ..Default::default()
        });
        let (plain, reduced) = red.unfold_only().unwrap();
        assert_eq!(plain.code_size(), 3 * 8 + 2 * 8);
        assert_eq!(reduced.code_size(), 3 * 8 + 2);
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn malformed_graph_rejected() {
        let mut b = cred_dfg::DfgBuilder::new();
        let a = b.unit("A");
        b.edge(a, a, 0);
        let _ = CodeSizeReducer::new(b.build_unchecked());
    }
}
