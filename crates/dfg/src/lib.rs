//! # cred-dfg — data-flow-graph substrate
//!
//! A data flow graph (DFG) `G = <V, E, d, t>` is a node-weighted,
//! edge-weighted directed multigraph:
//!
//! * `V` — computation nodes, each with a computation time `t(v) >= 1`
//!   and an executable operation ([`OpKind`]),
//! * `E` — dependence edges, each with a delay count `d(e) >= 0`;
//!   an edge `u -> v` with delay `d` means iteration `i` of `v` consumes
//!   the value produced by iteration `i - d` of `u`.
//!
//! Edges with `d(e) = 0` are intra-iteration dependencies; the zero-delay
//! subgraph must be acyclic for the graph to be well formed (every cycle
//! must carry at least one delay).
//!
//! This crate provides the graph representation plus the analyses the CRED
//! framework is built on:
//!
//! * [`algo::topo`] — topological order of the zero-delay subgraph,
//! * [`algo::cycle_period()`] — the cycle period `Phi(G)` (longest zero-delay
//!   path by computation time),
//! * [`algo::iteration_bound()`] — the iteration bound `B(G) = max_C T(C)/D(C)`
//!   over all cycles, computed exactly as a rational,
//! * [`algo::scc`] — strongly connected components (Tarjan),
//! * [`algo::wd`] — the Leiserson–Saxe `W`/`D` matrices used by min-period
//!   retiming,
//! * [`gen`] — structured and random DFG generators for tests and fuzzing,
//! * [`dot`] — Graphviz export.
//!
//! The graph is an index-based arena ([`NodeId`], [`EdgeId`] are `u32`
//! newtypes) so all algorithms are allocation-light and cache friendly.

pub mod algo;
pub mod dot;
pub mod gen;
mod graph;
mod ratio;

pub use graph::{
    Dfg, DfgBuilder, DfgError, EdgeData, EdgeId, NodeData, NodeId, OpClass, OpKind, OP_CLASSES,
};
pub use ratio::Ratio;
