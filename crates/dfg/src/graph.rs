//! Core graph representation: arena-based directed multigraph with
//! edge delays and node computation times.

use std::fmt;

/// Index of a node in a [`Dfg`]. Stable for the lifetime of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an edge in a [`Dfg`]. Stable for the lifetime of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The executable operation a node performs.
///
/// Every DFG in this workspace is *executable*: node `v` at iteration `i`
/// computes a 64-bit value from the values carried by its incoming edges
/// (each incoming edge `u -> v` with delay `d` supplies `val(u, i - d)`).
/// This gives all transformed programs a ground truth to be checked against
/// (see `cred-vm`). Arithmetic is wrapping, so every execution is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Sum of all inputs plus the constant.
    Add(i64),
    /// First input minus the sum of all remaining inputs, plus the constant.
    Sub(i64),
    /// Product of all inputs, plus the constant.
    Mul(i64),
    /// `in0 * in1 + (remaining inputs) + constant` — multiply-accumulate.
    /// Falls back to [`OpKind::Add`] semantics with fewer than two inputs.
    Mac(i64),
    /// `k * (sum of inputs) + c` — constant-coefficient scaling, e.g.
    /// `A[i] = 3 * B[i-1] + 7`.
    Scale(i64, i64),
    /// `k * (product of inputs) + c` — scaled product, e.g.
    /// `A[i] = 3 * X[i] * U[i-2]`.
    ScaledMul(i64, i64),
    /// Ignores inputs; produces `constant + 31 * i` at iteration `i`
    /// (iteration-dependent so distinct iterations are distinguishable).
    Input(i64),
}

impl OpKind {
    /// Evaluate the operation on `inputs` at (1-based) iteration `i`.
    ///
    /// `inline(always)`: the VM's streamed executor calls this from
    /// per-variant monomorphized loops where the match must fold to the
    /// variant's one or two ALU ops; the plain hint loses to the
    /// inliner's budget inside those large loop nests.
    #[inline(always)]
    pub fn eval(self, inputs: &[i64], i: i64) -> i64 {
        match self {
            OpKind::Add(c) => inputs.iter().fold(c, |acc, &x| acc.wrapping_add(x)),
            OpKind::Sub(c) => match inputs.split_first() {
                None => c,
                Some((&first, rest)) => rest
                    .iter()
                    .fold(first, |acc, &x| acc.wrapping_sub(x))
                    .wrapping_add(c),
            },
            OpKind::Mul(c) => inputs
                .iter()
                .fold(1i64, |acc, &x| acc.wrapping_mul(x))
                .wrapping_add(c),
            OpKind::Mac(c) => {
                if inputs.len() >= 2 {
                    let prod = inputs[0].wrapping_mul(inputs[1]);
                    inputs[2..]
                        .iter()
                        .fold(prod, |acc, &x| acc.wrapping_add(x))
                        .wrapping_add(c)
                } else {
                    // Add fallback, spelled out: a self-call here would
                    // make `eval` recursive, and LLVM silently drops
                    // `alwaysinline` from recursive functions — which
                    // un-inlines every monomorphized VM stream loop.
                    inputs.iter().fold(c, |acc, &x| acc.wrapping_add(x))
                }
            }
            OpKind::Scale(k, c) => inputs
                .iter()
                .fold(0i64, |acc, &x| acc.wrapping_add(x))
                .wrapping_mul(k)
                .wrapping_add(c),
            OpKind::ScaledMul(k, c) => inputs
                .iter()
                .fold(1i64, |acc, &x| acc.wrapping_mul(x))
                .wrapping_mul(k)
                .wrapping_add(c),
            OpKind::Input(c) => c.wrapping_add(31i64.wrapping_mul(i)),
        }
    }

    /// A short mnemonic used by pretty-printers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add(_) => "add",
            OpKind::Sub(_) => "sub",
            OpKind::Mul(_) => "mul",
            OpKind::Mac(_) => "mac",
            OpKind::Scale(..) => "scl",
            OpKind::ScaledMul(..) => "sml",
            OpKind::Input(_) => "inp",
        }
    }

    /// The functional-unit class executing this operation — the resource
    /// axis machine models constrain (per-class slot counts in
    /// `cred-exact`'s `MachineModel`, FU counts in `cred-schedule`).
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            OpKind::Add(_) | OpKind::Sub(_) | OpKind::Input(_) => OpClass::Alu,
            OpKind::Mul(_) | OpKind::Mac(_) | OpKind::Scale(..) | OpKind::ScaledMul(..) => {
                OpClass::Mac
            }
        }
    }
}

/// Functional-unit class of an [`OpKind`] — a simplification of a DSP
/// datapath (e.g. the TMS320C6000) split into arithmetic/logic units and
/// multiply-accumulate units. This is the unit machine descriptions
/// allocate: an op occupies one slot of its class for its whole
/// computation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Adders/ALUs — `Add`, `Sub`, `Input` (and the predicate bookkeeping
    /// instructions CRED inserts).
    Alu,
    /// Multiply-accumulate units — `Mul`, `Mac`, `Scale`, `ScaledMul`.
    Mac,
}

/// Number of op classes (for dense, class-indexed tables).
pub const OP_CLASSES: usize = 2;

impl OpClass {
    /// Every class, in [`OpClass::index`] order.
    pub const ALL: [OpClass; OP_CLASSES] = [OpClass::Alu, OpClass::Mac];

    /// Dense index for class-indexed tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::Mac => 1,
        }
    }

    /// Lower-case name used by machine-description files.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::Mac => "mac",
        }
    }

    /// Inverse of [`OpClass::name`].
    pub fn parse(s: &str) -> Option<OpClass> {
        match s {
            "alu" => Some(OpClass::Alu),
            "mac" => Some(OpClass::Mac),
            _ => None,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Payload of a node: a display name, a computation time (in time units,
/// `>= 1`), and its executable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    /// Human-readable name (`"A"`, `"B"`, ... in the paper's figures).
    pub name: String,
    /// Computation time `t(v) >= 1`. The paper assumes unit time unless
    /// noted (Figure 8 uses non-unit times).
    pub time: u32,
    /// Executable semantics of the node.
    pub op: OpKind,
}

/// Payload of an edge: endpoints and the inter-iteration delay count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeData {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Number of delays `d(e) >= 0`; `0` is an intra-iteration dependence.
    pub delay: u32,
}

/// Errors detected by [`Dfg::validate`] and the builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// The zero-delay subgraph contains a cycle; the cycle period would be
    /// undefined and no legal static schedule exists.
    ZeroDelayCycle,
    /// A node has computation time zero.
    ZeroTimeNode(NodeId),
    /// A node id out of range was referenced.
    InvalidNode(NodeId),
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::ZeroDelayCycle => {
                write!(f, "zero-delay cycle: no legal static schedule exists")
            }
            DfgError::ZeroTimeNode(n) => write!(f, "node {n} has computation time 0"),
            DfgError::InvalidNode(n) => write!(f, "node {n} out of range"),
            DfgError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for DfgError {}

/// A data flow graph `G = <V, E, d, t>`.
///
/// Construct with [`DfgBuilder`] or incrementally with [`Dfg::add_node`] /
/// [`Dfg::add_edge`]. The structure is append-only: nodes and edges are
/// never removed, so `NodeId`/`EdgeId` stay valid.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl Dfg {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a node with the given name, computation time, and operation.
    pub fn add_node(&mut self, name: impl Into<String>, time: u32, op: OpKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            name: name.into(),
            time,
            op,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Add an edge `src -> dst` carrying `delay` delays.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, delay: u32) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, delay });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        id
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// Edge payload.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &EdgeData {
        &self.edges[id.index()]
    }

    /// Mutable edge payload (used by retiming application).
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut EdgeData {
        &mut self.edges[id.index()]
    }

    /// Mutable node payload.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Incoming edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Look a node up by name (linear scan; names need not be unique, the
    /// first match wins). Intended for tests and examples.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|&id| self.node(id).name == name)
    }

    /// Total computation time `sum_v t(v)`.
    pub fn total_time(&self) -> u64 {
        self.nodes.iter().map(|n| n.time as u64).sum()
    }

    /// Total delay count `sum_e d(e)`.
    pub fn total_delays(&self) -> u64 {
        self.edges.iter().map(|e| e.delay as u64).sum()
    }

    /// True if every node has unit computation time (the paper's default).
    pub fn is_unit_time(&self) -> bool {
        self.nodes.iter().all(|n| n.time == 1)
    }

    /// Check well-formedness: non-empty, all node times `>= 1`, and the
    /// zero-delay subgraph acyclic (every dependence cycle carries at least
    /// one delay).
    pub fn validate(&self) -> Result<(), DfgError> {
        if self.nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        for id in self.node_ids() {
            if self.node(id).time == 0 {
                return Err(DfgError::ZeroTimeNode(id));
            }
        }
        if crate::algo::topo::zero_delay_topo_order(self).is_none() {
            return Err(DfgError::ZeroDelayCycle);
        }
        Ok(())
    }

    /// A 64-bit structural fingerprint of the graph.
    ///
    /// Covers everything the analyses depend on — node count, node times
    /// and operations, and every edge `(src, dst, delay)` in id order —
    /// and deliberately ignores node *names*, which never influence
    /// retiming, unfolding, or code size. Two graphs with equal
    /// fingerprints are (modulo a 64-bit FNV-1a collision) structurally
    /// identical, so the fingerprint serves as the memoization key of
    /// `cred-explore`'s sweep cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut word = |w: u64| {
            for byte in w.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        word(self.nodes.len() as u64);
        for n in &self.nodes {
            word(n.time as u64);
            let (tag, a, b) = match n.op {
                OpKind::Add(c) => (0u64, c, 0),
                OpKind::Sub(c) => (1, c, 0),
                OpKind::Mul(c) => (2, c, 0),
                OpKind::Mac(c) => (3, c, 0),
                OpKind::Scale(k, c) => (4, k, c),
                OpKind::ScaledMul(k, c) => (5, k, c),
                OpKind::Input(c) => (6, c, 0),
            };
            word(tag);
            word(a as u64);
            word(b as u64);
        }
        word(self.edges.len() as u64);
        for e in &self.edges {
            word(e.src.0 as u64);
            word(e.dst.0 as u64);
            word(e.delay as u64);
        }
        h
    }

    /// Reference execution of the DFG recurrence.
    ///
    /// Computes, for each node, the values of iterations `1..=n` directly
    /// from the recurrence `val(v, i) = op_v({ val(u, i - d(e)) : e(u->v) })`,
    /// with `val(u, j) = 0` for `j <= 0` (arrays are zero-initialized, as in
    /// the paper's code listings where e.g. `E[-3]` reads an initial zero).
    ///
    /// Returns one `Vec` of length `n` per node, indexed by `NodeId`.
    /// This is the ground truth against which `cred-vm` checks every
    /// generated program.
    pub fn reference_execution(&self, n: usize) -> Vec<Vec<i64>> {
        let order = crate::algo::topo::zero_delay_topo_order(self)
            .expect("reference_execution requires a well-formed DFG");
        let nv = self.node_count();
        let mut vals: Vec<Vec<i64>> = vec![vec![0; n + 1]; nv]; // 1-based
        let mut inputs: Vec<i64> = Vec::new();
        for i in 1..=n {
            // Within one iteration, zero-delay dependencies force evaluation
            // in topological order of the zero-delay subgraph; delayed
            // dependencies read earlier iterations, already computed.
            for &v in &order {
                inputs.clear();
                for &e in self.in_edges(v) {
                    let ed = self.edge(e);
                    let j = i as i64 - ed.delay as i64;
                    inputs.push(if j >= 1 {
                        vals[ed.src.index()][j as usize]
                    } else {
                        0
                    });
                }
                vals[v.index()][i] = self.node(v).op.eval(&inputs, i as i64);
            }
        }
        for col in &mut vals {
            col.remove(0); // drop the unused 0 slot; result[v][i-1] = val(v, i)
        }
        vals
    }
}

/// Fluent builder for [`Dfg`].
///
/// ```
/// use cred_dfg::{DfgBuilder, OpKind};
/// let mut b = DfgBuilder::new();
/// let a = b.node("A", 1, OpKind::Add(9));
/// let c = b.node("B", 1, OpKind::Mul(5));
/// b.edge(a, c, 0);
/// b.edge(c, a, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.node_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DfgBuilder {
    graph: Dfg,
}

impl DfgBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node.
    pub fn node(&mut self, name: impl Into<String>, time: u32, op: OpKind) -> NodeId {
        self.graph.add_node(name, time, op)
    }

    /// Add a unit-time node with `Add(0)` semantics — the common case in the
    /// paper's unit-time benchmarks.
    pub fn unit(&mut self, name: impl Into<String>) -> NodeId {
        self.graph.add_node(name, 1, OpKind::Add(0))
    }

    /// Add an edge.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, delay: u32) -> EdgeId {
        self.graph.add_edge(src, dst, delay)
    }

    /// Validate and return the graph.
    pub fn build(self) -> Result<Dfg, DfgError> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Return the graph without validation (for tests constructing
    /// deliberately malformed graphs).
    pub fn build_unchecked(self) -> Dfg {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Dfg {
        // Figure 1(a): A -> B with 0 delays, B -> A with 2 delays.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let bb = b.node("B", 1, OpKind::Mul(2));
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn fingerprint_ignores_names_but_sees_structure() {
        let g = two_node();
        // Same structure, different names: identical fingerprints.
        let mut b = DfgBuilder::new();
        let x = b.node("X", 1, OpKind::Add(1));
        let y = b.node("Y", 1, OpKind::Mul(2));
        b.edge(x, y, 0);
        b.edge(y, x, 2);
        let renamed = b.build().unwrap();
        assert_eq!(g.fingerprint(), renamed.fingerprint());

        // Any structural change — delay, time, op constant — must show.
        let mut delay = g.clone();
        delay.edge_mut(EdgeId(1)).delay = 3;
        assert_ne!(g.fingerprint(), delay.fingerprint());
        let mut time = g.clone();
        time.node_mut(NodeId(0)).time = 2;
        assert_ne!(g.fingerprint(), time.fingerprint());
        let mut op = g.clone();
        op.node_mut(NodeId(0)).op = OpKind::Add(2);
        assert_ne!(g.fingerprint(), op.fingerprint());
    }

    #[test]
    fn build_and_query() {
        let g = two_node();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        let a = g.find_node("A").unwrap();
        let b = g.find_node("B").unwrap();
        assert_eq!(g.out_edges(a).len(), 1);
        assert_eq!(g.in_edges(a).len(), 1);
        assert_eq!(g.edge(g.out_edges(a)[0]).dst, b);
        assert_eq!(g.edge(g.in_edges(a)[0]).delay, 2);
        assert!(g.is_unit_time());
        assert_eq!(g.total_time(), 2);
        assert_eq!(g.total_delays(), 2);
    }

    #[test]
    fn validate_rejects_zero_delay_cycle() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 0);
        b.edge(c, a, 0);
        assert_eq!(b.build().unwrap_err(), DfgError::ZeroDelayCycle);
    }

    #[test]
    fn validate_rejects_zero_time() {
        let mut b = DfgBuilder::new();
        b.node("A", 0, OpKind::Add(0));
        assert!(matches!(b.build(), Err(DfgError::ZeroTimeNode(_))));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(DfgBuilder::new().build().unwrap_err(), DfgError::Empty);
    }

    #[test]
    fn self_loop_with_delay_is_legal() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        b.edge(a, a, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn self_loop_without_delay_is_illegal() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        b.edge(a, a, 0);
        assert_eq!(b.build().unwrap_err(), DfgError::ZeroDelayCycle);
    }

    #[test]
    fn op_eval_add_sub_mul() {
        assert_eq!(OpKind::Add(3).eval(&[1, 2], 0), 6);
        assert_eq!(OpKind::Add(3).eval(&[], 0), 3);
        assert_eq!(OpKind::Sub(0).eval(&[10, 3, 2], 0), 5);
        assert_eq!(OpKind::Sub(7).eval(&[], 0), 7);
        assert_eq!(OpKind::Mul(1).eval(&[3, 4], 0), 13);
        assert_eq!(OpKind::Mul(0).eval(&[], 0), 1);
        assert_eq!(OpKind::Mac(1).eval(&[3, 4, 5], 0), 18);
        assert_eq!(OpKind::Mac(1).eval(&[3], 0), 4);
        assert_eq!(OpKind::Input(5).eval(&[99], 2), 5 + 62);
    }

    #[test]
    fn op_class_partition() {
        assert_eq!(OpKind::Add(0).class(), OpClass::Alu);
        assert_eq!(OpKind::Sub(0).class(), OpClass::Alu);
        assert_eq!(OpKind::Input(0).class(), OpClass::Alu);
        assert_eq!(OpKind::Mul(0).class(), OpClass::Mac);
        assert_eq!(OpKind::Mac(0).class(), OpClass::Mac);
        assert_eq!(OpKind::Scale(1, 0).class(), OpClass::Mac);
        assert_eq!(OpKind::ScaledMul(1, 0).class(), OpClass::Mac);
    }

    #[test]
    fn op_class_names_round_trip() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(OpClass::parse(c.name()), Some(*c));
        }
        assert_eq!(OpClass::parse("fpu"), None);
    }

    #[test]
    fn op_eval_wraps() {
        assert_eq!(OpKind::Add(1).eval(&[i64::MAX], 0), i64::MIN);
        assert_eq!(OpKind::Mul(0).eval(&[i64::MAX, 2], 0), -2);
    }

    #[test]
    fn reference_execution_simple_recurrence() {
        // A[i] = A[i-1] + 1, A[0] = 0  =>  A[i] = i.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        b.edge(a, a, 1);
        let g = b.build().unwrap();
        let vals = g.reference_execution(5);
        assert_eq!(vals[0], vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reference_execution_cross_iteration() {
        // B[i] = A[i] * 1st;  A[i] = B[i-2] + 1.
        let g = two_node();
        let a = g.find_node("A").unwrap().index();
        let b = g.find_node("B").unwrap().index();
        let vals = g.reference_execution(6);
        // A[1] = 0+1 = 1; B[1] = 1*1+2 = 3; A[2] = 0+1 = 1; B[2] = 3;
        // A[3] = B[1]+1 = 4; B[3] = 4+2 = 6; A[4] = B[2]+1 = 4; B[4] = 6;
        assert_eq!(vals[a][..4], [1, 1, 4, 4]);
        assert_eq!(vals[b][..4], [3, 3, 6, 6]);
    }

    #[test]
    fn reference_execution_respects_intra_iteration_order() {
        // C depends on B depends on A, all zero-delay; insertion order is
        // deliberately scrambled relative to dependence order.
        let mut bld = DfgBuilder::new();
        let c = bld.node("C", 1, OpKind::Add(0));
        let a = bld.node("A", 1, OpKind::Input(0));
        let b2 = bld.node("B", 1, OpKind::Add(100));
        bld.edge(a, b2, 0);
        bld.edge(b2, c, 0);
        let g = bld.build().unwrap();
        let vals = g.reference_execution(2);
        // A[i] = 31 i, B[i] = 31 i + 100, C[i] = B[i].
        assert_eq!(vals[a.index()], vec![31, 62]);
        assert_eq!(vals[b2.index()], vec![131, 162]);
        assert_eq!(vals[c.index()], vec![131, 162]);
    }
}
