//! Exact rational arithmetic for iteration bounds.
//!
//! Iteration bounds are ratios `T(C)/D(C)` of cycle computation time over
//! cycle delay count. Floating point is not acceptable for deciding
//! rate-optimality (e.g. whether an iteration period *equals* the bound), so
//! bounds are represented exactly.

use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative rational `num/den` in lowest terms, `den >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Ratio {
    /// Construct `num/den` reduced to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "ratio with zero denominator");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.abs(), den.abs());
        let g = gcd(num, den).max(1);
        Ratio {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// The integer `n` as a ratio.
    pub fn integer(n: i64) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Numerator (in lowest terms, sign-carrying).
    pub fn num(self) -> i64 {
        self.num
    }

    /// Denominator (in lowest terms, always positive).
    pub fn den(self) -> i64 {
        self.den
    }

    /// True if the ratio is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Closest `f64` (for display and approximate comparisons only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i64 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i64 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - self.den + 1) / self.den
        }
    }

    /// `self * k` for integer `k`.
    pub fn scale(self, k: i64) -> Ratio {
        Ratio::new(self.num * k, self.den)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiplication in i128 avoids overflow for all i64 ratios.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(27, 2);
        assert_eq!((r.num(), r.den()), (27, 2));
        let r = Ratio::new(54, 4);
        assert_eq!((r.num(), r.den()), (27, 2));
        let r = Ratio::new(0, 5);
        assert_eq!((r.num(), r.den()), (0, 1));
    }

    #[test]
    fn sign_normalization() {
        assert_eq!(Ratio::new(-4, 2), Ratio::new(4, -2));
        assert_eq!(Ratio::new(-4, -2), Ratio::integer(2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn ordering_via_cross_multiplication() {
        assert!(Ratio::new(27, 2) > Ratio::integer(13));
        assert!(Ratio::new(27, 2) < Ratio::integer(14));
        assert_eq!(Ratio::new(3, 2).cmp(&Ratio::new(6, 4)), Ordering::Equal);
        // Values that would overflow naive i64 cross multiplication.
        let big = Ratio::new(i64::MAX, 3);
        let bigger = Ratio::new(i64::MAX, 2);
        assert!(big < bigger);
    }

    #[test]
    fn ceil_floor() {
        assert_eq!(Ratio::new(27, 2).ceil(), 14);
        assert_eq!(Ratio::new(27, 2).floor(), 13);
        assert_eq!(Ratio::integer(5).ceil(), 5);
        assert_eq!(Ratio::integer(5).floor(), 5);
        assert_eq!(Ratio::new(-3, 2).ceil(), -1);
        assert_eq!(Ratio::new(-3, 2).floor(), -2);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(27, 2).to_string(), "27/2");
        assert_eq!(Ratio::integer(8).to_string(), "8");
        assert_eq!(format!("{:.1}", Ratio::new(27, 2).to_f64()), "13.5");
    }

    #[test]
    fn scale() {
        assert_eq!(Ratio::new(27, 2).scale(4), Ratio::integer(54));
        assert_eq!(Ratio::new(1, 3).scale(2), Ratio::new(2, 3));
    }
}
