//! Graphviz (DOT) export for data flow graphs.
//!
//! Delays are drawn as edge labels (the paper draws them as bar lines);
//! non-unit computation times are appended to node labels.

use crate::Dfg;
use std::fmt::Write as _;

/// Render `g` as a Graphviz `digraph`.
pub fn to_dot(g: &Dfg, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for v in g.node_ids() {
        let nd = g.node(v);
        if nd.time == 1 {
            let _ = writeln!(out, "  {} [label=\"{}\"];", v.index(), esc(&nd.name));
        } else {
            let _ = writeln!(
                out,
                "  {} [label=\"{} (t={})\"];",
                v.index(),
                esc(&nd.name),
                nd.time
            );
        }
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if ed.delay == 0 {
            let _ = writeln!(out, "  {} -> {};", ed.src.index(), ed.dst.index());
        } else {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}D\"];",
                ed.src.index(),
                ed.dst.index(),
                ed.delay
            );
        }
    }
    out.push_str("}\n");
    out
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    #[test]
    fn renders_nodes_edges_and_delays() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.node("B", 3, OpKind::Mul(0));
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        let g = b.build().unwrap();
        let dot = to_dot(&g, "fig1");
        assert!(dot.starts_with("digraph fig1 {"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"B (t=3)\""));
        assert!(dot.contains("label=\"2D\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut b = DfgBuilder::new();
        b.node("a\"b", 1, OpKind::Add(0));
        let g = b.build().unwrap();
        assert!(to_dot(&g, "g").contains("a\\\"b"));
    }
}
