//! Graph analyses used by retiming, unfolding, scheduling, and codegen.

pub mod cycle_period;
pub mod iteration_bound;
pub mod scc;
pub mod topo;
pub mod wd;

pub use cycle_period::{cycle_period, zero_delay_longest_path_to};
pub use iteration_bound::iteration_bound;
pub use scc::strongly_connected_components;
pub use topo::zero_delay_topo_order;
pub use wd::WdMatrices;
