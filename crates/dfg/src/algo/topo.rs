//! Topological ordering of the zero-delay subgraph.
//!
//! A legal static schedule of one iteration must respect every intra-
//! iteration (zero-delay) dependence, so the zero-delay subgraph must be a
//! DAG. Its topological order is the evaluation order used by the reference
//! executor and by the schedulers.

use crate::{Dfg, NodeId};

/// Kahn's algorithm restricted to zero-delay edges.
///
/// Ready nodes are drained smallest-id-first, so the order is deterministic
/// and coincides with insertion order whenever dependencies allow — code
/// generators rely on this to reproduce the paper's instruction listings.
///
/// Returns `None` if the zero-delay subgraph contains a cycle (the DFG is
/// then malformed: no legal schedule exists).
pub fn zero_delay_topo_order(g: &Dfg) -> Option<Vec<NodeId>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if ed.delay == 0 {
            indeg[ed.dst.index()] += 1;
        }
    }
    let mut ready: BinaryHeap<Reverse<u32>> = g
        .node_ids()
        .filter(|v| indeg[v.index()] == 0)
        .map(|v| Reverse(v.0))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(v)) = ready.pop() {
        let v = NodeId(v);
        order.push(v);
        for &e in g.out_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                let d = &mut indeg[ed.dst.index()];
                *d -= 1;
                if *d == 0 {
                    ready.push(Reverse(ed.dst.0));
                }
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    #[test]
    fn chain_orders_correctly() {
        let mut b = DfgBuilder::new();
        let c = b.unit("C");
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, c, 0);
        let g = b.build_unchecked();
        let order = zero_delay_topo_order(&g).unwrap();
        let pos = |v| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(a) < pos(bb));
        assert!(pos(bb) < pos(c));
    }

    #[test]
    fn delayed_back_edge_does_not_block() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 1); // inter-iteration: not a zero-delay cycle
        let g = b.build_unchecked();
        assert!(zero_delay_topo_order(&g).is_some());
    }

    #[test]
    fn zero_delay_cycle_detected() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 0);
        let g = b.build_unchecked();
        assert!(zero_delay_topo_order(&g).is_none());
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = DfgBuilder::new().build_unchecked();
        assert_eq!(zero_delay_topo_order(&g), Some(vec![]));
    }

    #[test]
    fn parallel_zero_delay_edges_handled() {
        // Multigraph: two zero-delay edges A -> B must both be drained.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(a, bb, 0);
        let g = b.build_unchecked();
        let order = zero_delay_topo_order(&g).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn operation_kind_is_irrelevant_to_order() {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 3, OpKind::Mul(0));
        let c = b.node("C", 2, OpKind::Input(0));
        b.edge(c, a, 0);
        let g = b.build_unchecked();
        let order = zero_delay_topo_order(&g).unwrap();
        assert_eq!(order, vec![c, a]);
    }
}
