//! The Leiserson–Saxe `W` and `D` matrices.
//!
//! For a DFG `G` and nodes `u, v`:
//!
//! * `W(u, v)` — the minimum delay count over all paths `u ~> v`;
//! * `D(u, v)` — the maximum total computation time (including both
//!   endpoints) over the minimum-delay paths `u ~> v`.
//!
//! These drive the OPT min-period retiming algorithm: a clock period `c` is
//! achievable iff the difference constraints `r(u) - r(v) <= d(e)` for every
//! edge and `r(u) - r(v) <= W(u, v) - 1` for every pair with `D(u, v) > c`
//! are simultaneously satisfiable, and the candidate optimal periods are
//! exactly the entries of `D`.
//!
//! Computed with Floyd–Warshall over lexicographic pair weights
//! `(d(e), -t(src))`, the standard reduction from the retiming paper.

use crate::Dfg;

const INF: i64 = i64::MAX / 4;

/// Dense `W`/`D` matrices for all node pairs, stored flat with an `INF`
/// sentinel (`v` unreachable from `u`); the `Option` accessors translate
/// the sentinel at the call site.
#[derive(Debug, Clone)]
pub struct WdMatrices {
    n: usize,
    /// Lexicographic shortest-path weight: (delay, -time-of-path-minus-dst).
    w: Vec<i64>,
    neg_t: Vec<i64>,
    times: Vec<i64>,
    /// Every reachable pair as `(D(u, v), u, v)`, sorted by `D` descending
    /// (ties by `(u, v)` ascending). The period-`c` feasibility constraints
    /// are exactly the pairs with `D > c`, so this is the *activation
    /// order*: tightening `c` activates a longer prefix of this list. The
    /// incremental retiming solver consumes it verbatim.
    activation: Vec<(i64, u32, u32)>,
}

impl WdMatrices {
    /// Compute both matrices in `O(V^3)` (dense Floyd–Warshall).
    pub fn compute(g: &Dfg) -> Self {
        let n = g.node_count();
        let mut w = vec![INF; n * n];
        let mut neg_t = vec![INF; n * n];
        let at = |i: usize, j: usize| i * n + j;
        for u in 0..n {
            w[at(u, u)] = 0;
            neg_t[at(u, u)] = 0;
        }
        for e in g.edge_ids() {
            let ed = g.edge(e);
            let (i, j) = (ed.src.index(), ed.dst.index());
            let cand = (ed.delay as i64, -(g.node(ed.src).time as i64));
            if cand < (w[at(i, j)], neg_t[at(i, j)]) {
                w[at(i, j)] = cand.0;
                neg_t[at(i, j)] = cand.1;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if w[at(i, k)] >= INF {
                    continue;
                }
                let (wik, tik) = (w[at(i, k)], neg_t[at(i, k)]);
                for j in 0..n {
                    if w[at(k, j)] >= INF {
                        continue;
                    }
                    let cand = (wik + w[at(k, j)], tik + neg_t[at(k, j)]);
                    if cand < (w[at(i, j)], neg_t[at(i, j)]) {
                        w[at(i, j)] = cand.0;
                        neg_t[at(i, j)] = cand.1;
                    }
                }
            }
        }
        let times: Vec<i64> = g.node_ids().map(|v| g.node(v).time as i64).collect();
        let mut activation = Vec::new();
        for u in 0..n {
            for v in 0..n {
                let nt = neg_t[at(u, v)];
                if nt < INF {
                    activation.push((times[v] - nt, u as u32, v as u32));
                }
            }
        }
        // D descending; the (u, v)-ascending tie-break keeps the order (and
        // everything derived from it) deterministic.
        activation.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        WdMatrices {
            n,
            w,
            neg_t,
            times,
            activation,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `W(u, v)`: minimum path delay count, `None` if unreachable.
    pub fn w(&self, u: usize, v: usize) -> Option<i64> {
        let x = self.w[u * self.n + v];
        (x < INF).then_some(x)
    }

    /// `D(u, v)`: maximum computation time over minimum-delay paths
    /// (both endpoints included), `None` if unreachable.
    pub fn d(&self, u: usize, v: usize) -> Option<i64> {
        let x = self.neg_t[u * self.n + v];
        (x < INF).then_some(self.times[v] - x)
    }

    /// All reachable pairs as `(D(u, v), u, v)` sorted by `D` descending —
    /// the order in which the period-`c` constraints `r(v) - r(u) <=
    /// W(u, v) - 1` activate as `c` tightens (a pair is active iff
    /// `D > c`, so every period selects a prefix of this list).
    pub fn activation_by_d(&self) -> &[(i64, u32, u32)] {
        &self.activation
    }

    /// All distinct finite `D` values, sorted ascending — the candidate
    /// clock periods for min-period retiming. Derived from the precomputed
    /// activation order, so this is a linear scan, not an `O(V^2)` re-sort.
    pub fn candidate_periods(&self) -> Vec<i64> {
        let mut out: Vec<i64> = self.activation.iter().rev().map(|&(d, _, _)| d).collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    fn correlator() -> (Dfg, Vec<crate::NodeId>) {
        // A 4-node ring: v0 -t=1-> v1 -> v2 -> v3, back edge with 3 delays.
        let mut b = DfgBuilder::new();
        let times = [3u32, 3, 3, 3];
        let nodes: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| b.node(format!("v{i}"), t, OpKind::Add(0)))
            .collect();
        b.edge(nodes[0], nodes[1], 1);
        b.edge(nodes[1], nodes[2], 1);
        b.edge(nodes[2], nodes[3], 1);
        b.edge(nodes[3], nodes[0], 0);
        let g = b.build().unwrap();
        (g, nodes)
    }

    use crate::Dfg;

    #[test]
    fn diagonal_is_trivial_path() {
        let (g, nodes) = correlator();
        let wd = WdMatrices::compute(&g);
        for v in &nodes {
            assert_eq!(wd.w(v.index(), v.index()), Some(0));
            assert_eq!(wd.d(v.index(), v.index()), Some(g.node(*v).time as i64));
        }
    }

    #[test]
    fn ring_w_and_d() {
        let (_, nodes) = correlator();
        let (g, _) = correlator();
        let wd = WdMatrices::compute(&g);
        let (v0, v1, v3) = (nodes[0].index(), nodes[1].index(), nodes[3].index());
        // v0 -> v1 direct: 1 delay, times 3 + 3 = 6.
        assert_eq!(wd.w(v0, v1), Some(1));
        assert_eq!(wd.d(v0, v1), Some(6));
        // v3 -> v0: zero-delay edge, times 3 + 3.
        assert_eq!(wd.w(v3, v0), Some(0));
        assert_eq!(wd.d(v3, v0), Some(6));
        // v0 -> v3: 3 delays, all four nodes on the path.
        assert_eq!(wd.w(v0, v3), Some(3));
        assert_eq!(wd.d(v0, v3), Some(12));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 1);
        let g = b.build().unwrap();
        let wd = WdMatrices::compute(&g);
        assert_eq!(wd.w(c.index(), a.index()), None);
        assert_eq!(wd.d(c.index(), a.index()), None);
        assert_eq!(wd.w(a.index(), c.index()), Some(1));
    }

    #[test]
    fn min_delay_path_preferred_over_shorter_time() {
        // Two paths a -> b: direct with 2 delays, and via x with 0 delays.
        // W must pick the zero-delay route even though it is "longer" in time.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(0));
        let x = b.node("X", 10, OpKind::Add(0));
        let c = b.node("B", 1, OpKind::Add(0));
        b.edge(a, c, 2);
        b.edge(a, x, 0);
        b.edge(x, c, 0);
        let g = b.build().unwrap();
        let wd = WdMatrices::compute(&g);
        assert_eq!(wd.w(a.index(), c.index()), Some(0));
        assert_eq!(wd.d(a.index(), c.index()), Some(12)); // 1 + 10 + 1
    }

    #[test]
    fn tie_on_delay_takes_max_time() {
        // Two zero-delay paths a -> b; D takes the slower one.
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(0));
        let x = b.node("X", 10, OpKind::Add(0));
        let y = b.node("Y", 2, OpKind::Add(0));
        let c = b.node("B", 1, OpKind::Add(0));
        b.edge(a, x, 0);
        b.edge(x, c, 0);
        b.edge(a, y, 0);
        b.edge(y, c, 0);
        let g = b.build().unwrap();
        let wd = WdMatrices::compute(&g);
        assert_eq!(wd.w(a.index(), c.index()), Some(0));
        assert_eq!(wd.d(a.index(), c.index()), Some(12));
    }

    #[test]
    fn candidate_periods_sorted_unique() {
        let (g, _) = correlator();
        let wd = WdMatrices::compute(&g);
        let cands = wd.candidate_periods();
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        assert!(cands.contains(&3)); // single node
        assert!(cands.contains(&12)); // whole ring
    }

    #[test]
    fn activation_order_is_sorted_and_complete() {
        let (g, _) = correlator();
        let wd = WdMatrices::compute(&g);
        let act = wd.activation_by_d();
        // Sorted: D descending, ties broken by (u, v) ascending.
        assert!(act.windows(2).all(|w| w[0].0 >= w[1].0));
        assert!(act
            .windows(2)
            .all(|w| w[0].0 > w[1].0 || (w[0].1, w[0].2) < (w[1].1, w[1].2)));
        // Complete and consistent: exactly the reachable pairs, with the
        // matrix accessors' D values.
        let n = g.node_count();
        let reachable: Vec<(i64, u32, u32)> = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter_map(|(u, v)| wd.d(u, v).map(|d| (d, u as u32, v as u32)))
            .collect();
        assert_eq!(act.len(), reachable.len());
        let mut sorted = reachable;
        sorted.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        assert_eq!(act, &sorted[..]);
    }

    #[test]
    fn d_upper_bounds_cycle_period() {
        // The cycle period (longest zero-delay path) must appear among
        // candidate periods: it is D over a zero-delay path.
        let (g, _) = correlator();
        let wd = WdMatrices::compute(&g);
        let phi = crate::algo::cycle_period(&g).unwrap() as i64;
        assert!(wd.candidate_periods().contains(&phi));
    }
}
