//! Iteration bound `B(G) = max_{cycles C} T(C) / D(C)`, computed exactly.
//!
//! Every dependence cycle imposes a lower bound `T(C)/D(C)` on the average
//! time per iteration; the maximum over all cycles is the *iteration bound*.
//! A schedule is rate-optimal when its iteration period equals `B(G)`.
//!
//! The maximum cycle ratio is found by Lawler-style bisection: for a
//! candidate ratio `lambda = p/q`, some cycle has ratio `> lambda` iff the
//! graph with edge weights `w(e) = q * t(src(e)) - p * d(e)` contains a
//! positive cycle (every cycle carries at least one delay in a well-formed
//! DFG, so the denominator `D(C)` is never zero). Positive cycles are
//! detected with Bellman–Ford. The bisection runs on exact rationals and
//! terminates by snapping to the unique ratio with denominator at most the
//! total delay count — so the result is exact, never a float approximation.

use crate::{Dfg, Ratio};

/// True iff some cycle `C` satisfies `T(C)/D(C) > lambda`, i.e. the graph
/// weighted by `w(e) = den * t(src) - num * d(e)` has a positive cycle.
fn has_cycle_ratio_above(g: &Dfg, lambda: Ratio) -> bool {
    let n = g.node_count();
    if n == 0 {
        return false;
    }
    let (p, q) = (lambda.num() as i128, lambda.den() as i128);
    let w = |e: crate::EdgeId| -> i128 {
        let ed = g.edge(e);
        q * g.node(ed.src).time as i128 - p * ed.delay as i128
    };
    // Bellman–Ford longest-path relaxation from an implicit super-source
    // (all distances start at 0): if an edge still relaxes after n rounds,
    // a positive cycle exists.
    let mut dist = vec![0i128; n];
    for _ in 0..n {
        let mut changed = false;
        for e in g.edge_ids() {
            let ed = g.edge(e);
            let cand = dist[ed.src.index()] + w(e);
            if cand > dist[ed.dst.index()] {
                dist[ed.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // One more round to confirm continued relaxation.
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if dist[ed.src.index()] + w(e) > dist[ed.dst.index()] {
            return true;
        }
    }
    false
}

/// The unique ratio with denominator `<= max_den` in the half-open interval
/// `(lo, hi]`, given that the interval is narrower than `1 / max_den^2`
/// (two distinct such ratios differ by at least that much).
fn snap_ratio(lo: Ratio, hi: Ratio, max_den: i64) -> Ratio {
    for q in 1..=max_den {
        // Largest p with p/q <= hi.
        let p = (hi.num() as i128 * q as i128 / hi.den() as i128) as i64;
        let cand = Ratio::new(p, q);
        if cand > lo && cand <= hi {
            return cand;
        }
    }
    // Interval invariant guarantees a hit; hi itself is always valid if its
    // denominator qualifies.
    hi
}

/// Compute the iteration bound `B(G)` exactly.
///
/// Returns `None` for an acyclic graph (no cycle constrains the rate; the
/// iteration bound is conventionally zero / absent).
///
/// # Panics
/// Panics if the graph contains a zero-delay cycle (malformed; validate
/// first).
pub fn iteration_bound(g: &Dfg) -> Option<Ratio> {
    // lambda = 0: a positive cycle exists iff the graph has any cycle at all
    // (all computation times are >= 1).
    if !has_cycle_ratio_above(g, Ratio::integer(0)) {
        return None;
    }
    let d_max = g.total_delays() as i64;
    assert!(
        d_max > 0,
        "cyclic graph with zero total delays has a zero-delay cycle"
    );
    // Bisect on the dyadic grid x / scale with a fixed power-of-two scale
    // strictly finer than 1/d_max^2, so the final bracket (lo, hi] of width
    // 1/scale contains exactly one ratio with denominator <= d_max: B(G).
    let t_total = g.total_time() as i64;
    let mut scale: i64 = 1;
    while (scale as i128) <= (d_max as i128) * (d_max as i128) {
        scale <<= 1;
    }
    let mut lo: i64 = 0; // invariant: some cycle ratio > lo/scale
    let mut hi: i64 = t_total
        .checked_mul(scale)
        .expect("iteration-bound search range overflow");
    debug_assert!(!has_cycle_ratio_above(g, Ratio::new(hi, scale)));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if has_cycle_ratio_above(g, Ratio::new(mid, scale)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let b = snap_ratio(Ratio::new(lo, scale), Ratio::new(hi, scale), d_max);
    debug_assert!(!has_cycle_ratio_above(g, b));
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    /// Brute-force iteration bound by enumerating all simple cycles (DFS
    /// from each start node, only visiting nodes >= start to avoid
    /// duplicates). Test oracle for small graphs.
    fn brute_force_bound(g: &Dfg) -> Option<Ratio> {
        use crate::NodeId;
        let mut best: Option<Ratio> = None;
        let n = g.node_count();
        // stack of (node, time-so-far, delay-so-far)
        fn dfs(
            g: &Dfg,
            start: NodeId,
            v: NodeId,
            t_acc: i64,
            d_acc: i64,
            visited: &mut Vec<bool>,
            best: &mut Option<Ratio>,
        ) {
            for &e in g.out_edges(v) {
                let ed = g.edge(e);
                let w = ed.dst;
                let t2 = t_acc + g.node(v).time as i64;
                let d2 = d_acc + ed.delay as i64;
                if w == start {
                    if d2 > 0 {
                        let r = Ratio::new(t2, d2);
                        if best.is_none_or(|b| r > b) {
                            *best = Some(r);
                        }
                    }
                } else if w > start && !visited[w.index()] {
                    visited[w.index()] = true;
                    dfs(g, start, w, t2, d2, visited, best);
                    visited[w.index()] = false;
                }
            }
        }
        for start in g.node_ids() {
            let mut visited = vec![false; n];
            visited[start.index()] = true;
            dfs(g, start, start, 0, 0, &mut visited, &mut best);
        }
        best
    }

    #[test]
    fn acyclic_graph_has_no_bound() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 1);
        let g = b.build().unwrap();
        assert_eq!(iteration_bound(&g), None);
    }

    #[test]
    fn two_node_cycle() {
        // T = 2, D = 2 => B = 1.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        let g = b.build().unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::integer(1)));
    }

    #[test]
    fn fractional_bound_27_over_2() {
        // A cycle of 5 nodes with times summing to 27 over 2 delays — the
        // reconstructed Figure 8 shape: B = 27/2 = 13.5.
        let mut b = DfgBuilder::new();
        let times = [1u32, 4, 5, 7, 10];
        let nodes: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| b.node(format!("n{i}"), t, OpKind::Add(0)))
            .collect();
        for i in 0..5 {
            let d = if i == 4 || i == 2 { 1 } else { 0 };
            b.edge(nodes[i], nodes[(i + 1) % 5], d);
        }
        let g = b.build().unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(27, 2)));
    }

    #[test]
    fn max_over_multiple_cycles() {
        // Cycle 1: T=2, D=2 (ratio 1). Cycle 2: T=9, D=3 (ratio 3).
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        let x = b.node("X", 4, OpKind::Add(0));
        let y = b.node("Y", 5, OpKind::Add(0));
        b.edge(x, y, 1);
        b.edge(y, x, 2);
        let g = b.build().unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::integer(3)));
    }

    #[test]
    fn self_loop_bound() {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 7, OpKind::Add(0));
        b.edge(a, a, 3);
        let g = b.build().unwrap();
        assert_eq!(iteration_bound(&g), Some(Ratio::new(7, 3)));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for case in 0..60 {
            let n = rng.random_range(2..7usize);
            let mut b = DfgBuilder::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| b.node(format!("n{i}"), rng.random_range(1..9u32), OpKind::Add(0)))
                .collect();
            // Random zero-delay DAG edges (forward) + random delayed edges.
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.random_bool(0.4) {
                        b.edge(nodes[i], nodes[j], 0);
                    }
                }
            }
            let extra = rng.random_range(1..=n);
            for _ in 0..extra {
                let i = rng.random_range(0..n);
                let j = rng.random_range(0..n);
                b.edge(nodes[i], nodes[j], rng.random_range(1..4u32));
            }
            let g = b.build_unchecked();
            if g.validate().is_err() {
                continue;
            }
            assert_eq!(
                iteration_bound(&g),
                brute_force_bound(&g),
                "mismatch on case {case}"
            );
        }
    }
}
