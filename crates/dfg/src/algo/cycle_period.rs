//! Cycle period `Phi(G)`: the maximum total computation time along a
//! zero-delay path.
//!
//! The cycle period equals the minimum schedule length of one iteration when
//! resources are unconstrained, and is the quantity min-period retiming
//! minimizes.

use crate::{Dfg, NodeId};

/// For every node `v`, the maximum total computation time of a zero-delay
/// path *ending at* `v` (inclusive of `t(v)`). This is the `Delta(v)`
/// quantity used by the FEAS retiming algorithm and by ASAP scheduling.
///
/// Returns `None` if the zero-delay subgraph is cyclic.
pub fn zero_delay_longest_path_to(g: &Dfg) -> Option<Vec<u64>> {
    let order = super::topo::zero_delay_topo_order(g)?;
    let mut delta = vec![0u64; g.node_count()];
    for &v in &order {
        let mut best = 0u64;
        for &e in g.in_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                best = best.max(delta[ed.src.index()]);
            }
        }
        delta[v.index()] = best + g.node(v).time as u64;
    }
    Some(delta)
}

/// The cycle period `Phi(G) = max_v Delta(v)`.
///
/// Returns `None` for a malformed graph (zero-delay cycle) and `Some(0)`
/// only for the empty graph.
pub fn cycle_period(g: &Dfg) -> Option<u64> {
    let delta = zero_delay_longest_path_to(g)?;
    Some(delta.into_iter().max().unwrap_or(0))
}

/// The set of nodes on some critical (longest zero-delay) path.
///
/// A node is *critical* if it lies on a zero-delay path of total time
/// `Phi(G)`. Used by rotation scheduling diagnostics and tests.
pub fn critical_nodes(g: &Dfg) -> Option<Vec<NodeId>> {
    let delta = zero_delay_longest_path_to(g)?;
    let phi = delta.iter().copied().max().unwrap_or(0);
    // Longest zero-delay path *from* v (inclusive): compute on the reversed
    // subgraph.
    let order = super::topo::zero_delay_topo_order(g)?;
    let mut from = vec![0u64; g.node_count()];
    for &v in order.iter().rev() {
        let mut best = 0u64;
        for &e in g.out_edges(v) {
            let ed = g.edge(e);
            if ed.delay == 0 {
                best = best.max(from[ed.dst.index()]);
            }
        }
        from[v.index()] = best + g.node(v).time as u64;
    }
    Some(
        g.node_ids()
            .filter(|v| delta[v.index()] + from[v.index()] - g.node(*v).time as u64 == phi)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, OpKind};

    #[test]
    fn single_node() {
        let mut b = DfgBuilder::new();
        b.node("A", 3, OpKind::Add(0));
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(3));
    }

    #[test]
    fn figure1a_period_two() {
        // A -> B zero-delay, B -> A two delays: Phi = t(A)+t(B) = 2.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 0);
        b.edge(bb, a, 2);
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(2));
    }

    #[test]
    fn figure1b_period_one() {
        // Retimed Figure 1(b): both edges carry delays; Phi = 1.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let bb = b.unit("B");
        b.edge(a, bb, 1);
        b.edge(bb, a, 1);
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(1));
    }

    #[test]
    fn non_unit_times_accumulate() {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 2, OpKind::Add(0));
        let c = b.node("B", 5, OpKind::Add(0));
        let d = b.node("C", 4, OpKind::Add(0));
        b.edge(a, c, 0);
        b.edge(c, d, 0);
        b.edge(d, a, 1);
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(11));
    }

    #[test]
    fn delayed_edges_break_paths() {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 10, OpKind::Add(0));
        let c = b.node("B", 10, OpKind::Add(0));
        b.edge(a, c, 1);
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(10));
    }

    #[test]
    fn diamond_takes_longer_branch() {
        let mut b = DfgBuilder::new();
        let s = b.node("S", 1, OpKind::Add(0));
        let l = b.node("L", 7, OpKind::Add(0));
        let r = b.node("R", 2, OpKind::Add(0));
        let t = b.node("T", 1, OpKind::Add(0));
        b.edge(s, l, 0);
        b.edge(s, r, 0);
        b.edge(l, t, 0);
        b.edge(r, t, 0);
        let g = b.build().unwrap();
        assert_eq!(cycle_period(&g), Some(9));
    }

    #[test]
    fn critical_nodes_on_longest_path() {
        let mut b = DfgBuilder::new();
        let s = b.node("S", 1, OpKind::Add(0));
        let l = b.node("L", 7, OpKind::Add(0));
        let r = b.node("R", 2, OpKind::Add(0));
        let t = b.node("T", 1, OpKind::Add(0));
        b.edge(s, l, 0);
        b.edge(s, r, 0);
        b.edge(l, t, 0);
        b.edge(r, t, 0);
        let g = b.build().unwrap();
        let crit = critical_nodes(&g).unwrap();
        assert!(crit.contains(&s) && crit.contains(&l) && crit.contains(&t));
        assert!(!crit.contains(&r));
    }

    #[test]
    fn malformed_graph_yields_none() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        b.edge(a, a, 0);
        let g = b.build_unchecked();
        assert_eq!(cycle_period(&g), None);
        assert!(critical_nodes(&g).is_none());
    }
}
