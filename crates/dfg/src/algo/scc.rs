//! Strongly connected components (Tarjan's algorithm, iterative).
//!
//! SCCs identify the cyclic cores of a DFG: only nodes inside a non-trivial
//! SCC contribute cycles to the iteration bound; everything else is
//! feed-forward and can be retimed freely.

use crate::{Dfg, NodeId};

/// Compute strongly connected components over *all* edges (delays ignored).
///
/// Returns components in reverse topological order of the condensation
/// (standard Tarjan output); each component is a list of node ids.
pub fn strongly_connected_components(g: &Dfg) -> Vec<Vec<NodeId>> {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS stack of (node, next out-edge position) to avoid
    // recursion depth limits on large generated graphs.
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in g.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei < g.out_edges(v).len() {
                let e = g.out_edges(v)[*ei];
                *ei += 1;
                let w = g.edge(e).dst;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// True if node `v` lies on some dependence cycle (its SCC is non-trivial or
/// it has a self-loop).
pub fn is_on_cycle(g: &Dfg, sccs: &[Vec<NodeId>], v: NodeId) -> bool {
    let comp = sccs
        .iter()
        .find(|c| c.contains(&v))
        .expect("node must belong to some SCC");
    comp.len() > 1 || g.out_edges(v).iter().any(|&e| g.edge(e).dst == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    #[test]
    fn two_node_cycle_is_one_scc() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, c, 0);
        b.edge(c, a, 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
    }

    #[test]
    fn chain_gives_singletons() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        let d = b.unit("C");
        b.edge(a, c, 0);
        b.edge(c, d, 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn reverse_topological_component_order() {
        // A -> B cycle(B, C), chain order: {A} must come after {B, C}
        // in Tarjan's reverse-topological output.
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        let d = b.unit("C");
        b.edge(a, c, 0);
        b.edge(c, d, 0);
        b.edge(d, c, 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].len(), 2); // {B, C} emitted first
        assert_eq!(sccs[1], vec![a]);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let mut b = DfgBuilder::new();
        let a = b.unit("A");
        let c = b.unit("B");
        b.edge(a, a, 1);
        b.edge(a, c, 0);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert!(is_on_cycle(&g, &sccs, a));
        assert!(!is_on_cycle(&g, &sccs, c));
    }

    #[test]
    fn nested_cycles_merge() {
        // a -> b -> c -> a  and  b -> d -> b: all in one SCC.
        let mut b = DfgBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.unit(format!("n{i}"))).collect();
        b.edge(n[0], n[1], 0);
        b.edge(n[1], n[2], 0);
        b.edge(n[2], n[0], 1);
        b.edge(n[1], n[3], 0);
        b.edge(n[3], n[1], 1);
        let g = b.build().unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 4);
    }

    #[test]
    fn large_path_graph_no_stack_overflow() {
        // 100k-node zero-delay chain exercises the iterative DFS.
        let mut b = DfgBuilder::new();
        let mut prev = b.unit("n0");
        for i in 1..100_000 {
            let cur = b.unit(format!("n{i}"));
            b.edge(prev, cur, 0);
            prev = cur;
        }
        let g = b.build_unchecked();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 100_000);
    }
}
