//! Structured and random DFG generators for tests, property tests, and
//! scalability benchmarks.
//!
//! All generators produce *well-formed* graphs (every cycle carries at
//! least one delay): forward edges may have any delay, back edges always
//! carry at least one.

use crate::{Dfg, DfgBuilder, NodeId, OpKind};
use rand::{Rng, RngExt};

/// Parameters for [`random_dfg`].
#[derive(Debug, Clone)]
pub struct RandomDfgConfig {
    /// Number of nodes (>= 1).
    pub nodes: usize,
    /// Probability of each forward (DAG) edge.
    pub forward_edge_prob: f64,
    /// Number of random back edges (each gets delay >= 1).
    pub back_edges: usize,
    /// Maximum delay on forward edges (back edges use `1..=max_delay.max(1)`).
    pub max_delay: u32,
    /// Maximum node computation time (min 1).
    pub max_time: u32,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            nodes: 10,
            forward_edge_prob: 0.3,
            back_edges: 3,
            max_delay: 2,
            max_time: 1,
        }
    }
}

fn random_op(rng: &mut impl Rng) -> OpKind {
    let c = rng.random_range(-5..=5i64);
    match rng.random_range(0..4u8) {
        0 => OpKind::Add(c),
        1 => OpKind::Sub(c),
        2 => OpKind::Mul(c),
        _ => OpKind::Mac(c),
    }
}

/// Generate a random well-formed DFG.
///
/// Nodes are ordered `0..n`; forward edges (`i -> j`, `i < j`) carry a delay
/// in `0..=max_delay`, back edges (`i -> j`, `i >= j`) a delay in
/// `1..=max(max_delay, 1)`. The zero-delay subgraph is therefore a DAG by
/// construction.
pub fn random_dfg(rng: &mut impl Rng, cfg: &RandomDfgConfig) -> Dfg {
    assert!(cfg.nodes >= 1, "need at least one node");
    let mut b = DfgBuilder::new();
    let nodes: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| {
            let t = rng.random_range(1..=cfg.max_time.max(1));
            let op = random_op(rng);
            b.node(format!("n{i}"), t, op)
        })
        .collect();
    for i in 0..cfg.nodes {
        for j in (i + 1)..cfg.nodes {
            if rng.random_bool(cfg.forward_edge_prob) {
                b.edge(nodes[i], nodes[j], rng.random_range(0..=cfg.max_delay));
            }
        }
    }
    for _ in 0..cfg.back_edges {
        let j = rng.random_range(0..cfg.nodes);
        let i = rng.random_range(j..cfg.nodes);
        b.edge(
            nodes[i],
            nodes[j],
            rng.random_range(1..=cfg.max_delay.max(1)),
        );
    }
    b.build()
        .expect("generator must produce well-formed graphs")
}

/// A directed ring `v0 -> v1 -> ... -> v_{k-1} -> v0` with the given node
/// times and per-edge delays (`delays[i]` is on the edge leaving `v_i`).
///
/// # Panics
/// Panics if the lengths disagree, `k == 0`, or all delays are zero
/// (the ring would be malformed).
pub fn ring(times: &[u32], delays: &[u32]) -> Dfg {
    assert_eq!(times.len(), delays.len(), "times/delays length mismatch");
    assert!(!times.is_empty(), "ring needs at least one node");
    assert!(
        delays.iter().any(|&d| d > 0),
        "ring must carry at least one delay"
    );
    let mut b = DfgBuilder::new();
    let nodes: Vec<NodeId> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| b.node(format!("v{i}"), t, OpKind::Add(i as i64 + 1)))
        .collect();
    let k = nodes.len();
    for i in 0..k {
        b.edge(nodes[i], nodes[(i + 1) % k], delays[i]);
    }
    b.build().expect("ring is well-formed")
}

/// A zero-delay chain `v0 -> v1 -> ... -> v_{k-1}` of unit-time nodes with a
/// delayed feedback edge from the last node to the first, making the whole
/// graph one cycle with `feedback_delay` delays.
pub fn chain_with_feedback(k: usize, feedback_delay: u32) -> Dfg {
    assert!(k >= 1);
    assert!(feedback_delay >= 1, "feedback edge must carry a delay");
    let mut b = DfgBuilder::new();
    let nodes: Vec<NodeId> = (0..k)
        .map(|i| b.node(format!("v{i}"), 1, OpKind::Add(i as i64 + 1)))
        .collect();
    for w in nodes.windows(2) {
        b.edge(w[0], w[1], 0);
    }
    b.edge(nodes[k - 1], nodes[0], feedback_delay);
    b.build().expect("chain is well-formed")
}

/// A `depth x width` feed-forward layered graph (unit times, zero delays
/// between layers) with one delayed feedback edge — a stand-in for deeply
/// pipelined filter structures.
pub fn layered(width: usize, depth: usize, feedback_delay: u32) -> Dfg {
    assert!(width >= 1 && depth >= 1);
    assert!(feedback_delay >= 1);
    let mut b = DfgBuilder::new();
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(depth);
    for l in 0..depth {
        layers.push(
            (0..width)
                .map(|i| b.node(format!("l{l}_{i}"), 1, OpKind::Add((l * width + i) as i64)))
                .collect(),
        );
    }
    for l in 1..depth {
        for i in 0..width {
            // Each node depends on its column predecessor and one neighbour.
            b.edge(layers[l - 1][i], layers[l][i], 0);
            b.edge(layers[l - 1][(i + 1) % width], layers[l][i], 0);
        }
    }
    b.edge(layers[depth - 1][0], layers[0][0], feedback_delay);
    b.build().expect("layered graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn random_graphs_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        for nodes in [1usize, 2, 5, 20, 50] {
            let cfg = RandomDfgConfig {
                nodes,
                ..Default::default()
            };
            for _ in 0..10 {
                let g = random_dfg(&mut rng, &cfg);
                assert!(g.validate().is_ok());
                assert_eq!(g.node_count(), nodes);
            }
        }
    }

    #[test]
    fn ring_structure() {
        let g = ring(&[1, 4, 5, 7, 10], &[0, 0, 1, 0, 1]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.total_delays(), 2);
        assert_eq!(algo::iteration_bound(&g), Some(crate::Ratio::new(27, 2)));
    }

    #[test]
    #[should_panic(expected = "at least one delay")]
    fn zero_delay_ring_rejected() {
        let _ = ring(&[1, 1], &[0, 0]);
    }

    #[test]
    fn chain_cycle_period_equals_length() {
        let g = chain_with_feedback(6, 2);
        assert_eq!(algo::cycle_period(&g), Some(6));
        assert_eq!(algo::iteration_bound(&g), Some(crate::Ratio::integer(3)));
    }

    #[test]
    fn layered_is_well_formed_and_deep() {
        let g = layered(4, 5, 3);
        assert_eq!(g.node_count(), 20);
        assert_eq!(algo::cycle_period(&g), Some(5));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let cfg = RandomDfgConfig::default();
        let g1 = random_dfg(&mut StdRng::seed_from_u64(42), &cfg);
        let g2 = random_dfg(&mut StdRng::seed_from_u64(42), &cfg);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for (e1, e2) in g1.edge_ids().zip(g2.edge_ids()) {
            assert_eq!(g1.edge(e1), g2.edge(e2));
        }
    }
}
