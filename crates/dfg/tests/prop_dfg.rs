//! Property tests for the DFG substrate: invariants of the analyses on
//! randomly generated well-formed graphs.

use cred_dfg::{algo, gen, Dfg, Ratio};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn graph_from(seed: u64, nodes: usize, max_delay: u32, max_time: u32) -> Dfg {
    gen::random_dfg(
        &mut StdRng::seed_from_u64(seed),
        &gen::RandomDfgConfig {
            nodes,
            forward_edge_prob: 0.35,
            back_edges: (nodes / 2).max(1),
            max_delay,
            max_time,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_validate(seed in any::<u64>(), nodes in 1..20usize) {
        let g = graph_from(seed, nodes, 3, 4);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn cycle_period_at_least_max_node_time(seed in any::<u64>(), nodes in 1..15usize) {
        let g = graph_from(seed, nodes, 3, 5);
        let phi = algo::cycle_period(&g).unwrap();
        let max_t = g.node_ids().map(|v| g.node(v).time as u64).max().unwrap();
        prop_assert!(phi >= max_t);
        prop_assert!(phi <= g.total_time());
    }

    #[test]
    fn iteration_bound_bounded_by_extremes(seed in any::<u64>(), nodes in 2..12usize) {
        let g = graph_from(seed, nodes, 3, 4);
        if let Some(b) = algo::iteration_bound(&g) {
            // Any cycle ratio lies in [min_t / total_d, total_t].
            prop_assert!(b > Ratio::integer(0));
            prop_assert!(b <= Ratio::integer(g.total_time() as i64));
        }
    }

    #[test]
    fn scc_partitions_nodes(seed in any::<u64>(), nodes in 1..25usize) {
        let g = graph_from(seed, nodes, 2, 2);
        let sccs = algo::strongly_connected_components(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &sccs {
            for v in comp {
                prop_assert!(!seen[v.index()], "node in two components");
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn topo_order_respects_zero_delay_edges(seed in any::<u64>(), nodes in 1..20usize) {
        let g = graph_from(seed, nodes, 3, 2);
        let order = algo::zero_delay_topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for e in g.edge_ids() {
            let ed = g.edge(e);
            if ed.delay == 0 {
                prop_assert!(pos[ed.src.index()] < pos[ed.dst.index()]);
            }
        }
    }

    #[test]
    fn wd_diagonal_and_symmetric_sanity(seed in any::<u64>(), nodes in 1..10usize) {
        let g = graph_from(seed, nodes, 2, 3);
        let wd = algo::WdMatrices::compute(&g);
        for v in 0..g.node_count() {
            prop_assert_eq!(wd.w(v, v), Some(0));
            prop_assert_eq!(wd.d(v, v), Some(g.node(cred_dfg::NodeId(v as u32)).time as i64));
        }
        // W is a shortest-path metric: triangle inequality.
        let n = g.node_count();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if let (Some(ab), Some(bc), Some(ac)) = (wd.w(a, b), wd.w(b, c), wd.w(a, c)) {
                        prop_assert!(ac <= ab + bc);
                    }
                }
            }
        }
    }

    #[test]
    fn reference_execution_deterministic(seed in any::<u64>(), nodes in 1..10usize, n in 1..30usize) {
        let g = graph_from(seed, nodes, 2, 1);
        let a = g.reference_execution(n);
        let b = g.reference_execution(n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reference_execution_prefix_stable(seed in any::<u64>(), nodes in 1..8usize, n in 2..25usize) {
        // Computing more iterations never changes earlier ones.
        let g = graph_from(seed, nodes, 2, 1);
        let long = g.reference_execution(n);
        let short = g.reference_execution(n - 1);
        for v in 0..g.node_count() {
            prop_assert_eq!(&long[v][..n - 1], &short[v][..]);
        }
    }
}
