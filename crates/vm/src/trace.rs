//! Execution tracing: reproduce Figure 3(c)-style tables showing, per loop
//! iteration, which guarded instructions fired and the conditional-register
//! values they saw.

use cred_codegen::{Inst, LoopProgram};
use std::collections::BTreeMap;

/// One guarded-compute event inside the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Loop induction variable value.
    pub i: i64,
    /// Destination rendered as `Name[index]`.
    pub dest: String,
    /// Guard register value seen (minus its static offset), if guarded.
    pub guard_value: Option<i64>,
    /// Whether the instruction executed (unguarded instructions always do).
    pub enabled: bool,
}

impl TraceEvent {
    /// Figure 3(c) cell format: `(p)Name[idx]`, e.g. `(2)B[-1]`.
    pub fn cell(&self) -> String {
        match self.guard_value {
            Some(p) => format!("({p}){}", self.dest),
            None => self.dest.clone(),
        }
    }
}

/// Dry-run the loop portion of `p` (no memory, registers only) and report
/// every compute instruction's guard state per iteration. This regenerates
/// the execution-sequence tables of Figures 3(c) and 7(c).
pub fn trace_loop(p: &LoopProgram) -> Vec<TraceEvent> {
    let n = p.n as i64;
    let mut regs: BTreeMap<u32, (i64, i64)> = BTreeMap::new();
    for inst in &p.pre {
        if let Inst::Setup { reg, init, bound } = inst {
            regs.insert(reg.0, (*init, *bound));
        }
    }
    let mut events = Vec::new();
    let Some(l) = &p.body else {
        return events;
    };
    let mut i = l.lo;
    while i <= l.hi {
        for inst in &l.body {
            match inst {
                Inst::Setup { reg, init, bound } => {
                    regs.insert(reg.0, (*init, *bound));
                }
                Inst::Dec { reg, by } => {
                    if let Some(e) = regs.get_mut(&reg.0) {
                        e.0 -= by;
                    }
                }
                Inst::Compute { guard, dest, .. } => {
                    let dest_s = format!(
                        "{}[{}]",
                        p.arrays[dest.array as usize],
                        dest.index.eval(i, n)
                    );
                    match guard {
                        None => events.push(TraceEvent {
                            i,
                            dest: dest_s,
                            guard_value: None,
                            enabled: true,
                        }),
                        Some(g) => {
                            let (value, bound) =
                                *regs.get(&g.reg.0).unwrap_or(&(i64::MIN, i64::MIN));
                            let eff = value - g.offset;
                            events.push(TraceEvent {
                                i,
                                dest: dest_s,
                                guard_value: Some(eff),
                                enabled: bound < eff && eff <= 0,
                            });
                        }
                    }
                }
            }
        }
        if let Some(k) = l.auto_dec {
            for e in regs.values_mut() {
                e.0 -= k;
            }
        }
        i += l.step;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_codegen::cred::cred_pipelined;
    use cred_dfg::{DfgBuilder, OpKind};
    use cred_retime::Retiming;

    fn figure3() -> (cred_dfg::Dfg, Retiming) {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(9));
        let bb = b.node("B", 1, OpKind::Mul(5));
        let c = b.node("C", 1, OpKind::Add(0));
        let d = b.node("D", 1, OpKind::Mul(0));
        let e = b.node("E", 1, OpKind::Add(30));
        b.edge(e, a, 4);
        b.edge(a, bb, 0);
        b.edge(a, c, 0);
        b.edge(bb, c, 2);
        b.edge(a, d, 0);
        b.edge(c, d, 0);
        b.edge(d, e, 0);
        (
            b.build().unwrap(),
            Retiming::from_values(vec![3, 2, 2, 1, 0]),
        )
    }

    #[test]
    fn figure3c_first_iteration() {
        // At i = -2 (first iteration), the paper's table shows guard
        // values (0)A[1], (1)B[0], (1)C[0], (2)D[-1], (3)E[-2]: only A
        // enabled.
        let (g, r) = figure3();
        let p = cred_pipelined(&g, &r, 10);
        let ev: Vec<_> = trace_loop(&p).into_iter().filter(|e| e.i == -2).collect();
        let cells: Vec<String> = ev.iter().map(TraceEvent::cell).collect();
        assert_eq!(
            cells,
            ["(0)A[1]", "(1)B[0]", "(1)C[0]", "(2)D[-1]", "(3)E[-2]"]
        );
        let enabled: Vec<bool> = ev.iter().map(|e| e.enabled).collect();
        assert_eq!(enabled, [true, false, false, false, false]);
    }

    #[test]
    fn figure3c_steady_state_all_enabled() {
        let (g, r) = figure3();
        let p = cred_pipelined(&g, &r, 10);
        let ev: Vec<_> = trace_loop(&p).into_iter().filter(|e| e.i == 4).collect();
        assert!(ev.iter().all(|e| e.enabled));
        // Steady-state guard values: (-4)A, (-3)B, (-3)C, (-2)D, (-1)E as
        // in the middle row of Figure 3(c) (shifted by iteration).
        let vals: Vec<i64> = ev.iter().map(|e| e.guard_value.unwrap()).collect();
        assert_eq!(vals, [-6, -5, -5, -4, -3]);
    }

    #[test]
    fn figure3c_last_iteration_only_e() {
        let (g, r) = figure3();
        let n = 10u64;
        let p = cred_pipelined(&g, &r, n);
        let ev: Vec<_> = trace_loop(&p)
            .into_iter()
            .filter(|e| e.i == n as i64)
            .collect();
        let enabled: Vec<(String, bool)> = ev.iter().map(|e| (e.dest.clone(), e.enabled)).collect();
        assert_eq!(
            enabled,
            [
                ("A[13]".to_string(), false),
                ("B[12]".to_string(), false),
                ("C[12]".to_string(), false),
                ("D[11]".to_string(), false),
                ("E[10]".to_string(), true),
            ]
        );
    }

    #[test]
    fn traced_counts_match_static_schedule_lengths() {
        // Retiming stretches the loop by M_r guard-disabled iterations but
        // never changes the per-iteration schedule: the traced instruction
        // counts of the original (zero-retimed) and retimed programs must
        // both equal (static body length) x (loop trip count), and exactly
        // n copies of every node execute in each.
        let (g, r) = figure3();
        let n = 10u64;
        let nv = g.node_count() as u64;
        let zero = Retiming::from_values(vec![0; g.node_count()]);
        let orig = cred_pipelined(&g, &zero, n);
        let retimed = cred_pipelined(&g, &r, n);
        let body_len = |p: &LoopProgram| {
            p.body
                .as_ref()
                .unwrap()
                .body
                .iter()
                .filter(|i| matches!(i, Inst::Compute { .. }))
                .count() as u64
        };
        let trip_count = |p: &LoopProgram| {
            let l = p.body.as_ref().unwrap();
            ((l.hi - l.lo) / l.step + 1) as u64
        };
        assert_eq!(body_len(&orig), nv);
        assert_eq!(body_len(&retimed), nv);
        assert_eq!(trip_count(&orig), n);
        assert_eq!(trip_count(&retimed), n + r.max_value() as u64);
        for p in [&orig, &retimed] {
            let ev = trace_loop(p);
            assert_eq!(ev.len() as u64, body_len(p) * trip_count(p));
            let mut enabled: BTreeMap<String, u64> = BTreeMap::new();
            for e in &ev {
                if e.enabled {
                    let name = e.dest.split('[').next().unwrap().to_string();
                    *enabled.entry(name).or_insert(0) += 1;
                }
            }
            assert_eq!(enabled.len() as u64, nv);
            assert!(enabled.values().all(|&c| c == n));
        }
    }

    #[test]
    fn total_enabled_counts_match_n_per_node() {
        let (g, r) = figure3();
        let n = 10u64;
        let p = cred_pipelined(&g, &r, n);
        let mut per_array: BTreeMap<String, u64> = BTreeMap::new();
        for e in trace_loop(&p) {
            if e.enabled {
                let name = e.dest.split('[').next().unwrap().to_string();
                *per_array.entry(name).or_insert(0) += 1;
            }
        }
        for (_, count) in per_array {
            assert_eq!(count, n);
        }
    }
}
