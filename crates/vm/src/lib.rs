//! # cred-vm — executable semantics and equivalence checking
//!
//! An interpreter for `cred-codegen`'s [`LoopProgram`]s with the paper's
//! conditional-register semantics: a register is a pair `(value, bound)`;
//! a guarded instruction executes iff `bound < value - offset <= 0`
//! (the hardware compares against `-LC`, §3.2).
//!
//! The VM is deliberately strict — it is the checker that turns the
//! paper's correctness theorems into executable tests:
//!
//! * every array element `v[1..=n]` must be written **exactly once**
//!   (Theorems 4.1/4.2/4.6: each node executes exactly `n` times);
//! * writes outside `1..=n` and double writes are errors (a guard that
//!   fails to mask a prologue/epilogue overrun is caught immediately);
//! * reads at indices `<= 0` return the initial value `0` (the paper's
//!   `E[-3]`), reads beyond `n` or of not-yet-written elements are errors
//!   (an instruction reordered across a dependence is caught);
//! * [`check_against_reference`] then compares every element against the
//!   direct DFG recurrence ([`cred_dfg::Dfg::reference_execution`]).
//!
//! Two executors share these semantics. [`execute`] tree-walks the
//! program directly and is the *reference* implementation; [`compile`]
//! lowers the program once into a flat [`Tape`] (operands preresolved,
//! CRED guards precomputed into predicate bitsets) that
//! [`execute_tape`] runs an order of magnitude faster. The two are held
//! equivalent by [`cross_check_executors`] and the differential
//! proptests; the verification oracle runs the tape path by default.
//!
//! [`LoopProgram`]: cred_codegen::LoopProgram

mod compile;
mod machine;
mod trace;

pub use compile::{
    compile, cross_check_executors, diff_against_reference_tape, execute_tape, Tape,
};
pub use machine::{
    check_against_reference, diff_against_reference, execute, value_diff, DiffReport, ExecError,
    ExecResult, MismatchCell, Site,
};
pub use trace::{trace_loop, TraceEvent};
