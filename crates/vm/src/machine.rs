//! The interpreter and the reference-equivalence checker.

use cred_codegen::{Guard, Inst, LoopProgram};
use cred_dfg::Dfg;
use std::collections::BTreeMap;
use std::fmt;

/// Where a fault occurred: the instruction that was executing (identified
/// by its destination node, or the register name for `Dec` faults) and the
/// loop induction value at that moment (`0` in pre/post straight-line
/// code). Attached to every runtime [`ExecError`] so fuzzer and shrinker
/// output pinpoints the failing instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Node (destination array) of the executing instruction; for a
    /// register fault, the register's display name (`p1`).
    pub node: String,
    /// Loop induction variable value (`0` outside the loop).
    pub iteration: i64,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}, i = {}", self.node, self.iteration)
    }
}

/// Execution failure. Every variant indicates a *generator bug* (or a
/// deliberately corrupted program in tests), never a data-dependent
/// condition. Runtime faults carry the `(node, iteration, index)` of the
/// offending access via [`Site`]; post-run faults (`Incomplete`,
/// `Mismatch`) identify the element itself, whose index *is* the
/// iteration of the original recurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A write landed outside `1..=n` — a guard failed to mask an overrun.
    OutOfRangeWrite {
        /// Array (original node) name.
        array: String,
        /// Offending index.
        index: i64,
        /// Executing instruction and iteration.
        at: Site,
    },
    /// An element was written twice — an instance was emitted twice.
    DoubleWrite {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Executing instruction and iteration.
        at: Site,
    },
    /// An in-range element was read before being written — an ordering or
    /// window bug.
    UseBeforeDef {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Executing instruction and iteration.
        at: Site,
    },
    /// A read beyond `n`.
    OutOfRangeRead {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Executing instruction and iteration.
        at: Site,
    },
    /// A guard or decrement referenced a register never `setup`.
    UnboundRegister {
        /// Zero-based register id (displays as `p{reg+1}`).
        reg: u32,
        /// Executing instruction and iteration.
        at: Site,
    },
    /// The loop structure itself is malformed (non-positive step).
    InvalidLoop(&'static str),
    /// After execution some element of `1..=n` was never written.
    Incomplete {
        /// Array name.
        array: String,
        /// First missing index (the never-computed iteration).
        index: i64,
    },
    /// Result mismatch against the DFG reference execution.
    Mismatch {
        /// Array name.
        array: String,
        /// Iteration index.
        index: i64,
        /// Value the program computed.
        got: i64,
        /// Value the recurrence defines.
        expected: i64,
    },
    /// A fail point injected a fault (chaos testing only; never occurs in
    /// a build without the `failpoints` feature).
    Injected {
        /// The fail-point site that fired.
        site: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfRangeWrite { array, index, at } => {
                write!(f, "out-of-range write {array}[{index}] ({at})")
            }
            ExecError::DoubleWrite { array, index, at } => {
                write!(f, "double write {array}[{index}] ({at})")
            }
            ExecError::UseBeforeDef { array, index, at } => {
                write!(f, "use before def {array}[{index}] ({at})")
            }
            ExecError::OutOfRangeRead { array, index, at } => {
                write!(f, "out-of-range read {array}[{index}] ({at})")
            }
            ExecError::UnboundRegister { reg, at } => {
                write!(f, "register p{} never setup ({at})", reg + 1)
            }
            ExecError::InvalidLoop(why) => write!(f, "malformed loop: {why}"),
            ExecError::Incomplete { array, index } => {
                write!(f, "{array}[{index}] never computed")
            }
            ExecError::Mismatch {
                array,
                index,
                got,
                expected,
            } => write!(f, "{array}[{index}] = {got}, reference says {expected}"),
            ExecError::Injected { site } => write!(f, "fault injected at {site}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a successful execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Final array contents: `arrays[v][i-1]` is `v`'s value at iteration
    /// `i` (`1..=n`).
    pub arrays: Vec<Vec<i64>>,
    /// Dynamically executed compute instructions (guard-enabled only).
    pub computes_executed: u64,
    /// Dynamically executed (disabled) compute instructions.
    pub computes_nullified: u64,
}

/// One differing element found by [`diff_against_reference`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchCell {
    /// Array name.
    pub array: String,
    /// Iteration index (`1..=n`).
    pub index: i64,
    /// Value the program computed.
    pub got: i64,
    /// Value the recurrence defines.
    pub expected: i64,
}

impl fmt::Display for MismatchCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] = {}, reference says {}",
            self.array, self.index, self.got, self.expected
        )
    }
}

/// Structured failure report from [`diff_against_reference`]: either the
/// program faulted mid-run, or it completed and some cells differ from the
/// reference recurrence. Unlike the single-error
/// [`check_against_reference`], a value diff lists *every* differing cell
/// (display is capped), so an oracle failure shows the full damage extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffReport {
    /// Execution itself faulted.
    Exec(ExecError),
    /// Execution completed but `cells` differ from the reference.
    Values {
        /// All differing cells, in array-major order.
        cells: Vec<MismatchCell>,
    },
}

impl DiffReport {
    /// Number of differing cells (`1` for an execution fault).
    pub fn mismatch_count(&self) -> usize {
        match self {
            DiffReport::Exec(_) => 1,
            DiffReport::Values { cells } => cells.len(),
        }
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffReport::Exec(e) => write!(f, "execution fault: {e}"),
            DiffReport::Values { cells } => {
                write!(f, "{} cell(s) differ from reference", cells.len())?;
                for c in cells.iter().take(8) {
                    write!(f, "; {c}")?;
                }
                if cells.len() > 8 {
                    write!(f, "; ...")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DiffReport {}

struct Machine<'p> {
    p: &'p LoopProgram,
    n: i64,
    cells: Vec<Vec<Option<i64>>>,
    regs: BTreeMap<u32, (i64, i64)>, // id -> (value, bound)
    executed: u64,
    nullified: u64,
}

impl<'p> Machine<'p> {
    fn new(p: &'p LoopProgram) -> Self {
        Machine {
            p,
            n: p.n as i64,
            cells: vec![vec![None; p.n as usize]; p.arrays.len()],
            regs: BTreeMap::new(),
            executed: 0,
            nullified: 0,
        }
    }

    fn array_name(&self, a: u32) -> String {
        self.p.arrays[a as usize].clone()
    }

    fn site(&self, node: u32, i: i64) -> Site {
        Site {
            node: self.array_name(node),
            iteration: i,
        }
    }

    fn guard_enabled(&self, g: &Guard, node: u32, i: i64) -> Result<bool, ExecError> {
        let &(value, bound) =
            self.regs
                .get(&g.reg.0)
                .ok_or_else(|| ExecError::UnboundRegister {
                    reg: g.reg.0,
                    at: self.site(node, i),
                })?;
        let eff = value - g.offset;
        Ok(bound < eff && eff <= 0)
    }

    fn read(&self, a: u32, idx: i64, node: u32, i: i64) -> Result<i64, ExecError> {
        if idx <= 0 {
            return Ok(0); // initial conditions, e.g. E[-3]
        }
        if idx > self.n {
            return Err(ExecError::OutOfRangeRead {
                array: self.array_name(a),
                index: idx,
                at: self.site(node, i),
            });
        }
        self.cells[a as usize][(idx - 1) as usize].ok_or_else(|| ExecError::UseBeforeDef {
            array: self.array_name(a),
            index: idx,
            at: self.site(node, i),
        })
    }

    fn write(&mut self, a: u32, idx: i64, val: i64, i: i64) -> Result<(), ExecError> {
        if !(1..=self.n).contains(&idx) {
            return Err(ExecError::OutOfRangeWrite {
                array: self.array_name(a),
                index: idx,
                at: self.site(a, i),
            });
        }
        let cell = &mut self.cells[a as usize][(idx - 1) as usize];
        if cell.is_some() {
            return Err(ExecError::DoubleWrite {
                array: self.array_name(a),
                index: idx,
                at: self.site(a, i),
            });
        }
        *cell = Some(val);
        Ok(())
    }

    fn step(&mut self, inst: &Inst, i: i64) -> Result<(), ExecError> {
        match inst {
            Inst::Setup { reg, init, bound } => {
                self.regs.insert(reg.0, (*init, *bound));
                Ok(())
            }
            Inst::Dec { reg, by } => {
                let entry =
                    self.regs
                        .get_mut(&reg.0)
                        .ok_or_else(|| ExecError::UnboundRegister {
                            reg: reg.0,
                            at: Site {
                                node: format!("p{}", reg.0 + 1),
                                iteration: i,
                            },
                        })?;
                entry.0 -= by;
                Ok(())
            }
            Inst::Compute {
                guard,
                dest,
                op,
                srcs,
            } => {
                if let Some(g) = guard {
                    if !self.guard_enabled(g, dest.array, i)? {
                        self.nullified += 1;
                        return Ok(());
                    }
                }
                let dest_idx = dest.index.eval(i, self.n);
                let mut inputs = Vec::with_capacity(srcs.len());
                for s in srcs {
                    inputs.push(self.read(s.array, s.index.eval(i, self.n), dest.array, i)?);
                }
                let val = op.eval(&inputs, dest_idx);
                self.write(dest.array, dest_idx, val, i)?;
                self.executed += 1;
                Ok(())
            }
        }
    }
}

/// Execute `p` and return the final array contents.
///
/// Fails (see [`ExecError`]) on any out-of-range or duplicate write,
/// use-before-def read, unbound register, or — after the run — any element
/// of `1..=n` left uncomputed.
pub fn execute(p: &LoopProgram) -> Result<ExecResult, ExecError> {
    let mut m = Machine::new(p);
    for inst in &p.pre {
        m.step(inst, 0)?;
    }
    if let Some(l) = &p.body {
        if l.step < 1 {
            return Err(ExecError::InvalidLoop("step must be positive"));
        }
        let mut i = l.lo;
        while i <= l.hi {
            cred_resilience::failpoint::hit(cred_resilience::failpoint::sites::VM_EXEC)
                .map_err(|e| ExecError::Injected { site: e.site })?;
            for inst in &l.body {
                m.step(inst, i)?;
            }
            if let Some(k) = l.auto_dec {
                // IA-64-style rotation: the loop branch decrements every
                // conditional register (no explicit Dec instructions).
                for entry in m.regs.values_mut() {
                    entry.0 -= k;
                }
            }
            i += l.step;
        }
    }
    for inst in &p.post {
        m.step(inst, 0)?;
    }
    // Completeness: every element written exactly once (double writes were
    // already rejected).
    for (a, col) in m.cells.iter().enumerate() {
        if let Some(missing) = col.iter().position(Option::is_none) {
            return Err(ExecError::Incomplete {
                array: p.arrays[a].clone(),
                index: missing as i64 + 1,
            });
        }
    }
    Ok(ExecResult {
        arrays: m
            .cells
            .into_iter()
            .map(|col| col.into_iter().map(Option::unwrap).collect())
            .collect(),
        computes_executed: m.executed,
        computes_nullified: m.nullified,
    })
}

/// Compare executed array contents against a reference table cell by
/// cell, collecting every differing element in array-major order. Shared
/// by the tree-walker's [`diff_against_reference`] and the tape
/// executor's [`diff_against_reference_tape`](crate::diff_against_reference_tape),
/// so both paths render identical [`DiffReport::Values`] payloads; public
/// so callers that already hold a reference table (the verification
/// oracle computes one per case, not one per program) can diff without
/// re-deriving it.
pub fn value_diff(
    g: &Dfg,
    n: usize,
    got: &[Vec<i64>],
    reference: &[Vec<i64>],
) -> Vec<MismatchCell> {
    let mut cells = Vec::new();
    for v in g.node_ids() {
        #[allow(clippy::needless_range_loop)] // two parallel tables, index is clearer
        for i in 0..n {
            let got = got[v.index()][i];
            let expected = reference[v.index()][i];
            if got != expected {
                cells.push(MismatchCell {
                    array: g.node(v).name.clone(),
                    index: i as i64 + 1,
                    got,
                    expected,
                });
            }
        }
    }
    cells
}

/// Execute `p` and compare every element with the direct recurrence
/// evaluation of `g`, reporting *all* differing cells — the structured
/// variant of [`check_against_reference`] used by the differential
/// verification oracle (`cred-verify`).
pub fn diff_against_reference(g: &Dfg, p: &LoopProgram) -> Result<ExecResult, DiffReport> {
    assert_eq!(
        g.node_count(),
        p.arrays.len(),
        "program must cover exactly the DFG's value streams"
    );
    let res = execute(p).map_err(DiffReport::Exec)?;
    let reference = g.reference_execution(p.n as usize);
    let cells = value_diff(g, p.n as usize, &res.arrays, &reference);
    if !cells.is_empty() {
        return Err(DiffReport::Values { cells });
    }
    debug_assert_eq!(
        res.computes_executed,
        g.node_count() as u64 * p.n,
        "every node must execute exactly n times"
    );
    Ok(res)
}

/// Execute `p` and compare every element with the direct recurrence
/// evaluation of `g` — the paper's correctness claims, checked.
///
/// Stops at the *first* differing cell; use [`diff_against_reference`] for
/// the full structured report. The per-node execution count (`n` fires per
/// node, Theorems 4.1/4.2/4.6) is implied by [`execute`]'s completeness
/// and double-write checks.
pub fn check_against_reference(g: &Dfg, p: &LoopProgram) -> Result<ExecResult, ExecError> {
    diff_against_reference(g, p).map_err(|d| match d {
        DiffReport::Exec(e) => e,
        DiffReport::Values { cells } => {
            let c = &cells[0];
            ExecError::Mismatch {
                array: c.array.clone(),
                index: c.index,
                got: c.got,
                expected: c.expected,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_codegen::ir::{Index, LoopSpec, PredId, Ref};
    use cred_codegen::pipeline::original_program;
    use cred_dfg::{DfgBuilder, OpKind};

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let c = b.node("B", 1, OpKind::Mul(0));
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn original_program_matches_reference() {
        let g = tiny();
        for n in [0u64, 1, 2, 5, 17] {
            let p = original_program(&g, n);
            let res = check_against_reference(&g, &p).unwrap();
            assert_eq!(res.computes_executed, 2 * n);
            assert_eq!(res.computes_nullified, 0);
        }
    }

    #[test]
    fn double_write_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        // Duplicate the whole body: every element written twice.
        let body = p.body.as_mut().unwrap();
        let dup = body.body.clone();
        body.body.extend(dup);
        let err = execute(&p).unwrap_err();
        match err {
            ExecError::DoubleWrite { array, index, at } => {
                // The duplicated A-instance trips first, on iteration 1,
                // and the fault site names the instruction that ran.
                assert_eq!(array, "A");
                assert_eq!(index, 1);
                assert_eq!(
                    at,
                    Site {
                        node: "A".into(),
                        iteration: 1
                    }
                );
            }
            other => panic!("expected DoubleWrite, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_detected() {
        let g = tiny();
        // n = 2: A never reads an in-range B element, so dropping B's
        // instance leaves B[1..=2] missing without tripping use-before-def.
        let mut p = original_program(&g, 2);
        p.body.as_mut().unwrap().body.pop(); // drop B's instance
        assert!(matches!(execute(&p), Err(ExecError::Incomplete { .. })));
    }

    #[test]
    fn out_of_range_write_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().hi = 4; // run one iteration too many
        match execute(&p).unwrap_err() {
            ExecError::OutOfRangeWrite { array, index, at } => {
                assert_eq!(array, "A");
                assert_eq!(index, 4);
                assert_eq!(at.iteration, 4);
            }
            other => panic!("expected OutOfRangeWrite, got {other:?}"),
        }
    }

    #[test]
    fn use_before_def_detected() {
        // B reads A zero-delay but is emitted first.
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.reverse();
        match execute(&p).unwrap_err() {
            ExecError::UseBeforeDef { array, index, at } => {
                // B's instance reads A[1] before A's instance wrote it.
                assert_eq!(array, "A");
                assert_eq!(index, 1);
                assert_eq!(
                    at,
                    Site {
                        node: "B".into(),
                        iteration: 1
                    }
                );
            }
            other => panic!("expected UseBeforeDef, got {other:?}"),
        }
    }

    #[test]
    fn non_positive_step_rejected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().step = 0;
        assert_eq!(
            execute(&p).unwrap_err(),
            ExecError::InvalidLoop("step must be positive")
        );
        p.body.as_mut().unwrap().step = -1;
        assert!(matches!(execute(&p), Err(ExecError::InvalidLoop(_))));
    }

    #[test]
    fn unbound_register_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.push(Inst::Dec {
            reg: PredId(9),
            by: 1,
        });
        assert_eq!(
            execute(&p).unwrap_err(),
            ExecError::UnboundRegister {
                reg: 9,
                at: Site {
                    node: "p10".into(),
                    iteration: 1
                }
            }
        );
    }

    #[test]
    fn guard_window_semantics() {
        // A single guarded instruction writing A[i]; register init 1,
        // bound -2, n = 5: enabled iff -2 < p <= 0 with p = 1 - (i - 1)
        // = 2 - i, i.e. i in {2, 3}. The other elements are filled by a
        // plain instruction guarded to the complement via a second window.
        let mut b = DfgBuilder::new();
        b.node("A", 1, OpKind::Input(0));
        let _ = b.build().unwrap();
        let dest = Ref {
            array: 0,
            index: Index::i_plus(0),
        };
        let guarded = Inst::Compute {
            guard: Some(Guard {
                reg: PredId(0),
                offset: 0,
            }),
            dest,
            op: OpKind::Input(0),
            srcs: vec![],
        };
        let p = LoopProgram {
            name: "t".into(),
            n: 5,
            arrays: vec!["A".into()],
            pre: vec![Inst::Setup {
                reg: PredId(0),
                init: 1,
                bound: -2,
            }],
            body: Some(LoopSpec {
                lo: 1,
                hi: 5,
                step: 1,
                body: vec![
                    guarded,
                    Inst::Dec {
                        reg: PredId(0),
                        by: 1,
                    },
                ],
                auto_dec: None,
            }),
            post: vec![],
        };
        // Only A[2], A[3] get written -> Incomplete at index 1.
        let err = execute(&p).unwrap_err();
        assert_eq!(
            err,
            ExecError::Incomplete {
                array: "A".into(),
                index: 1
            }
        );
    }

    #[test]
    fn guard_offset_shifts_window() {
        // Same as above, but a positive offset (eff = value - offset)
        // shifts the enabled window EARLIER: offset 1 gives i in {1, 2}.
        let mut b = DfgBuilder::new();
        b.node("A", 1, OpKind::Input(0));
        let _ = b.build().unwrap();
        let mk = |offset| Inst::Compute {
            guard: Some(Guard {
                reg: PredId(0),
                offset,
            }),
            dest: Ref {
                array: 0,
                index: Index::i_plus(0),
            },
            op: OpKind::Input(0),
            srcs: vec![],
        };
        let run = |offset| {
            let p = LoopProgram {
                name: "t".into(),
                n: 5,
                arrays: vec!["A".into()],
                pre: vec![Inst::Setup {
                    reg: PredId(0),
                    init: 1,
                    bound: -2,
                }],
                body: Some(LoopSpec {
                    lo: 1,
                    hi: 5,
                    step: 1,
                    body: vec![
                        mk(offset),
                        Inst::Dec {
                            reg: PredId(0),
                            by: 1,
                        },
                    ],
                    auto_dec: None,
                }),
                post: vec![],
            };
            execute(&p).unwrap_err()
        };
        // offset 0 gives window {2,3}; offset 1 (eff = p - 1) shifts it to
        // {1,2}, so the first missing element becomes 3.
        assert_eq!(
            run(1),
            ExecError::Incomplete {
                array: "A".into(),
                index: 3
            }
        );
    }

    #[test]
    fn reads_before_iteration_one_are_zero() {
        // A[i] = A[i-2] + 1 with n = 4: A = [1, 1, 2, 2].
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        b.edge(a, a, 2);
        let g = b.build().unwrap();
        let p = original_program(&g, 4);
        let res = execute(&p).unwrap();
        assert_eq!(res.arrays[0], vec![1, 1, 2, 2]);
        check_against_reference(&g, &p).unwrap();
    }

    #[test]
    fn mismatch_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        // Corrupt the constant of the first instruction.
        if let Some(l) = &mut p.body {
            if let Inst::Compute { op, .. } = &mut l.body[0] {
                *op = OpKind::Add(2);
            }
        }
        assert!(matches!(
            check_against_reference(&g, &p),
            Err(ExecError::Mismatch { .. })
        ));
        // The structured diff lists every differing cell of both arrays.
        match diff_against_reference(&g, &p) {
            Err(DiffReport::Values { cells }) => {
                assert!(!cells.is_empty());
                assert!(cells.iter().all(|c| c.got != c.expected));
            }
            other => panic!("expected Values diff, got {other:?}"),
        }
    }

    #[test]
    fn error_display_strings() {
        let at = Site {
            node: "A".into(),
            iteration: 5,
        };
        let e = ExecError::OutOfRangeWrite {
            array: "A".into(),
            index: 12,
            at: at.clone(),
        };
        assert_eq!(e.to_string(), "out-of-range write A[12] (at A, i = 5)");
        assert_eq!(
            ExecError::UnboundRegister { reg: 0, at }.to_string(),
            "register p1 never setup (at A, i = 5)"
        );
        let d = DiffReport::Values {
            cells: vec![MismatchCell {
                array: "B".into(),
                index: 2,
                got: 7,
                expected: 9,
            }],
        };
        assert_eq!(
            d.to_string(),
            "1 cell(s) differ from reference; B[2] = 7, reference says 9"
        );
    }
}
