//! The interpreter and the reference-equivalence checker.

use cred_codegen::{Guard, Inst, LoopProgram};
use cred_dfg::Dfg;
use std::collections::BTreeMap;
use std::fmt;

/// Execution failure. Every variant indicates a *generator bug* (or a
/// deliberately corrupted program in tests), never a data-dependent
/// condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A write landed outside `1..=n` — a guard failed to mask an overrun.
    OutOfRangeWrite {
        /// Array (original node) name.
        array: String,
        /// Offending index.
        index: i64,
    },
    /// An element was written twice — an instance was emitted twice.
    DoubleWrite {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
    },
    /// An in-range element was read before being written — an ordering or
    /// window bug.
    UseBeforeDef {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
    },
    /// A read beyond `n`.
    OutOfRangeRead {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
    },
    /// A guard or decrement referenced a register never `setup`.
    UnboundRegister(u32),
    /// The loop structure itself is malformed (non-positive step).
    InvalidLoop(&'static str),
    /// After execution some element of `1..=n` was never written.
    Incomplete {
        /// Array name.
        array: String,
        /// First missing index.
        index: i64,
    },
    /// Result mismatch against the DFG reference execution.
    Mismatch {
        /// Array name.
        array: String,
        /// Iteration index.
        index: i64,
        /// Value the program computed.
        got: i64,
        /// Value the recurrence defines.
        expected: i64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfRangeWrite { array, index } => {
                write!(f, "out-of-range write {array}[{index}]")
            }
            ExecError::DoubleWrite { array, index } => {
                write!(f, "double write {array}[{index}]")
            }
            ExecError::UseBeforeDef { array, index } => {
                write!(f, "use before def {array}[{index}]")
            }
            ExecError::OutOfRangeRead { array, index } => {
                write!(f, "out-of-range read {array}[{index}]")
            }
            ExecError::UnboundRegister(r) => write!(f, "register p{} never setup", r + 1),
            ExecError::InvalidLoop(why) => write!(f, "malformed loop: {why}"),
            ExecError::Incomplete { array, index } => {
                write!(f, "{array}[{index}] never computed")
            }
            ExecError::Mismatch {
                array,
                index,
                got,
                expected,
            } => write!(f, "{array}[{index}] = {got}, reference says {expected}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a successful execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Final array contents: `arrays[v][i-1]` is `v`'s value at iteration
    /// `i` (`1..=n`).
    pub arrays: Vec<Vec<i64>>,
    /// Dynamically executed compute instructions (guard-enabled only).
    pub computes_executed: u64,
    /// Dynamically executed (disabled) compute instructions.
    pub computes_nullified: u64,
}

struct Machine<'p> {
    p: &'p LoopProgram,
    n: i64,
    cells: Vec<Vec<Option<i64>>>,
    regs: BTreeMap<u32, (i64, i64)>, // id -> (value, bound)
    executed: u64,
    nullified: u64,
}

impl<'p> Machine<'p> {
    fn new(p: &'p LoopProgram) -> Self {
        Machine {
            p,
            n: p.n as i64,
            cells: vec![vec![None; p.n as usize]; p.arrays.len()],
            regs: BTreeMap::new(),
            executed: 0,
            nullified: 0,
        }
    }

    fn array_name(&self, a: u32) -> String {
        self.p.arrays[a as usize].clone()
    }

    fn guard_enabled(&self, g: &Guard) -> Result<bool, ExecError> {
        let &(value, bound) = self
            .regs
            .get(&g.reg.0)
            .ok_or(ExecError::UnboundRegister(g.reg.0))?;
        let eff = value - g.offset;
        Ok(bound < eff && eff <= 0)
    }

    fn read(&self, a: u32, idx: i64) -> Result<i64, ExecError> {
        if idx <= 0 {
            return Ok(0); // initial conditions, e.g. E[-3]
        }
        if idx > self.n {
            return Err(ExecError::OutOfRangeRead {
                array: self.array_name(a),
                index: idx,
            });
        }
        self.cells[a as usize][(idx - 1) as usize].ok_or_else(|| ExecError::UseBeforeDef {
            array: self.array_name(a),
            index: idx,
        })
    }

    fn write(&mut self, a: u32, idx: i64, val: i64) -> Result<(), ExecError> {
        if !(1..=self.n).contains(&idx) {
            return Err(ExecError::OutOfRangeWrite {
                array: self.array_name(a),
                index: idx,
            });
        }
        let cell = &mut self.cells[a as usize][(idx - 1) as usize];
        if cell.is_some() {
            return Err(ExecError::DoubleWrite {
                array: self.array_name(a),
                index: idx,
            });
        }
        *cell = Some(val);
        Ok(())
    }

    fn step(&mut self, inst: &Inst, i: i64) -> Result<(), ExecError> {
        match inst {
            Inst::Setup { reg, init, bound } => {
                self.regs.insert(reg.0, (*init, *bound));
                Ok(())
            }
            Inst::Dec { reg, by } => {
                let entry = self
                    .regs
                    .get_mut(&reg.0)
                    .ok_or(ExecError::UnboundRegister(reg.0))?;
                entry.0 -= by;
                Ok(())
            }
            Inst::Compute {
                guard,
                dest,
                op,
                srcs,
            } => {
                if let Some(g) = guard {
                    if !self.guard_enabled(g)? {
                        self.nullified += 1;
                        return Ok(());
                    }
                }
                let dest_idx = dest.index.eval(i, self.n);
                let mut inputs = Vec::with_capacity(srcs.len());
                for s in srcs {
                    inputs.push(self.read(s.array, s.index.eval(i, self.n))?);
                }
                let val = op.eval(&inputs, dest_idx);
                self.write(dest.array, dest_idx, val)?;
                self.executed += 1;
                Ok(())
            }
        }
    }
}

/// Execute `p` and return the final array contents.
///
/// Fails (see [`ExecError`]) on any out-of-range or duplicate write,
/// use-before-def read, unbound register, or — after the run — any element
/// of `1..=n` left uncomputed.
pub fn execute(p: &LoopProgram) -> Result<ExecResult, ExecError> {
    let mut m = Machine::new(p);
    for inst in &p.pre {
        m.step(inst, 0)?;
    }
    if let Some(l) = &p.body {
        if l.step < 1 {
            return Err(ExecError::InvalidLoop("step must be positive"));
        }
        let mut i = l.lo;
        while i <= l.hi {
            for inst in &l.body {
                m.step(inst, i)?;
            }
            if let Some(k) = l.auto_dec {
                // IA-64-style rotation: the loop branch decrements every
                // conditional register (no explicit Dec instructions).
                for entry in m.regs.values_mut() {
                    entry.0 -= k;
                }
            }
            i += l.step;
        }
    }
    for inst in &p.post {
        m.step(inst, 0)?;
    }
    // Completeness: every element written exactly once (double writes were
    // already rejected).
    for (a, col) in m.cells.iter().enumerate() {
        if let Some(missing) = col.iter().position(Option::is_none) {
            return Err(ExecError::Incomplete {
                array: p.arrays[a].clone(),
                index: missing as i64 + 1,
            });
        }
    }
    Ok(ExecResult {
        arrays: m
            .cells
            .into_iter()
            .map(|col| col.into_iter().map(Option::unwrap).collect())
            .collect(),
        computes_executed: m.executed,
        computes_nullified: m.nullified,
    })
}

/// Execute `p` and compare every element with the direct recurrence
/// evaluation of `g` — the paper's correctness claims, checked.
///
/// The per-node execution count (`n` fires per node, Theorems
/// 4.1/4.2/4.6) is implied by [`execute`]'s completeness and
/// double-write checks; the `debug_assert` below merely restates it.
pub fn check_against_reference(g: &Dfg, p: &LoopProgram) -> Result<ExecResult, ExecError> {
    assert_eq!(
        g.node_count(),
        p.arrays.len(),
        "program must cover exactly the DFG's value streams"
    );
    let res = execute(p)?;
    let reference = g.reference_execution(p.n as usize);
    for v in g.node_ids() {
        #[allow(clippy::needless_range_loop)] // two parallel tables, index is clearer
        for i in 0..p.n as usize {
            let got = res.arrays[v.index()][i];
            let expected = reference[v.index()][i];
            if got != expected {
                return Err(ExecError::Mismatch {
                    array: g.node(v).name.clone(),
                    index: i as i64 + 1,
                    got,
                    expected,
                });
            }
        }
    }
    debug_assert_eq!(
        res.computes_executed,
        g.node_count() as u64 * p.n,
        "every node must execute exactly n times"
    );
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cred_codegen::ir::{Index, LoopSpec, PredId, Ref};
    use cred_codegen::pipeline::original_program;
    use cred_dfg::{DfgBuilder, OpKind};

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        let c = b.node("B", 1, OpKind::Mul(0));
        b.edge(a, c, 0);
        b.edge(c, a, 2);
        b.build().unwrap()
    }

    #[test]
    fn original_program_matches_reference() {
        let g = tiny();
        for n in [0u64, 1, 2, 5, 17] {
            let p = original_program(&g, n);
            let res = check_against_reference(&g, &p).unwrap();
            assert_eq!(res.computes_executed, 2 * n);
            assert_eq!(res.computes_nullified, 0);
        }
    }

    #[test]
    fn double_write_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        // Duplicate the whole body: every element written twice.
        let body = p.body.as_mut().unwrap();
        let dup = body.body.clone();
        body.body.extend(dup);
        assert!(matches!(execute(&p), Err(ExecError::DoubleWrite { .. })));
    }

    #[test]
    fn incomplete_detected() {
        let g = tiny();
        // n = 2: A never reads an in-range B element, so dropping B's
        // instance leaves B[1..=2] missing without tripping use-before-def.
        let mut p = original_program(&g, 2);
        p.body.as_mut().unwrap().body.pop(); // drop B's instance
        assert!(matches!(execute(&p), Err(ExecError::Incomplete { .. })));
    }

    #[test]
    fn out_of_range_write_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().hi = 4; // run one iteration too many
        assert!(matches!(
            execute(&p),
            Err(ExecError::OutOfRangeWrite { .. })
        ));
    }

    #[test]
    fn use_before_def_detected() {
        // B reads A zero-delay but is emitted first.
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.reverse();
        assert!(matches!(execute(&p), Err(ExecError::UseBeforeDef { .. })));
    }

    #[test]
    fn non_positive_step_rejected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().step = 0;
        assert_eq!(
            execute(&p).unwrap_err(),
            ExecError::InvalidLoop("step must be positive")
        );
        p.body.as_mut().unwrap().step = -1;
        assert!(matches!(execute(&p), Err(ExecError::InvalidLoop(_))));
    }

    #[test]
    fn unbound_register_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        p.body.as_mut().unwrap().body.push(Inst::Dec {
            reg: PredId(9),
            by: 1,
        });
        assert_eq!(execute(&p).unwrap_err(), ExecError::UnboundRegister(9));
    }

    #[test]
    fn guard_window_semantics() {
        // A single guarded instruction writing A[i]; register init 1,
        // bound -2, n = 5: enabled iff -2 < p <= 0 with p = 1 - (i - 1)
        // = 2 - i, i.e. i in {2, 3}. The other elements are filled by a
        // plain instruction guarded to the complement via a second window.
        let mut b = DfgBuilder::new();
        b.node("A", 1, OpKind::Input(0));
        let _ = b.build().unwrap();
        let dest = Ref {
            array: 0,
            index: Index::i_plus(0),
        };
        let guarded = Inst::Compute {
            guard: Some(Guard {
                reg: PredId(0),
                offset: 0,
            }),
            dest,
            op: OpKind::Input(0),
            srcs: vec![],
        };
        let p = LoopProgram {
            name: "t".into(),
            n: 5,
            arrays: vec!["A".into()],
            pre: vec![Inst::Setup {
                reg: PredId(0),
                init: 1,
                bound: -2,
            }],
            body: Some(LoopSpec {
                lo: 1,
                hi: 5,
                step: 1,
                body: vec![
                    guarded,
                    Inst::Dec {
                        reg: PredId(0),
                        by: 1,
                    },
                ],
                auto_dec: None,
            }),
            post: vec![],
        };
        // Only A[2], A[3] get written -> Incomplete at index 1.
        let err = execute(&p).unwrap_err();
        assert_eq!(
            err,
            ExecError::Incomplete {
                array: "A".into(),
                index: 1
            }
        );
    }

    #[test]
    fn guard_offset_shifts_window() {
        // Same as above, but a positive offset (eff = value - offset)
        // shifts the enabled window EARLIER: offset 1 gives i in {1, 2}.
        let mut b = DfgBuilder::new();
        b.node("A", 1, OpKind::Input(0));
        let _ = b.build().unwrap();
        let mk = |offset| Inst::Compute {
            guard: Some(Guard {
                reg: PredId(0),
                offset,
            }),
            dest: Ref {
                array: 0,
                index: Index::i_plus(0),
            },
            op: OpKind::Input(0),
            srcs: vec![],
        };
        let run = |offset| {
            let p = LoopProgram {
                name: "t".into(),
                n: 5,
                arrays: vec!["A".into()],
                pre: vec![Inst::Setup {
                    reg: PredId(0),
                    init: 1,
                    bound: -2,
                }],
                body: Some(LoopSpec {
                    lo: 1,
                    hi: 5,
                    step: 1,
                    body: vec![
                        mk(offset),
                        Inst::Dec {
                            reg: PredId(0),
                            by: 1,
                        },
                    ],
                    auto_dec: None,
                }),
                post: vec![],
            };
            execute(&p).unwrap_err()
        };
        // offset 0 gives window {2,3}; offset 1 (eff = p - 1) shifts it to
        // {1,2}, so the first missing element becomes 3.
        assert_eq!(
            run(1),
            ExecError::Incomplete {
                array: "A".into(),
                index: 3
            }
        );
    }

    #[test]
    fn reads_before_iteration_one_are_zero() {
        // A[i] = A[i-2] + 1 with n = 4: A = [1, 1, 2, 2].
        let mut b = DfgBuilder::new();
        let a = b.node("A", 1, OpKind::Add(1));
        b.edge(a, a, 2);
        let g = b.build().unwrap();
        let p = original_program(&g, 4);
        let res = execute(&p).unwrap();
        assert_eq!(res.arrays[0], vec![1, 1, 2, 2]);
        check_against_reference(&g, &p).unwrap();
    }

    #[test]
    fn mismatch_detected() {
        let g = tiny();
        let mut p = original_program(&g, 3);
        // Corrupt the constant of the first instruction.
        if let Some(l) = &mut p.body {
            if let Inst::Compute { op, .. } = &mut l.body[0] {
                *op = OpKind::Add(2);
            }
        }
        assert!(matches!(
            check_against_reference(&g, &p),
            Err(ExecError::Mismatch { .. })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = ExecError::OutOfRangeWrite {
            array: "A".into(),
            index: 12,
        };
        assert_eq!(e.to_string(), "out-of-range write A[12]");
        assert_eq!(
            ExecError::UnboundRegister(0).to_string(),
            "register p1 never setup"
        );
    }
}
